#!/usr/bin/env python
"""CI crash-recovery smoke: a journaled threaded-live run killed
mid-flight, recovered from the surviving journal directory, and
checked bit-identical against a never-crashed baseline.

Leaves the journal directory *as recovery left it* plus a
``recovery_stats.json`` under ``--out`` so CI can upload both as an
artifact: a red run ships the exact byte-level history to replay.

Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py --out out/recovery-smoke --seed 7
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
for entry in (str(REPO / "src"), str(REPO)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.core.problem import Problem  # noqa: E402
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager  # noqa: E402
from tests.test_recovery_live import run_threaded  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=REPO / "out" / "recovery-smoke",
        help="directory for the journal + recovery stats artifact",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="varies the kill point (CI passes the run number so every "
             "run crashes somewhere new)",
    )
    parser.add_argument("--items", type=int, default=400)
    parser.add_argument(
        "--torn", type=int, default=3,
        help="garbage bytes torn onto the journal tail before recovery",
    )
    args = parser.parse_args(argv)

    journal_dir = args.out / "journal"
    args.out.mkdir(parents=True, exist_ok=True)
    kill_after = 1 + args.seed % 8

    def build() -> Problem:
        return Problem(
            "smoke-sum", RangeSumDataManager(args.items), RangeSumAlgorithm()
        )

    baseline_digest, _server, _report = run_threaded(build)
    digest, fresh, report = run_threaded(
        build, journal_dir=journal_dir, kill_after=kill_after, torn=args.torn
    )
    counters = fresh.obs.meters.snapshot()["counters"]
    stats = {
        "items": args.items,
        "kill_after_folds": kill_after,
        "torn_bytes_injected": args.torn,
        "torn_bytes_truncated": report.torn_bytes,
        "replayed_records": report.replayed,
        "next_lsn": report.next_lsn,
        "checkpoint_lsn": report.checkpoint_lsn,
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith(("farm.journal.", "farm.recovery."))
        },
        "baseline_digest": baseline_digest.hex(),
        "recovered_digest": digest.hex(),
        "digest_matches_baseline": digest == baseline_digest,
    }
    (args.out / "recovery_stats.json").write_text(json.dumps(stats, indent=2))
    print(json.dumps(stats, indent=2))
    if not stats["digest_matches_baseline"]:
        print("FAIL: recovered digest diverged from the baseline", file=sys.stderr)
        return 1
    if args.torn and report.torn_bytes != args.torn:
        print("FAIL: torn tail was not truncated loudly", file=sys.stderr)
        return 1
    print("crash-recovery smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
