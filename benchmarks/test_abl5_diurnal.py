"""Ablation 5 — the diurnal lab: when should long jobs be submitted?

Paper context: the pool is "a number of computing laboratories" of
desktop PCs used by students during the day and idle at night, where
the system ran "as a low priority background service ... for over
3 years".  This ablation quantifies the lab's daily breathing: the
same search submitted at 9 am vs 8 pm, plus the effective capacity of
the pool over a full week of continuous load.
"""

import pytest

from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.diurnal import DAY_SECONDS, DiurnalProfile, diurnal_pool
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity

POOL = 32
PROFILE = DiurnalProfile(
    work_start=9 * 3600.0,
    work_end=18 * 3600.0,
    busy_availability=0.25,
    idle_availability=0.95,
)


def makespan_when_submitted(at_hour: float, items: int = 4000, item_cost: float = 60.0):
    machines = diurnal_pool(
        homogeneous_pool(POOL), PROFILE, horizon=30 * DAY_SECONDS
    )
    cluster = SimCluster(
        machines,
        policy=AdaptiveGranularity(target_seconds=600.0, probe_items=1),
        lease_timeout=4 * 3600.0,
        seed=23,
        execute=False,
    )
    pid = cluster.submit(
        trace_problem(WorkloadTrace.single_stage([item_cost] * items)),
        at=at_hour * 3600.0,
    )
    report = cluster.run()
    assert report.completed
    return report.makespans[pid]


@pytest.mark.benchmark(group="abl5")
def test_abl5_diurnal_submission_time(benchmark, report):
    submit_hours = [0.0, 6.0, 9.0, 12.0, 18.0, 21.0]

    def sweep():
        return {h: makespan_when_submitted(h) for h in submit_hours}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ideal = 4000 * 60.0 / (POOL * PROFILE.mean_availability())
    lines = [
        f"pool: {POOL} lab PCs, work hours 9-18 "
        f"(busy avail {PROFILE.busy_availability:.0%}, "
        f"idle avail {PROFILE.idle_availability:.0%})",
        f"workload: 4000 x 60 s items "
        f"(~{4000 * 60 / 3600:.0f} donor-hours)",
        "",
        f"{'submitted at':>12} {'makespan(h)':>12} {'vs mean-capacity ideal':>23}",
    ]
    for hour, makespan in sorted(results.items()):
        lines.append(
            f"{hour:>10.0f}:00 {makespan / 3600:>12.2f} {makespan / ideal:>22.2f}x"
        )
    report("abl5_diurnal", "ABL5: diurnal lab availability", lines)

    # Evening submissions ride the empty-lab window and must beat
    # morning submissions that start straight into the busy shift.
    assert results[21.0] < results[9.0]
    # Everything completes within a small multiple of the mean-capacity
    # bound — the farm tracks the lab's breathing without stalling.
    assert max(results.values()) < 3.0 * ideal
