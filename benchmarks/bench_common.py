"""Workload builders shared by the figure benchmarks.

The speedup sweeps replay *workload traces* through the simulated
cluster (same server/scheduler code, virtual time) — see
:mod:`repro.cluster.sim.trace` for why that is sound for these two
applications.  This module builds the traces:

* the DSEARCH trace synthetically from the alignment cost model
  (cells = query length × subject length, at a calibrated
  cells-per-second for the paper's PIII-1GHz reference donor);
* the DPRml trace by *actually running* the stepwise search once on a
  simulated 50-taxon dataset and converting its measured per-placement
  costs to seconds.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bio.phylo.models import HKY85
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.stepwise import StepwiseSearch
from repro.bio.seq.alphabet import PROTEIN
from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.trace import TraceStage, WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity
from repro.util.stats import speedup_curve

#: Calibration: a PIII-1GHz donor fills about 10M DP cells/second with
#: the authors' Java implementation (order-of-magnitude realistic).
CELLS_PER_SECOND = 1.0e7


def dsearch_trace(
    db_sequences: int = 2_000_000,
    query_length: int = 360,
    mean_subject_length: int = 400,
    min_subject_length: int = 50,
    seed: int = 0,
    query_bytes: int = 0,
) -> WorkloadTrace:
    """The Fig. 1 workload: one long sensitive search.

    Defaults give a single-donor runtime of ~8 hours of simulated time
    (the scale at which the paper's users ran searches).  Only subject
    *lengths* are sampled (from the same right-skewed gamma the
    synthetic FASTA generator uses) — the trace replay needs costs, not
    residues, and two million full sequences would be pointless weight.

    ``query_bytes`` models the query set every unit carries: with the
    default 0 it is ignored (the historical Fig. 1 byte accounting);
    when positive it becomes the stage's ``shared_bytes``, re-shipped
    with every unit uncached and shipped once per donor when the trace
    is replayed with ``share=True``.
    """
    rng = np.random.default_rng(seed)
    shape = 2.0
    scale = max(1.0, (mean_subject_length - min_subject_length) / shape)
    lengths = min_subject_length + rng.gamma(shape, scale, size=db_sequences)
    costs = query_length * lengths / CELLS_PER_SECOND
    mean_bytes = int(lengths.mean()) + 32
    return WorkloadTrace(
        (
            TraceStage(
                tuple(costs.tolist()),
                bytes_per_item=mean_bytes,
                shared_bytes=query_bytes,
            ),
        ),
        name="dsearch-fig1",
    )


@lru_cache(maxsize=1)
def dprml_trace(
    taxa: int = 50,
    sites: int = 250,
    seed: int = 2005,
    seconds_per_cost_unit: float | None = None,
) -> WorkloadTrace:
    """The Fig. 2 workload: a real 50-taxon stepwise-insertion run.

    Runs the actual search once (real likelihoods, real per-placement
    cost measurements in likelihood-node-update units) and converts the
    measured costs to donor-seconds, scaled so a mid-search placement
    takes ~30 s on the reference donor — matching the paper's
    observation that a 50-taxon DPRml run occupies a donor pool for
    hours.
    """
    true_tree = random_yule_tree(taxa, seed=seed, mean_branch=0.1)
    model = HKY85(2.0, np.array([0.3, 0.2, 0.2, 0.3]))
    alignment = simulate_alignment(true_tree, model, sites, seed=seed + 1)
    result = StepwiseSearch(alignment, model).run()

    stage_costs = [list(stage.costs) for stage in result.stages]
    if seconds_per_cost_unit is None:
        mid = stage_costs[len(stage_costs) // 2]
        seconds_per_cost_unit = 30.0 / float(np.mean(mid))
    stages = [
        TraceStage(
            tuple(max(1e-3, c * seconds_per_cost_unit) for c in costs),
            bytes_per_item=512,
        )
        for costs in stage_costs
    ]
    # The final full-tree polish is one long sequential task.  Its cost
    # is estimated relative to the last stage: a cached 2-pass sweep
    # over ~2n branches costs roughly a quarter of that stage's 2n-5
    # full placement evaluations (each of which pays fresh pruning plus
    # three branch optimisations).
    polish_cost = sum(stages[-1].costs) * 0.25
    stages.append(TraceStage((max(1e-3, polish_cost),), bytes_per_item=2048))
    return WorkloadTrace(tuple(stages), name="dprml-fig2")


def run_trace_speedup(
    trace: WorkloadTrace,
    processors: list[int],
    instances: int = 1,
    availability_jitter: float = 0.05,
    unit_target_seconds: float = 60.0,
    lease_timeout: float = 3600.0,
    seed: int = 7,
):
    """Replay *instances* copies of a trace at each processor count.

    Returns the :func:`~repro.util.stats.speedup_curve` over the
    completion time of the *last* instance (what the paper's speedup
    measures: time until the user has all results).
    """
    runtimes = []
    for p in processors:
        machines = homogeneous_pool(
            p, speed=1.0, availability=0.95, availability_jitter=availability_jitter
        )
        cluster = SimCluster(
            machines,
            policy=AdaptiveGranularity(
                target_seconds=unit_target_seconds, probe_items=1
            ),
            lease_timeout=lease_timeout,
            seed=seed,
            execute=False,
        )
        pids = [
            cluster.submit(trace_problem(trace)) for _ in range(instances)
        ]
        report = cluster.run()
        assert report.completed, f"trace did not complete at p={p}"
        runtimes.append(max(report.makespans[pid] for pid in pids))
    return speedup_curve(processors, runtimes)
