"""Multi-tenant fair-share under contention: shares vs. weights.

Three tenants with weights 1:2:4 each feed the gateway a stream of
identical trace jobs on the same simulated farm.  While every tenant
has eligible work, the delivered work items must split in proportion to
the weights — the gateway's headline scheduling contract.  The run then
drains completely, yielding the per-job queue waits the admission layer
produced along the way.

Writes ``BENCH_gateway.json`` (per-tenant share error + p95 queue wait)
for trend tracking and **fails if any tenant's mid-run share is more
than 10% off its weight-proportional target** — the regression gate CI
runs.
"""

import json
import random

from conftest import OUT_DIR, write_report
from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.gateway import TenantConfig
from repro.core.scheduler import FixedGranularity

WEIGHTS = {"alice": 1.0, "bob": 2.0, "carol": 4.0}
JOBS_PER_TENANT = 4
ITEMS_PER_JOB = 160
ITEMS_PER_UNIT = 4
DONORS = 8
MEASURE_AT = 60.0  # virtual seconds: mid-run, all tenants contended
GATE_SHARE_ERROR = 0.10
SEED = 5


def _job_trace(tenant: str, index: int) -> WorkloadTrace:
    rng = random.Random(hash((tenant, index)) & 0xFFFF)
    costs = [rng.uniform(0.4, 0.6) for _ in range(ITEMS_PER_JOB)]
    return WorkloadTrace.single_stage(
        costs, bytes_per_item=2_000, name=f"bench-gw-{tenant}-{index}"
    )


def test_three_tenant_shares_track_weights():
    cluster = SimCluster(
        homogeneous_pool(DONORS),
        policy=FixedGranularity(ITEMS_PER_UNIT),
        lease_timeout=300.0,
        seed=SEED,
        execute=False,
        tenants=[
            TenantConfig(tenant, weight=weight, max_running=2, max_pending=8)
            for tenant, weight in WEIGHTS.items()
        ],
    )
    for tenant in WEIGHTS:
        for index in range(JOBS_PER_TENANT):
            cluster.submit_job(tenant, trace_problem(_job_trace(tenant, index)))

    # Pause mid-run, while every tenant still has open jobs, and read
    # the delivered split — fairness only means anything under
    # contention (a drained run always converges on the job totals).
    cluster.run(until=MEASURE_AT)
    gateway = cluster.gateway
    assert gateway.has_open_jobs(), "measured after the farm drained"
    delivered = {t: gateway.scheduler.delivered_items(t) for t in WEIGHTS}
    total = sum(delivered.values())
    assert total > 0, "no work delivered by the measurement point"
    total_weight = sum(WEIGHTS.values())
    shares = {t: delivered[t] / total for t in WEIGHTS}
    errors = {
        t: abs(shares[t] - WEIGHTS[t] / total_weight) / (WEIGHTS[t] / total_weight)
        for t in WEIGHTS
    }

    # Drain the farm, then collect every job's queue wait.
    report = cluster.run()
    assert report.completed, "gateway run did not drain"
    waits = sorted(
        info["started_at"] - info["submitted_at"]
        for info in (
            gateway.job_status(job_id) for job_id in gateway.job_ids()
        )
        if info["started_at"] is not None
    )
    p95_wait = waits[min(len(waits) - 1, int(0.95 * len(waits)))]

    lines = [
        f"workload: {len(WEIGHTS)} tenants x {JOBS_PER_TENANT} jobs x "
        f"{ITEMS_PER_JOB} items (~0.5 s each), {DONORS} donors, "
        f"{ITEMS_PER_UNIT} items/unit; shares read at t={MEASURE_AT:g}s",
        "",
        f"{'tenant':<8} {'weight':>6} {'target':>8} {'share':>8} {'error':>7}",
    ]
    for tenant, weight in WEIGHTS.items():
        target = weight / total_weight
        lines.append(
            f"{tenant:<8} {weight:>6.1f} {target:>8.1%} "
            f"{shares[tenant]:>8.1%} {errors[tenant]:>7.1%}"
        )
    lines += [
        "",
        f"max share error: {max(errors.values()):.1%} "
        f"(gate: <= {GATE_SHARE_ERROR:.0%})",
        f"queue wait: p95 {p95_wait:,.1f}s over {len(waits)} started jobs",
    ]
    write_report(
        "gateway", "Job gateway: weighted fair share under contention", lines
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "tenants": WEIGHTS,
            "jobs_per_tenant": JOBS_PER_TENANT,
            "items_per_job": ITEMS_PER_JOB,
            "items_per_unit": ITEMS_PER_UNIT,
            "donors": DONORS,
            "measured_at": MEASURE_AT,
        },
        "delivered_items": delivered,
        "shares": {t: round(s, 4) for t, s in shares.items()},
        "share_errors": {t: round(e, 4) for t, e in errors.items()},
        "gate_share_error": GATE_SHARE_ERROR,
        "queue_wait_p95": round(p95_wait, 2),
        "started_jobs": len(waits),
        "makespan": round(report.sim_time, 2),
    }
    (OUT_DIR / "BENCH_gateway.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # The gate: every tenant's delivered share lands within 10% of its
    # weight-proportional target while contention holds.
    for tenant, error in errors.items():
        assert error <= GATE_SHARE_ERROR, (
            f"{tenant}: share {shares[tenant]:.3f} is {error:.1%} off its "
            f"target {WEIGHTS[tenant] / total_weight:.3f} "
            f"(gate {GATE_SHARE_ERROR:.0%})"
        )
