"""Payload bytes moved with and without the content-addressed cache.

The paper's DSEARCH "caches data on the client machines": after a
donor has the database, later units send only slice indices.  This
benchmark replays the many-short reference search twice through the
simulated cluster — the second submission models the steady state the
paper's users lived in, where the community database is already warm
in every donor's cache — and measures the payload bytes the server
actually shipped (``farm.bytes.in``) per pass.

Writes ``BENCH_cache_bytes.json`` for trend tracking and **fails if
the cached warm pass does not move at least 5× fewer payload bytes
than the uncached one** — the regression gate CI runs.
"""

import json

from conftest import OUT_DIR, write_report
from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.network import NetworkConfig
from repro.cluster.sim.trace import trace_problem
from repro.core.scheduler import FixedGranularity

from bench_common import dsearch_trace

#: The many-short reference search: 50k short subjects plus a query
#: set every unit needs.  Small enough for CI, large enough that the
#: bulk data dwarfs the per-unit envelopes.
DB_SEQUENCES = 50_000
ITEMS_PER_UNIT = 2_000
DONORS = 8
GATE_FACTOR = 5.0


def _reference_trace():
    return dsearch_trace(
        db_sequences=DB_SEQUENCES,
        query_length=360,
        mean_subject_length=120,  # many-short: batching/caching territory
        min_subject_length=50,
        query_bytes=2048,
    )


def _run_two_passes(share: bool) -> dict:
    """Submit the same search twice on one cluster; donor caches (like
    on-disk caches) stay warm between passes.  Returns per-pass payload
    bytes (``farm.bytes.in``) and the blob meters."""
    trace = _reference_trace()
    cluster = SimCluster(
        homogeneous_pool(DONORS, speed=1.0, availability=1.0),
        policy=FixedGranularity(ITEMS_PER_UNIT),
        lease_timeout=7200.0,
        seed=3,
        execute=False,
        network=NetworkConfig(control_bytes=0),
    )
    passes = []
    for _ in range(2):
        before = cluster.obs.meters.snapshot()["counters"].get("farm.bytes.in", 0)
        cluster.submit(trace_problem(trace, share=share))
        report = cluster.run()
        assert report.completed, "reference search did not finish"
        after = cluster.obs.meters.snapshot()["counters"].get("farm.bytes.in", 0)
        passes.append(int(after - before))
    counters = cluster.obs.meters.snapshot()["counters"]
    return {
        "share": share,
        "pass_bytes": passes,
        "blob_deliveries": int(counters.get("net.blob.deliveries", 0)),
        "blob_bytes": int(counters.get("net.blob.bytes", 0)),
        "blob_bytes_saved": int(counters.get("net.blob.bytes.saved", 0)),
        "cache_hits": int(counters.get("farm.cache.hits", 0)),
        "cache_misses": int(counters.get("farm.cache.misses", 0)),
    }


def test_cached_search_moves_fewer_payload_bytes():
    plain = _run_two_passes(share=False)
    cached = _run_two_passes(share=True)

    warm_factor = plain["pass_bytes"][1] / max(1, cached["pass_bytes"][1])
    total_plain = sum(plain["pass_bytes"])
    total_cached = sum(cached["pass_bytes"])

    lines = [
        f"workload: {DB_SEQUENCES} short subjects, {DONORS} donors, "
        f"{ITEMS_PER_UNIT} items/unit, same search submitted twice",
        "",
        f"{'run':<10} {'pass 1 (cold)':>15} {'pass 2 (warm)':>15} {'total':>12}",
        f"{'uncached':<10} {plain['pass_bytes'][0]:>15,} "
        f"{plain['pass_bytes'][1]:>15,} {total_plain:>12,}",
        f"{'cached':<10} {cached['pass_bytes'][0]:>15,} "
        f"{cached['pass_bytes'][1]:>15,} {total_cached:>12,}",
        "",
        f"warm-pass dedup factor: {warm_factor:.1f}x (gate: >= {GATE_FACTOR:.0f}x)",
        f"blob deliveries: {cached['blob_deliveries']} "
        f"({cached['blob_bytes']:,} bytes, once per donor); "
        f"re-ship avoided: {cached['blob_bytes_saved']:,} bytes",
        f"donor cache: {cached['cache_hits']} hits / "
        f"{cached['cache_misses']} misses",
    ]
    write_report(
        "cache_bytes", "Content-addressed cache: payload bytes moved", lines
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "db_sequences": DB_SEQUENCES,
            "items_per_unit": ITEMS_PER_UNIT,
            "donors": DONORS,
        },
        "uncached": plain,
        "cached": cached,
        "warm_pass_factor": round(warm_factor, 2),
        "gate_factor": GATE_FACTOR,
    }
    (OUT_DIR / "BENCH_cache_bytes.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Sanity on the model itself: every donor fetched each blob at most
    # once across BOTH passes (content addressing makes the second
    # submission free), and the uncached run moved no blobs at all.
    assert plain["blob_deliveries"] == 0 and plain["cache_misses"] == 0
    assert cached["blob_deliveries"] <= 2 * DONORS
    assert cached["cache_misses"] == cached["blob_deliveries"]

    # The gate: with warm donor caches the reference search must move
    # at least GATE_FACTOR fewer payload bytes than the uncached run.
    assert warm_factor >= GATE_FACTOR, (
        f"cached warm pass moved only {warm_factor:.1f}x fewer payload "
        f"bytes than uncached (gate {GATE_FACTOR:.0f}x)"
    )
