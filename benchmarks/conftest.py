"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's figures (or an ablation
of a prose claim) and reports it two ways: printed to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to watch) and written under
``benchmarks/out/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def write_report(name: str, title: str, lines: list[str]) -> Path:
    """Print a result table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    body = "\n".join([title, "=" * len(title), *lines, ""])
    path = OUT_DIR / f"{name}.txt"
    path.write_text(body)
    print("\n" + body)
    return path


@pytest.fixture
def report():
    return write_report
