"""Batched vs scalar alignment kernel throughput.

The batched engine (:mod:`repro.bio.align.batch`) exists for one
reason: real FASTA databases are dominated by short-to-mid length
sequences, where the scalar kernel's per-row NumPy dispatch overhead
dominates the actual arithmetic.  This benchmark measures both engines
on representative length distributions, asserts the scores agree
exactly, writes ``BENCH_batch_kernels.json`` for trend tracking, and
**fails if the batched engine is not faster than the scalar one** on
the many-short reference workload — the regression gate CI runs.
"""

import json
import time

import numpy as np

from conftest import OUT_DIR, write_report
from repro.bio.align.batch import SubjectBucket, batched_scores, plan_buckets
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.scoring import blosum62, dna_scheme
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq import DNA, PROTEIN
from repro.bio.seq.generate import random_sequence

#: (name, subjects, query_length, mode, alphabet, length sampler)
WORKLOADS = [
    # The reference workload: lots of short subjects, where batching
    # pays most.  This is the one the regression gate applies to.
    ("many-short dna/sw", 500, 360, "sw", DNA,
     lambda rng, n: rng.integers(60, 200, size=n)),
    # Right-skewed mid-length distribution, like a real nt slice.
    ("mid-length dna/sw", 150, 360, "sw", DNA,
     lambda rng, n: np.clip(50 + rng.gamma(2.0, 175.0, size=n), 50, 1000).astype(int)),
    # Protein global search against typical protein lengths.
    ("protein nw/blosum62", 300, 350, "nw", PROTEIN,
     lambda rng, n: rng.integers(100, 400, size=n)),
]

REFERENCE = "many-short dna/sw"


def _measure(name, n_subjects, query_len, mode, alphabet, sampler):
    rng = np.random.default_rng(17)
    scheme = dna_scheme() if alphabet is DNA else blosum62()
    scalar_fn = smith_waterman_score if mode == "sw" else needleman_wunsch_score
    query = random_sequence("q", query_len, alphabet, rng)
    lengths = [int(x) for x in sampler(rng, n_subjects)]
    subjects = [
        random_sequence(f"s{i:04d}", length, alphabet, rng)
        for i, length in enumerate(lengths)
    ]
    effective_cells = query_len * sum(lengths)

    # Warm both paths once (matrix parsing, icodes memoisation) so the
    # timed runs compare steady-state kernels.
    scalar_fn(query, subjects[0], scheme)
    plans = plan_buckets(lengths)
    buckets = [SubjectBucket(plan, subjects) for plan in plans]

    t0 = time.perf_counter()
    scalar = np.array([scalar_fn(query, s, scheme) for s in subjects])
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = np.empty(n_subjects)
    padded_cells = 0
    for plan, bucket in zip(plans, buckets):
        batched[list(plan.indices)] = batched_scores(
            [query], bucket, scheme, local=(mode == "sw")
        )[0]
        padded_cells += plan.padded_cells(query_len)
    batched_s = time.perf_counter() - t0

    assert np.array_equal(scalar, batched), f"{name}: batched scores diverge"
    return {
        "name": name,
        "subjects": n_subjects,
        "query_length": query_len,
        "mode": mode,
        "effective_cells": effective_cells,
        "padded_cells": padded_cells,
        "scalar_seconds": round(scalar_s, 4),
        "batched_seconds": round(batched_s, 4),
        "scalar_mcells_per_s": round(effective_cells / scalar_s / 1e6, 1),
        "batched_mcells_per_s": round(effective_cells / batched_s / 1e6, 1),
        "speedup": round(scalar_s / batched_s, 2),
    }


def test_batched_kernels_beat_scalar():
    rows = [_measure(*spec) for spec in WORKLOADS]

    lines = [
        f"{'workload':<22} {'cells(M)':>9} {'scalar':>9} {'batched':>9} "
        f"{'Mcells/s':>9} {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<22} {row['effective_cells'] / 1e6:>9.1f} "
            f"{row['scalar_seconds']:>8.2f}s {row['batched_seconds']:>8.2f}s "
            f"{row['batched_mcells_per_s']:>9.1f} {row['speedup']:>7.1f}x"
        )
    reference = next(r for r in rows if r["name"] == REFERENCE)
    lines.append("")
    lines.append(
        f"reference ({REFERENCE}): {reference['speedup']:.1f}x, "
        f"padding efficiency "
        f"{reference['effective_cells'] / reference['padded_cells']:.1%}"
    )
    write_report("batch_kernels", "Batched vs scalar alignment kernels", lines)

    OUT_DIR.mkdir(exist_ok=True)
    payload = {"reference": REFERENCE, "workloads": rows}
    (OUT_DIR / "BENCH_batch_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The gate: on the many-short reference workload the batched engine
    # must actually be faster — anything else is a regression.
    assert reference["speedup"] > 1.0, (
        f"batched engine slower than scalar on {REFERENCE}: "
        f"{reference['speedup']:.2f}x"
    )
