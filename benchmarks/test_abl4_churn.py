"""Ablation 4 — donor churn: cycle scavenging must tolerate departures.

The paper's donors are lab desktops running the client "as a low
priority background service"; machines reboot and owners reclaim them
constantly, yet the system "has been running for over 3 years".  This
ablation sweeps churn intensity (mean donor uptime) on a fixed
workload and reports completion, recomputation overhead, and slowdown
versus a stable pool.  The invariant under test: every item is
accounted for exactly once, whatever the churn.
"""

import pytest

from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.machines import with_churn
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity

POOL = 32
ITEMS = 3000
ITEM_COST = 30.0


def run_with_uptime(mean_uptime: float | None, seed: int = 19):
    machines = homogeneous_pool(POOL, availability=0.95, availability_jitter=0.05)
    if mean_uptime is not None:
        machines = with_churn(
            machines,
            horizon=1e7,
            mean_uptime=mean_uptime,
            mean_downtime=mean_uptime / 4,
            seed=seed,
        )
    cluster = SimCluster(
        machines,
        policy=AdaptiveGranularity(target_seconds=120.0, probe_items=1),
        lease_timeout=600.0,
        seed=seed,
        execute=False,
    )
    pid = cluster.submit(
        trace_problem(WorkloadTrace.single_stage([ITEM_COST] * ITEMS))
    )
    report = cluster.run()
    requeued = len(report.log.of_kind("unit.requeued"))
    duplicates = len(report.log.of_kind("unit.duplicate", "unit.stale"))
    items = report.results[pid]["items"] if pid in report.results else 0
    return report.completed, report.makespans.get(pid), requeued, duplicates, items


@pytest.mark.benchmark(group="abl4")
def test_abl4_churn_tolerance(benchmark, report):
    uptimes = [None, 7200.0, 3600.0, 1800.0, 900.0]

    def sweep():
        return [(u, *run_with_uptime(u)) for u in uptimes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # row = (uptime, completed, makespan, requeued, duplicates, items)
    baseline_makespan = rows[0][2]
    lines = [
        f"pool: {POOL} donors, {ITEMS} items x {ITEM_COST:.0f}s, lease 600s",
        "",
        f"{'mean uptime':>12} {'done':>5} {'makespan(s)':>12} {'slowdown':>9} "
        f"{'requeued':>9} {'dups':>5}",
    ]
    for uptime, completed, makespan, requeued, dups, items in rows:
        label = "stable" if uptime is None else f"{uptime:.0f}s"
        slowdown = makespan / baseline_makespan if makespan else float("nan")
        lines.append(
            f"{label:>12} {str(completed):>5} {makespan:>12.0f} "
            f"{slowdown:>9.2f} {requeued:>9} {dups:>5}"
        )
        # The core fault-tolerance invariant: nothing lost, nothing
        # double-counted, at any churn level.
        assert completed
        assert items == ITEMS
    report("abl4_churn", "ABL4: donor churn tolerance", lines)

    # Churn costs time (requeued work) but never correctness.
    final_slowdown = rows[-1][2] / baseline_makespan
    assert final_slowdown >= 1.0
    assert rows[-1][3] > 0, "heavy churn must actually requeue units"
