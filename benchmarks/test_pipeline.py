"""Makespan with and without the pipelined donor runtime.

The paper's donors poll, download, compute, and upload strictly in
sequence, so on a slow link most of a donor's wall clock is spent
waiting on the wire.  This benchmark replays one wire-heavy search
trace through the simulated cluster twice — once with the historical
serial protocol, once with prefetch double-buffering + depth-2 leases
+ tail re-issue — and compares the makespans.

The regime is deliberately the pipelined runtime's home turf: a
high-latency ~16 Mbit/s link (donors far from the server), mid-sized
units whose download time is comparable to their compute time, and a
modest spread of machine speeds.  On a fast LAN with compute-bound
units the two protocols converge — that case is covered by the
differential tests, which pin bit-identical results.

Writes ``BENCH_pipeline.json`` for trend tracking and **fails if the
pipelined run is not at least 1.3× faster** — the regression gate CI
runs.
"""

import json
import random

from conftest import OUT_DIR, write_report
from repro.cluster.sim import SimCluster, heterogeneous_pool
from repro.cluster.sim.network import NetworkConfig
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import PipelineConfig

ITEMS = 240
DONORS = 8
ITEMS_PER_UNIT = 3
GATE_SPEEDUP = 1.3
SEED = 5


def _search_trace() -> WorkloadTrace:
    """A DSEARCH-like single-stage workload: per-item costs in the
    fraction-of-a-second band where a 50 kB item download is neither
    negligible nor dominant."""
    rng = random.Random(11)
    costs = [rng.uniform(0.4, 0.65) for _ in range(ITEMS)]
    return WorkloadTrace.single_stage(
        costs, bytes_per_item=50_000, name="bench-pipeline"
    )


def _run(pipeline: PipelineConfig | None) -> dict:
    cluster = SimCluster(
        heterogeneous_pool(
            DONORS, seed=3,
            speed_range=(0.8, 1.6),
            availability_range=(1.0, 1.0),
        ),
        policy=FixedGranularity(ITEMS_PER_UNIT),
        lease_timeout=600.0,
        network=NetworkConfig.high_latency(latency=0.4),
        seed=SEED,
        execute=False,
        pipeline=pipeline,
    )
    pid = cluster.submit(trace_problem(_search_trace()))
    report = cluster.run()
    assert report.completed, "trace replay did not finish"
    counters = cluster.obs.meters.snapshot()["counters"]
    # Busy fraction over the problem's actual makespan (report.sim_time
    # also includes the final idle lease-sweep tick, which would dilute
    # both runs equally and hide the contrast).
    makespan = report.makespans[pid]
    utilization = sum(report.machine_busy.values()) / (DONORS * makespan)
    return {
        "pipelined": pipeline is not None,
        "makespan": round(makespan, 2),
        "mean_utilization": round(utilization, 3),
        "prefetch_hits": int(counters.get("farm.pipeline.prefetch.hits", 0)),
        "prefetch_misses": int(counters.get("farm.pipeline.prefetch.misses", 0)),
        "tail_reissues": int(counters.get("farm.pipeline.tail.reissues", 0)),
        "wasted_items": int(counters.get("farm.pipeline.wasted.items", 0)),
        "idle_gap_seconds": round(
            counters.get("farm.pipeline.idle.gap.seconds", 0.0), 2
        ),
    }


def test_pipelined_runtime_beats_serial_makespan():
    serial = _run(None)
    piped = _run(PipelineConfig.pipelined())

    speedup = serial["makespan"] / piped["makespan"]
    fetches = piped["prefetch_hits"] + piped["prefetch_misses"]
    hit_rate = piped["prefetch_hits"] / max(1, fetches)

    lines = [
        f"workload: {ITEMS} items (~0.5 s each, 50 kB each), "
        f"{DONORS} donors, {ITEMS_PER_UNIT} items/unit, "
        "16 Mbit/s link with 0.4 s latency",
        "",
        f"{'run':<10} {'makespan':>10} {'mean util':>10}",
        f"{'serial':<10} {serial['makespan']:>9,.1f}s "
        f"{serial['mean_utilization']:>10.0%}",
        f"{'pipelined':<10} {piped['makespan']:>9,.1f}s "
        f"{piped['mean_utilization']:>10.0%}",
        "",
        f"speedup: {speedup:.2f}x (gate: >= {GATE_SPEEDUP:.1f}x)",
        f"prefetch: {piped['prefetch_hits']} hits / "
        f"{piped['prefetch_misses']} misses ({hit_rate:.0%} of fetches "
        "hidden under compute); "
        f"uncovered wait: {piped['idle_gap_seconds']}s",
        f"tail re-issues: {piped['tail_reissues']} "
        f"(wasted duplicate items: {piped['wasted_items']})",
    ]
    write_report(
        "pipeline", "Pipelined donor runtime: makespan vs serial", lines
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "items": ITEMS,
            "items_per_unit": ITEMS_PER_UNIT,
            "donors": DONORS,
            "bytes_per_item": 50_000,
            "network": "high_latency(latency=0.4)",
        },
        "serial": serial,
        "pipelined": piped,
        "speedup": round(speedup, 3),
        "gate_speedup": GATE_SPEEDUP,
    }
    (OUT_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Sanity on the model: the pipelined run really overlapped (most
    # fetches were hidden), and the serial run never touched the
    # pipeline meters.
    assert piped["prefetch_hits"] > piped["prefetch_misses"]
    assert serial["prefetch_hits"] == 0 and serial["tail_reissues"] == 0

    # The gate: prefetch + depth-2 leases + tail re-issue must be at
    # least GATE_SPEEDUP faster end-to-end on the wire-heavy trace.
    assert speedup >= GATE_SPEEDUP, (
        f"pipelined makespan {piped['makespan']}s is only {speedup:.2f}x "
        f"faster than serial {serial['makespan']}s (gate {GATE_SPEEDUP}x)"
    )
