"""Ablation 2 — bulk data: raw socket channel vs the RMI call path.

Paper claim (Sect. 2.2): "Data files, which may be large, are
transmitted using ordinary sockets, which is more efficient than RMI."
Both paths here run over real localhost TCP: the RMI path wraps the
payload in a pickled request/response envelope (one in-memory frame),
the data channel streams fixed-size chunks with a checksum.  These are
genuine wall-clock measurements, not simulation.
"""

import pytest

from repro.rmi import DataChannelServer, RMIServer, connect, fetch_data

PAYLOAD_SIZES = [1 << 20, 8 << 20, 32 << 20]


class BlobHolder:
    """Remote object serving blobs through the RMI call path."""

    def __init__(self):
        self._blobs = {}

    def store(self, key, data):
        self._blobs[key] = data

    def get_blob(self, key):
        return self._blobs[key]


@pytest.fixture(scope="module")
def rmi_setup():
    server = RMIServer()
    holder = BlobHolder()
    server.bind("blobs", holder)
    for size in PAYLOAD_SIZES:
        holder.store(f"blob{size}", bytes(size))
    proxy = connect(server.host, server.port, "blobs")
    yield proxy
    proxy.close()
    server.close()


@pytest.fixture(scope="module")
def channel_setup():
    server = DataChannelServer()
    for size in PAYLOAD_SIZES:
        server.store(f"blob{size}", bytes(size))
    yield server
    server.close()


@pytest.mark.benchmark(group="abl2-rmi")
@pytest.mark.parametrize("size", PAYLOAD_SIZES, ids=lambda s: f"{s >> 20}MiB")
def test_abl2_rmi_path(benchmark, rmi_setup, size):
    proxy = rmi_setup
    data = benchmark(proxy.get_blob, f"blob{size}")
    assert len(data) == size
    benchmark.extra_info["MiB_per_s"] = round(
        size / (1 << 20) / benchmark.stats["mean"], 1
    )


@pytest.mark.benchmark(group="abl2-socket")
@pytest.mark.parametrize("size", PAYLOAD_SIZES, ids=lambda s: f"{s >> 20}MiB")
def test_abl2_socket_path(benchmark, channel_setup, size):
    server = channel_setup
    data = benchmark(fetch_data, server.host, server.port, f"blob{size}")
    assert len(data) == size
    benchmark.extra_info["MiB_per_s"] = round(
        size / (1 << 20) / benchmark.stats["mean"], 1
    )


@pytest.mark.benchmark(group="abl2-summary")
def test_abl2_summary(benchmark, report, rmi_setup, channel_setup):
    """Single-shot comparison table (the paper's claim, quantified)."""
    import time

    proxy, server = rmi_setup, channel_setup

    def measure():
        rows = []
        for size in PAYLOAD_SIZES:
            key = f"blob{size}"
            reps = 5
            t0 = time.perf_counter()
            for _ in range(reps):
                proxy.get_blob(key)
            rmi_rate = reps * size / (1 << 20) / (time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _ in range(reps):
                fetch_data(server.host, server.port, key)
            sock_rate = reps * size / (1 << 20) / (time.perf_counter() - t0)
            rows.append((size, rmi_rate, sock_rate))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'size':>8} {'rmi MiB/s':>12} {'socket MiB/s':>13} {'socket/rmi':>11}"]
    ratios = []
    for size, rmi_rate, sock_rate in rows:
        ratios.append(sock_rate / rmi_rate)
        lines.append(
            f"{size >> 20:>6}Mi {rmi_rate:>12.0f} {sock_rate:>13.0f} "
            f"{sock_rate / rmi_rate:>11.2f}"
        )
    report("abl2_socket_vs_rmi", "ABL2: bulk transfer, socket channel vs RMI", lines)
    # The paper's qualitative claim: for large payloads the raw socket
    # path should not lose to the RMI envelope.
    assert max(ratios) >= 0.9
