"""Ablation 3 — why Fig. 2 runs six instances: stage barriers idle donors.

Paper claim (Sect. 3.2): "DPRml is a staged computation so running a
single instance of the application will result in clients becoming
idle whilst waiting for stages to be completed."  This ablation runs
the same 50-taxon workload as Figure 2 with 1..6 simultaneous
instances on a 40-donor pool and reports donor utilisation and
per-instance throughput.
"""

import pytest

from bench_common import dprml_trace
from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.trace import trace_problem
from repro.core.scheduler import AdaptiveGranularity

DONORS = 40


def run_instances(trace, instances: int):
    cluster = SimCluster(
        homogeneous_pool(DONORS, availability=0.95, availability_jitter=0.05),
        policy=AdaptiveGranularity(target_seconds=60.0, probe_items=1),
        lease_timeout=3600.0,
        seed=13,
        execute=False,
    )
    pids = [cluster.submit(trace_problem(trace)) for _ in range(instances)]
    report = cluster.run()
    assert report.completed
    makespan = max(report.makespans[pid] for pid in pids)
    return makespan, report.mean_utilization


@pytest.mark.benchmark(group="abl3")
def test_abl3_single_vs_many_instances(benchmark, report):
    trace = dprml_trace()

    def sweep():
        return {k: run_instances(trace, k) for k in (1, 2, 4, 6)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"pool: {DONORS} donors; workload: Fig. 2's 50-taxon staged trace",
        "",
        f"{'instances':>9} {'makespan(s)':>12} {'utilisation':>12} "
        f"{'s/instance':>11}",
    ]
    for k, (makespan, util) in sorted(results.items()):
        lines.append(
            f"{k:>9} {makespan:>12.0f} {util:>12.1%} {makespan / k:>11.0f}"
        )
    report(
        "abl3_staged_utilization",
        "ABL3: stage barriers idle donors; simultaneous instances fill them",
        lines,
    )

    util_1 = results[1][1]
    util_6 = results[6][1]
    assert util_6 > util_1 * 1.3, "six instances must fill the barriers"
    # Amortised cost per instance must improve markedly.
    per_instance_1 = results[1][0]
    per_instance_6 = results[6][0] / 6
    assert per_instance_6 < per_instance_1 * 0.75
