"""Figure 2 — DPRml speedup, 50-taxa dataset, 6 simultaneous instances.

Paper: "Fig. 2 shows the efficiency of running 6 instances of the
application in parallel" on a 50-taxa dataset, 5..40 processors,
near-linear (≈ 38× at 40).  The six instances matter because "DPRml is
a staged computation so running a single instance ... will result in
clients becoming idle whilst waiting for stages to be completed."

Reproduction: the stepwise search really runs once on a simulated
50-taxon alignment; its measured per-placement costs become a staged
workload trace; six copies are replayed simultaneously on pools of
1..40 simulated donors.  Success criterion (shape): monotone, ≥ 0.85
efficiency at 40 with six instances.
"""

import pytest

from bench_common import dprml_trace, run_trace_speedup

PROCESSORS = [1, 5, 10, 15, 20, 25, 30, 35, 40]
INSTANCES = 6


@pytest.mark.benchmark(group="fig2")
def test_fig2_dprml_speedup(benchmark, report):
    trace = dprml_trace()

    def sweep():
        # DPRml farms placements at fine granularity (each is minutes of
        # work); a 30 s unit target keeps stage-end stragglers short.
        return run_trace_speedup(
            trace,
            PROCESSORS,
            instances=INSTANCES,
            unit_target_seconds=30.0,
        )

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"workload: {len(trace.stages)} stages, {trace.total_items} placements "
        f"per instance, {INSTANCES} simultaneous instances",
        f"single-instance T1 ~= {trace.total_cost / 3600:.1f} donor-hours",
        "",
        f"{'procs':>6} {'runtime(s)':>12} {'speedup':>9} {'efficiency':>11}",
    ]
    for pt in curve:
        lines.append(
            f"{pt.processors:>6} {pt.runtime:>12.0f} {pt.speedup:>9.2f} "
            f"{pt.efficiency:>11.2%}"
        )
    report(
        "fig2_dprml_speedup",
        f"Figure 2: DPRml speedup, {INSTANCES} simultaneous instances (simulated)",
        lines,
    )
    benchmark.extra_info["speedups"] = {
        pt.processors: round(pt.speedup, 2) for pt in curve
    }

    speedups = [pt.speedup for pt in curve]
    assert all(b > a for a, b in zip(speedups, speedups[1:])), "must be monotone"
    final = curve[-1]
    assert final.processors == 40
    assert final.speedup >= 0.85 * 40, "sub-linearity too strong vs paper"
    assert final.speedup <= 40 + 1e-6
