"""Figure 1 — DSEARCH speedup over 83 semi-idle homogeneous donors.

Paper: "Figure 1 shows how DSEARCH scales with increasing numbers of
processors ... we used a laboratory of 83 homogeneous processors
(Pentium III 1GHz)."  The plotted curve is near-linear with mild,
growing sub-linearity — roughly 72-76× at 83 processors.

Reproduction: a ~8-hour (single-donor) sensitive search replayed on
simulated pools of 1..83 donors behind one 100 Mbit/s server link.
Success criterion (shape): monotone speedup, ≥ 0.85 efficiency at 83.
"""

import pytest

from bench_common import dsearch_trace, run_trace_speedup

PROCESSORS = [1, 5, 10, 20, 30, 40, 50, 60, 70, 83]


@pytest.mark.benchmark(group="fig1")
def test_fig1_dsearch_speedup(benchmark, report):
    trace = dsearch_trace()

    def sweep():
        return run_trace_speedup(
            trace, PROCESSORS, instances=1, unit_target_seconds=60.0
        )

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"workload: {trace.total_items} database sequences, "
        f"T1 ~= {trace.total_cost / 3600:.1f} donor-hours",
        "",
        f"{'procs':>6} {'runtime(s)':>12} {'speedup':>9} {'efficiency':>11}",
    ]
    for pt in curve:
        lines.append(
            f"{pt.processors:>6} {pt.runtime:>12.0f} {pt.speedup:>9.2f} "
            f"{pt.efficiency:>11.2%}"
        )
    report("fig1_dsearch_speedup", "Figure 1: DSEARCH speedup (simulated)", lines)
    benchmark.extra_info["speedups"] = {
        pt.processors: round(pt.speedup, 2) for pt in curve
    }

    # Shape assertions (the reproduction contract).
    speedups = [pt.speedup for pt in curve]
    assert all(b > a for a, b in zip(speedups, speedups[1:])), "must be monotone"
    final = curve[-1]
    assert final.processors == 83
    assert final.speedup >= 0.85 * 83, "sub-linearity too strong vs paper"
    assert final.speedup <= 83.0 + 1e-6, "super-linear speedup is a bug"
    # Mild droop must exist (perfect linearity would mean the model
    # ignores network contention and the straggler tail entirely).
    assert final.efficiency < 0.995
