"""Ablation 1 — adaptive vs fixed granularity on a heterogeneous pool.

Paper claim (Sect. 3.1): "The parallel granularity is dynamically
controlled during each search to match the processing abilities of the
current set of donor machines."  This ablation quantifies the claim the
paper asserts: on the deployment's actual donor mix (PII-to-PIV
speeds, semi-idle) adaptive sizing beats any single fixed unit size —
small fixed units drown in per-unit overhead, large fixed units leave
slow donors as stragglers.
"""

import pytest

from repro.cluster.sim import SimCluster, heterogeneous_pool
from repro.cluster.sim.network import NetworkConfig
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity

POOL = 32
ITEMS = 40_000
ITEM_COST = 2.0  # seconds on the reference donor (a few DB sequences)

#: The single server is a PIII-500: every control message and result
#: costs it CPU time, which is what punishes floods of tiny units.
NETWORK = NetworkConfig(server_overhead=0.010)


def run_policy(policy, seed: int = 11) -> tuple[float, float]:
    machines = heterogeneous_pool(
        POOL, seed=3, speed_range=(0.25, 2.0), availability_range=(0.5, 1.0)
    )
    cluster = SimCluster(
        machines,
        policy=policy,
        lease_timeout=3600.0,
        network=NETWORK,
        seed=seed,
        execute=False,
    )
    pid = cluster.submit(
        trace_problem(WorkloadTrace.single_stage([ITEM_COST] * ITEMS))
    )
    report = cluster.run()
    assert report.completed
    return report.makespans[pid], report.mean_utilization


@pytest.mark.benchmark(group="abl1")
def test_abl1_adaptive_vs_fixed(benchmark, report):
    fixed_sizes = [1, 10, 100, 1000, 5000]

    def sweep():
        rows = []
        for size in fixed_sizes:
            makespan, util = run_policy(FixedGranularity(size))
            rows.append((f"fixed {size:>4} items", makespan, util))
        makespan, util = run_policy(
            AdaptiveGranularity(target_seconds=300.0, probe_items=1)
        )
        rows.append(("adaptive (300 s target)", makespan, util))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"pool: {POOL} heterogeneous donors (0.25x-2x, semi-idle), "
        f"{ITEMS} items x {ITEM_COST:.0f} s",
        "",
        f"{'policy':<26} {'makespan(s)':>12} {'utilisation':>12}",
    ]
    for name, makespan, util in rows:
        lines.append(f"{name:<26} {makespan:>12.0f} {util:>12.1%}")
    best_fixed = min(r[1] for r in rows[:-1])
    adaptive = rows[-1][1]
    lines.append("")
    lines.append(f"adaptive vs best fixed: {best_fixed / adaptive:.2f}x")
    report("abl1_adaptive_granularity", "ABL1: adaptive vs fixed granularity", lines)

    # The contract: adaptive at least matches the best fixed size (which
    # a user cannot know in advance) and clearly beats the extremes.
    assert adaptive <= best_fixed * 1.05
    worst_fixed = max(r[1] for r in rows[:-1])
    assert worst_fixed > adaptive * 1.5
