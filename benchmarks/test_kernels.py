"""Substrate kernel throughput: alignment cells/s and likelihood evals/s.

Not a paper figure — these calibrate the cost models the simulation
uses (CELLS_PER_SECOND in bench_common) and catch performance
regressions in the two numeric kernels everything else sits on.
"""

import numpy as np
import pytest

from repro.bio.align import blosum62, dna_scheme, needleman_wunsch_score, smith_waterman_score
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import HKY85, GammaRates
from repro.bio.phylo.optimize import optimize_branch
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.seq import DNA, PROTEIN
from repro.bio.seq.generate import random_sequence

RNG = np.random.default_rng(3)
Q_DNA = random_sequence("q", 400, DNA, RNG)
S_DNA = random_sequence("s", 400, DNA, RNG)
Q_PROT = random_sequence("qp", 350, PROTEIN, RNG)
S_PROT = random_sequence("sp", 350, PROTEIN, RNG)
DNA_SCHEME = dna_scheme()
B62 = blosum62()


@pytest.mark.benchmark(group="kernels-align")
def test_kernel_smith_waterman_dna(benchmark):
    score = benchmark(smith_waterman_score, Q_DNA, S_DNA, DNA_SCHEME)
    assert score >= 0
    cells = len(Q_DNA) * len(S_DNA)
    benchmark.extra_info["Mcells_per_s"] = round(
        cells / benchmark.stats["mean"] / 1e6, 1
    )


@pytest.mark.benchmark(group="kernels-align")
def test_kernel_needleman_wunsch_protein(benchmark):
    benchmark(needleman_wunsch_score, Q_PROT, S_PROT, B62)
    cells = len(Q_PROT) * len(S_PROT)
    benchmark.extra_info["Mcells_per_s"] = round(
        cells / benchmark.stats["mean"] / 1e6, 1
    )


@pytest.fixture(scope="module")
def likelihood_setup():
    tree = random_yule_tree(50, seed=5, mean_branch=0.1)
    model = HKY85(2.0, np.array([0.3, 0.2, 0.2, 0.3]))
    aln = simulate_alignment(tree, model, 500, seed=6)
    return tree, aln, model


@pytest.mark.benchmark(group="kernels-phylo")
def test_kernel_full_likelihood_50_taxa(benchmark, likelihood_setup):
    tree, aln, model = likelihood_setup

    def fresh_eval():
        return TreeLikelihood(tree, aln, model).log_likelihood()

    ll = benchmark(fresh_eval)
    assert ll < 0


@pytest.mark.benchmark(group="kernels-phylo")
def test_kernel_cached_branch_optimisation(benchmark, likelihood_setup):
    tree, aln, model = likelihood_setup
    tl = TreeLikelihood(tree, aln, model)
    tl.log_likelihood()
    leaf = tree.leaves()[10]

    def opt():
        return optimize_branch(tl, leaf, tol=1e-4)

    ll = benchmark(opt)
    assert ll < 0


@pytest.mark.benchmark(group="kernels-phylo")
def test_kernel_gamma4_likelihood(benchmark, likelihood_setup):
    tree, aln, model = likelihood_setup

    def fresh_eval():
        return TreeLikelihood(
            tree, aln, model, rates=GammaRates(0.5, 4)
        ).log_likelihood()

    ll = benchmark(fresh_eval)
    assert ll < 0
