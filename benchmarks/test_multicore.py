"""Throughput of multi-core donors vs serial donors, plus live equality.

The worker pool's claim is simple: a donated 4-core box should push
(nearly) 4x the units of the same box computing serially, because the
donor now keeps every core busy with its own leased unit.  This
benchmark replays a compute-heavy trace — per-item costs of seconds
against ~2 kB payloads, so the wire is negligible and the makespan
lives in the donors' cores — through the simulated cluster twice: once
with ``cores=1`` machines, once with the same machines at ``cores=4``.

A second, live assertion runs a real DSEARCH problem through the
threaded cluster serially and again with donors driving a real
spawn-process :class:`~repro.core.client.WorkerPool`, and requires the
assembled results to be bit-identical — the differential gate that the
pool changes scheduling, never answers.

Writes ``BENCH_multicore.json`` and **fails if the 4-core run is not at
least 2x faster** — the regression gate CI runs.
"""

import json

import numpy as np

from conftest import OUT_DIR, write_report
from repro.apps.dsearch import DSearchConfig, build_problem
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.local import ThreadCluster
from repro.cluster.sim import MachineSpec, SimCluster
from repro.cluster.sim.network import NetworkConfig
from repro.cluster.sim.trace import compute_heavy_trace, trace_problem
from repro.core.client import WorkerPool
from repro.core.integrity import canonical_digest
from repro.core.scheduler import FixedGranularity

ITEMS = 240
DONORS = 4
CORES = 4
ITEMS_PER_UNIT = 3
GATE_SPEEDUP = 2.0
SEED = 5


def _run(cores: int) -> dict:
    machines = [
        MachineSpec(f"pc-{i:03d}", speed=1.0, availability=1.0, cores=cores)
        for i in range(DONORS)
    ]
    cluster = SimCluster(
        machines,
        policy=FixedGranularity(ITEMS_PER_UNIT),
        lease_timeout=600.0,
        network=NetworkConfig.high_latency(latency=0.2),
        seed=SEED,
        execute=False,
    )
    pid = cluster.submit(trace_problem(compute_heavy_trace(items=ITEMS)))
    report = cluster.run()
    assert report.completed, "trace replay did not finish"
    makespan = report.makespans[pid]
    slots = DONORS * cores
    return {
        "cores": cores,
        "makespan": round(makespan, 2),
        "slot_utilization": round(
            sum(report.machine_busy.values()) / (slots * makespan), 3
        ),
    }


def _dsearch_problem(share: bool):
    rng = np.random.default_rng(17)
    query = random_sequence("q0", 64, DNA, rng)
    database, _ = seeded_database(
        query, decoy_count=12, homolog_count=2, seed=18, substitution_rate=0.1
    )
    return build_problem(
        database, [query], DSearchConfig(top_hits=4, share_payloads=share)
    )


def _live_digests() -> tuple[str, str]:
    """One real DSEARCH run serially threaded, one with a spawn pool."""

    def run(pool):
        cluster = ThreadCluster(
            workers=2,
            policy=FixedGranularity(3),
            lease_timeout=30.0,
            worker_pool=pool,
        )
        pid = cluster.submit(_dsearch_problem(share=pool is not None))
        cluster.run()
        return canonical_digest(cluster.final_result(pid))

    serial = run(None)
    pool = WorkerPool(2)
    try:
        pooled = run(pool)
    finally:
        pool.shutdown()
    return serial, pooled


def test_multicore_donors_beat_serial_throughput():
    serial = _run(cores=1)
    pooled = _run(cores=CORES)
    speedup = serial["makespan"] / pooled["makespan"]

    serial_digest, pooled_digest = _live_digests()

    lines = [
        f"workload: {ITEMS} compute-heavy items (4-9 s each, 2 kB each), "
        f"{DONORS} donors, {ITEMS_PER_UNIT} items/unit",
        "",
        f"{'run':<10} {'makespan':>10} {'slot util':>10}",
        f"{'1-core':<10} {serial['makespan']:>9,.1f}s "
        f"{serial['slot_utilization']:>10.0%}",
        f"{CORES}-core{'':<4} {pooled['makespan']:>9,.1f}s "
        f"{pooled['slot_utilization']:>10.0%}",
        "",
        f"speedup: {speedup:.2f}x (gate: >= {GATE_SPEEDUP:.1f}x)",
        f"live threaded differential: pooled digest == serial digest: "
        f"{pooled_digest == serial_digest}",
    ]
    write_report(
        "multicore", "Multi-core worker pool: makespan vs serial donors", lines
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "items": ITEMS,
            "items_per_unit": ITEMS_PER_UNIT,
            "donors": DONORS,
            "cores": CORES,
            "trace": "compute_heavy_trace",
        },
        "serial": serial,
        "pooled": pooled,
        "speedup": round(speedup, 3),
        "gate_speedup": GATE_SPEEDUP,
        "live_differential_equal": pooled_digest == serial_digest,
    }
    (OUT_DIR / "BENCH_multicore.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The live path must be bit-identical: pooling changes who computes
    # a unit and when, never what the assembled answer is.
    assert pooled_digest == serial_digest

    # The gate: four cores must buy at least 2x end-to-end on a
    # compute-heavy trace (ideal is ~4x; unit-boundary effects and the
    # shared link cost the rest).
    assert speedup >= GATE_SPEEDUP, (
        f"4-core makespan {pooled['makespan']}s is only {speedup:.2f}x "
        f"faster than serial {serial['makespan']}s (gate {GATE_SPEEDUP}x)"
    )
