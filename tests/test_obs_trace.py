"""Unit tests for the clock-injected tracer."""

from __future__ import annotations

import pytest

from repro.obs.trace import Span, Tracer
from tests.helpers import ManualClock


class TestSpanLifecycle:
    def test_start_and_finish(self):
        tr = Tracer()
        span = tr.start("op", 1.0, kind="test")
        assert not span.finished
        assert span.duration == 0.0  # open spans have no duration yet
        tr.finish(span, 3.5)
        assert span.finished
        assert span.duration == 2.5
        assert span.status == "ok"
        assert span.attrs == {"kind": "test"}

    def test_finish_records_status_and_extra_attrs(self):
        tr = Tracer()
        span = tr.start("op", 0.0)
        tr.finish(span, 1.0, status="failed", error="boom")
        assert span.status == "failed"
        assert span.attrs["error"] == "boom"

    def test_finish_is_idempotent(self):
        """The late-duplicate-result ordering: a span finished as
        ``requeued`` must not be resurrected by the original donor's
        tardy completion."""
        tr = Tracer()
        span = tr.start("unit", 0.0)
        tr.finish(span, 5.0, status="requeued")
        tr.finish(span, 9.0, status="ok")
        assert span.end == 5.0
        assert span.status == "requeued"
        assert tr.finished_count == 1

    def test_event_is_zero_duration(self):
        tr = Tracer()
        span = tr.event("combine", 2.0, unit_id=3)
        assert span.finished
        assert span.duration == 0.0


class TestParenting:
    def test_children_sorted_by_start(self):
        tr = Tracer()
        root = tr.start("problem", 0.0)
        b = tr.start("unit", 2.0, parent=root)
        a = tr.start("unit", 1.0, parent=root)
        tr.finish(a, 3.0)
        tr.finish(b, 3.0)
        kids = tr.children(root)
        assert [s.start for s in kids] == [1.0, 2.0]
        assert all(s.parent_id == root.span_id for s in kids)

    def test_parent_accepts_span_or_id(self):
        tr = Tracer()
        root = tr.start("problem", 0.0)
        by_span = tr.start("a", 1.0, parent=root)
        by_id = tr.start("b", 1.0, parent=root.span_id)
        assert by_span.parent_id == by_id.parent_id == root.span_id

    def test_render_tree(self):
        tr = Tracer()
        root = tr.start("problem", 0.0, problem_id=1)
        child = tr.start("unit", 1.0, parent=root)
        tr.finish(child, 4.0)
        text = tr.render_tree(root)
        assert "problem [ok, open] problem_id=1" in text
        assert "  unit [ok, 3.000s]" in text


class TestTimed:
    def test_timed_uses_injected_clock(self):
        tr = Tracer()
        clock = ManualClock(10.0)
        with tr.timed("rmi.call", clock, method="request_work") as span:
            clock.advance(0.25)
        assert span.finished
        assert span.duration == pytest.approx(0.25)
        assert span.attrs["method"] == "request_work"

    def test_timed_marks_failures_and_reraises(self):
        tr = Tracer()
        clock = ManualClock()
        with pytest.raises(RuntimeError):
            with tr.timed("op", clock):
                raise RuntimeError("boom")
        (span,) = tr.finished_spans("op")
        assert span.status == "failed"

    def test_timed_preserves_caller_set_status(self):
        tr = Tracer()
        clock = ManualClock()
        with tr.timed("op", clock) as span:
            span.status = "error"
        assert tr.finished_spans("op")[0].status == "error"


class TestBuffering:
    def test_finished_ring_buffer_caps_memory(self):
        tr = Tracer(max_spans=3)
        for i in range(5):
            tr.finish(tr.start("op", float(i)), float(i))
        assert tr.finished_count == 3
        assert [s.start for s in tr.finished_spans()] == [2.0, 3.0, 4.0]

    def test_open_spans_always_retained(self):
        tr = Tracer(max_spans=1)
        spans = [tr.start("op", float(i)) for i in range(4)]
        assert tr.open_count == 4
        assert {s.span_id for s in tr.open_spans()} == {s.span_id for s in spans}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_name_filter(self):
        tr = Tracer()
        tr.finish(tr.start("a", 0.0), 1.0)
        tr.finish(tr.start("b", 0.0), 1.0)
        assert [s.name for s in tr.finished_spans("a")] == ["a"]
