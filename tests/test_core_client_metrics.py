"""Tests for the donor client loop, in-process port and metrics."""

import pytest

from repro.core.client import DonorClient, InProcessServerPort, run_to_completion
from repro.core.metrics import problem_metrics, run_metrics
from repro.core.problem import FunctionAlgorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from tests.helpers import (
    ManualClock,
    RangeSumAlgorithm,
    RangeSumDataManager,
    StagedAlgorithm,
    StagedDataManager,
)


def make_setup(n=100, items=10, lease=1000.0):
    clock = ManualClock()
    server = TaskFarmServer(policy=FixedGranularity(items), lease_timeout=lease)
    pid = server.submit(
        Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm()), clock()
    )
    port = InProcessServerPort(server, clock=clock)
    return clock, server, pid, port


class TestDonorClient:
    def test_single_donor_completes_problem(self):
        clock, server, pid, port = make_setup(n=57, items=10)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        units = client.run()
        assert units == 6  # ceil(57/10)
        assert server.final_result(pid) == sum(range(57))

    def test_client_caches_algorithm(self):
        clock, server, pid, port = make_setup()
        fetches = 0
        real_get = port.get_algorithm

        def counting_get(problem_id):
            nonlocal fetches
            fetches += 1
            return real_get(problem_id)

        port.get_algorithm = counting_get
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run()
        assert fetches == 1

    def test_max_units_limits_work(self):
        clock, server, pid, port = make_setup(n=100, items=10)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        assert client.run(max_units=3) == 3

    def test_should_stop_halts_loop(self):
        clock, server, pid, port = make_setup(n=1000, items=1)
        calls = {"n": 0}

        def stop():
            calls["n"] += 1
            return calls["n"] > 5

        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run(should_stop=stop)
        assert client.units_done <= 5

    def test_deregister_on_exit(self):
        clock, server, pid, port = make_setup(n=10, items=10)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run()
        assert server.donor_ids() == []

    def test_staged_problem_with_idle_waits(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(1), lease_timeout=1000.0)
        pid = server.submit(
            Problem("staged", StagedDataManager(8), StagedAlgorithm()), clock()
        )
        port = InProcessServerPort(server, clock=clock)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run()
        assert server.final_result(pid) == sum(x * x for x in range(8))


class TestRunToCompletion:
    def test_multiple_donors(self):
        server = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=1000.0)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        run_to_completion(server, donors=4)
        assert server.final_result(pid) == sum(range(100))
        # all four donors contributed registrations
        assert len(server.log.of_kind("donor.registered")) == 4

    def test_function_algorithm(self):
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=1000.0)
        pid = server.submit(
            Problem(
                "sum",
                RangeSumDataManager(30),
                FunctionAlgorithm(lambda span: sum(range(span[0], span[1]))),
            ),
            0.0,
        )
        run_to_completion(server, donors=2)
        assert server.final_result(pid) == sum(range(30))


class TestMetrics:
    def _run(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=1000.0)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(40), RangeSumAlgorithm()), clock()
        )
        server.register_donor("d0", clock())
        server.register_donor("d1", clock())
        donors = ["d0", "d1"]
        i = 0
        while not server.all_complete():
            d = donors[i % 2]
            a = server.request_work(d, clock.advance(1.0))
            if a is None:
                break
            lo, hi = a.payload
            from repro.core.workunit import WorkResult

            server.submit_result(
                WorkResult(pid, a.unit_id, sum(range(lo, hi)), d, 2.0, a.items),
                clock.advance(2.0),
            )
            i += 1
        return server, pid

    def test_problem_metrics(self):
        server, pid = self._run()
        pm = problem_metrics(server.log, pid)
        assert pm.units_completed == 4
        assert pm.items_completed == 40
        assert pm.makespan > 0
        assert pm.mean_unit_seconds == pytest.approx(2.0)
        assert pm.units_requeued == 0
        assert pm.duplicate_results == 0

    def test_run_metrics_aggregates_donors(self):
        server, pid = self._run()
        rm = run_metrics(server.log)
        assert set(rm.donors) == {"d0", "d1"}
        assert sum(d.units_completed for d in rm.donors.values()) == 4
        assert rm.total_busy_seconds == pytest.approx(8.0)
        assert 0 < rm.mean_utilization <= 1.0
        assert pid in rm.problems

    def test_unknown_problem_raises(self):
        server, _pid = self._run()
        with pytest.raises(KeyError):
            problem_metrics(server.log, 424242)
