"""Unit tests for the streaming meters (counters/gauges/histograms)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.meters import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    ITEMS_BUCKETS,
    LATENCY_BUCKETS,
    MeterRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0.0

    def test_concurrent_increments_are_exact(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_can_go_negative(self):
        g = Gauge("x")
        g.dec()
        assert g.value == -1.0


class TestHistogram:
    def test_bucket_placement_inclusive_upper_edges(self):
        h = Histogram("h", (1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        s = h.summary()
        assert s["counts"] == [2, 2, 1]  # (-inf,1], (1,10], overflow
        assert s["count"] == 5
        assert s["min"] == 0.5 and s["max"] == 11.0

    def test_empty_histogram_statistics_are_defined(self):
        h = Histogram("h", LATENCY_BUCKETS)
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        s = h.summary()
        assert s["min"] == 0.0 and s["max"] == 0.0 and s["mean"] == 0.0

    def test_mean_and_sum(self):
        h = Histogram("h", (10.0,))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.total == 6.0
        assert h.mean == pytest.approx(2.0)

    def test_quantile_clamps_to_observed_max(self):
        h = Histogram("h", (100.0,))
        h.observe(3.0)
        # The bucket edge is 100 but nothing above 3 was ever seen.
        assert h.quantile(0.99) == 3.0

    def test_quantile_overflow_bucket_uses_max(self):
        h = Histogram("h", (1.0,))
        h.observe(50.0)
        assert h.quantile(1.0) == 50.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", ())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", (1.0, 1.0))

    def test_concurrent_observes_are_exact(self):
        h = Histogram("h", ITEMS_BUCKETS)

        def worker():
            for i in range(500):
                h.observe(float(i % 40))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000
        assert sum(h.summary()["counts"]) == 2000


class TestMeterRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MeterRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", BYTES_BUCKETS) is reg.histogram("h")

    def test_namespaces_are_independent(self):
        reg = MeterRegistry()
        reg.counter("x").inc(3)
        reg.gauge("x").set(7)
        assert reg.counter("x").value == 3
        assert reg.gauge("x").value == 7

    def test_snapshot_is_json_serializable(self):
        reg = MeterRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(-1.5)
        reg.histogram("h", (1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        roundtrip = json.loads(json.dumps(snap))
        assert roundtrip["counters"]["c"] == 2
        assert roundtrip["gauges"]["g"] == -1.5
        assert roundtrip["histograms"]["h"]["count"] == 1

    def test_snapshot_mid_flight_sees_partial_state(self):
        reg = MeterRegistry()
        c = reg.counter("c")
        c.inc()
        before = reg.snapshot()
        c.inc()
        after = reg.snapshot()
        assert before["counters"]["c"] == 1
        assert after["counters"]["c"] == 2
