"""The pipelined donor runtime, differentially tested.

The tentpole contract: with prefetch double-buffering, depth-limited
leases, and tail-straggler re-issue all enabled, the assembled result
of every run is **bit-identical** to the historical serial runtime —
for both target applications, across seeds, in the simulator and on
the live in-process path.  The speed-up itself is gated in
``benchmarks/test_pipeline.py``; this file owns correctness: the depth
gate, the tail re-issue policy and its exactly-once folding, the
chaos interplay (a crashed donor with a prefetched lease outstanding,
a speculative copy racing a late honest replica), the granularity
taper, and the donor-side idle backoff.
"""

import random

import pytest

from repro.cluster.local import ThreadCluster
from repro.cluster.sim import FaultPlan, SimCluster, heterogeneous_pool
from repro.core.client import DonorClient, run_to_completion
from repro.core.integrity import canonical_digest
from repro.core.problem import Problem
from repro.core.scheduler import (
    AdaptiveGranularity,
    DonorState,
    FixedGranularity,
)
from repro.core.server import PipelineConfig, ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import ManualClock, RangeSumAlgorithm, RangeSumDataManager
from tests.test_data_cache import DIFF_SEEDS, dprml_problem, dsearch_problem

#: The standard pipelined runtime under test everywhere below.
PIPELINE = PipelineConfig(lease_depth=2, tail_reissue=True)


# ---------------------------------------------------------------------------
# Workload helpers


def run_sim(problem, pipeline=None, chaos=None, lease_timeout=120.0):
    """One simulated run; mirrors tests/test_data_cache.py's harness so
    the serial digests here match that suite's."""
    cluster = SimCluster(
        heterogeneous_pool(5, seed=2),
        policy=FixedGranularity(3),
        lease_timeout=lease_timeout,
        seed=5,
        pipeline=pipeline,
        chaos=chaos,
        max_unit_attempts=10,
    )
    pid = cluster.submit(problem)
    report = cluster.run()
    assert report.completed
    return cluster, report.results[pid]


def sum_problem(n=30) -> Problem:
    return Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm())


def compute(assignment, donor_id) -> WorkResult:
    lo, hi = assignment.payload
    return WorkResult(
        problem_id=assignment.problem_id,
        unit_id=assignment.unit_id,
        value=sum(range(lo, hi)),
        donor_id=donor_id,
        compute_seconds=1.0,
        items=assignment.items,
    )


# ---------------------------------------------------------------------------
# The differential equivalence suite: pipelined == serial, bit for bit


class TestSimDifferential:
    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dsearch_pipelined_bit_identical(self, seed):
        _c, plain = run_sim(dsearch_problem(seed, share=False))
        piped_cluster, piped = run_sim(
            dsearch_problem(seed, share=False), pipeline=PIPELINE
        )
        assert canonical_digest(piped) == canonical_digest(plain)
        counters = piped_cluster.obs.meters.snapshot()["counters"]
        # The overlap really happened: most fetches hid under compute.
        assert counters["farm.pipeline.prefetch.hits"] > 0

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dprml_pipelined_bit_identical(self, seed):
        _c, plain = run_sim(dprml_problem(seed, share=False))
        piped_cluster, piped = run_sim(
            dprml_problem(seed, share=False), pipeline=PIPELINE
        )
        assert canonical_digest(piped) == canonical_digest(plain)
        counters = piped_cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.pipeline.prefetch.hits"] > 0

    def test_pipeline_composes_with_payload_sharing(self):
        """Prefetch + the content-addressed blob cache together still
        assemble the serial, share-off answer."""
        _c, plain = run_sim(dsearch_problem(3, share=False))
        piped_cluster, piped = run_sim(
            dsearch_problem(3, share=True), pipeline=PIPELINE
        )
        assert canonical_digest(piped) == canonical_digest(plain)
        counters = piped_cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.pipeline.prefetch.hits"] > 0
        assert counters["farm.cache.hits"] > 0


class TestInProcessDifferential:
    """The live code path: a prefetching ThreadCluster against the
    single-threaded serial driver."""

    @pytest.mark.parametrize("build", [dsearch_problem, dprml_problem])
    def test_threaded_prefetch_bit_identical(self, build):
        serial_server = TaskFarmServer(
            policy=FixedGranularity(3), lease_timeout=120.0
        )
        pid = serial_server.submit(build(3, False), now=0.0)
        run_to_completion(serial_server, donors=3)
        plain = serial_server.final_result(pid)

        cluster = ThreadCluster(
            workers=3, policy=FixedGranularity(3), prefetch=True
        )
        pid2 = cluster.submit(build(3, False))
        cluster.run()
        piped = cluster.final_result(pid2)

        assert canonical_digest(piped) == canonical_digest(plain)
        # Donor-side meters crossed the wire inside result envelopes
        # and landed in the server registry.
        counters = cluster.server.obs.meters.snapshot()["counters"]
        assert (
            counters.get("farm.pipeline.prefetch.hits", 0)
            + counters.get("farm.pipeline.prefetch.misses", 0)
        ) > 0


# ---------------------------------------------------------------------------
# The depth gate


class TestLeaseDepth:
    def test_third_request_refused_at_depth_two(self):
        server = TaskFarmServer(
            policy=FixedGranularity(10),
            lease_timeout=100.0,
            pipeline=PipelineConfig(lease_depth=2),
        )
        pid = server.submit(sum_problem(100), now=0.0)
        server.register_donor("d0", 0.0)
        a1 = server.request_work("d0", 1.0)
        a2 = server.request_work("d0", 1.0)
        assert a1 is not None and a2 is not None
        assert server.request_work("d0", 1.0) is None
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.pipeline.depth.refusals"] == 1
        # Completing one unit frees one slot.
        assert server.submit_result(compute(a1, "d0"), 2.0)
        a3 = server.request_work("d0", 3.0)
        assert a3 is not None
        assert a3.unit_id not in (a1.unit_id, a2.unit_id)
        assert pid == a3.problem_id

    def test_depth_none_keeps_unlimited_behaviour(self):
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=100.0)
        server.submit(sum_problem(100), now=0.0)
        server.register_donor("d0", 0.0)
        grants = [server.request_work("d0", 1.0) for _ in range(10)]
        assert all(a is not None for a in grants)
        counters = server.obs.meters.snapshot()["counters"]
        assert counters.get("farm.pipeline.depth.refusals", 0) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="lease_depth"):
            PipelineConfig(lease_depth=0)
        with pytest.raises(ValueError, match="tail_window"):
            PipelineConfig(tail_window=0)
        with pytest.raises(ValueError, match="max_holders"):
            PipelineConfig(max_holders=1)


# ---------------------------------------------------------------------------
# Chaos interplay


class TestChaosInterplay:
    def test_donor_crash_with_prefetched_lease_outstanding(self):
        """A pipelined donor dies holding TWO leases (one computing, one
        prefetched).  Both must expire, requeue, and be recomputed
        exactly once by the survivor."""
        server = TaskFarmServer(
            policy=FixedGranularity(10),
            lease_timeout=30.0,
            pipeline=PipelineConfig(lease_depth=2),
        )
        pid = server.submit(sum_problem(30), now=0.0)  # 3 units
        server.register_donor("doomed", 0.0)
        server.register_donor("survivor", 0.0)
        a1 = server.request_work("doomed", 1.0)
        a2 = server.request_work("doomed", 1.0)  # the prefetched slot
        assert a1 is not None and a2 is not None
        b1 = server.request_work("survivor", 1.0)
        assert server.submit_result(compute(b1, "survivor"), 2.0)
        # "doomed" goes silent; both of its leases age out together.
        assert server.expire_leases(32.0) == 2
        t = 33.0
        while server.status(pid) is ProblemStatus.RUNNING:
            a = server.request_work("survivor", t)
            assert a is not None
            assert server.submit_result(compute(a, "survivor"), t + 0.5)
            t += 1.0
        assert server.final_result(pid) == sum(range(30))
        counters = server.obs.meters.snapshot()["counters"]
        # Exactly once: 30 items' worth of results applied, no waste.
        assert counters["farm.items.completed"] == 30
        assert counters["farm.leases.expired"] == 2
        assert counters.get("farm.pipeline.wasted.items", 0) == 0

    def test_tail_reissue_races_late_honest_replica(self):
        """The straggler finishes AFTER its speculative copy: the copy's
        result is applied, the late honest one is folded away as a
        duplicate and charged to the waste meter."""
        server = TaskFarmServer(
            policy=FixedGranularity(10),
            lease_timeout=100.0,
            pipeline=PipelineConfig(tail_reissue=True, tail_window=4),
        )
        pid = server.submit(sum_problem(30), now=0.0)  # 3 units
        for d in ("slow", "b", "c", "idle"):
            server.register_donor(d, 0.0)
        a = server.request_work("slow", 1.0)
        b = server.request_work("b", 1.0)
        c = server.request_work("c", 1.0)
        assert server.submit_result(compute(b, "b"), 2.0)
        # Fresh units are exhausted ("c" still computing); "idle" gets a
        # speculative copy of the oldest in-flight unit — "slow"'s.
        d = server.request_work("idle", 3.0)
        assert d is not None and d.unit_id == a.unit_id
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.pipeline.tail.reissues"] == 1
        # The copy wins the race...
        assert server.submit_result(compute(d, "idle"), 4.0)
        # ...and the late honest original is dropped, not double-counted.
        assert not server.submit_result(compute(a, "slow"), 5.0)
        assert server.submit_result(compute(c, "c"), 6.0)
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert server.final_result(pid) == sum(range(30))
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.units.duplicate"] == 1
        assert counters["farm.pipeline.wasted.items"] == a.items
        assert counters["farm.items.completed"] == 30
        # The loser's lease bookkeeping is cleaned up with the fold.
        assert not server.leases.holders(pid, a.unit_id)

    def test_tail_reissue_respects_max_holders(self):
        server = TaskFarmServer(
            policy=FixedGranularity(30),
            lease_timeout=100.0,
            pipeline=PipelineConfig(tail_reissue=True, tail_window=4),
        )
        server.submit(sum_problem(30), now=0.0)  # a single unit
        for d in ("a", "b", "c"):
            server.register_donor(d, 0.0)
        a = server.request_work("a", 1.0)
        b = server.request_work("b", 2.0)  # speculative copy (2 holders)
        assert a is not None and b is not None and b.unit_id == a.unit_id
        # A third holder would exceed max_holders=2.
        assert server.request_work("c", 3.0) is None

    @pytest.mark.parametrize("seed", [11, 23])
    def test_pipelined_chaos_crash_bit_identical(self, seed):
        """Machine crashes under the pipelined protocol (prefetched
        leases die with their donor) still converge to the fault-free
        serial answer."""
        _c, plain = run_sim(dsearch_problem(7, share=False))
        chaos = FaultPlan(seed=seed, crash_rate=0.15, crash_downtime=40.0)
        _piped, result = run_sim(
            dsearch_problem(7, share=False),
            pipeline=PIPELINE,
            chaos=chaos,
            lease_timeout=60.0,
        )
        assert canonical_digest(result) == canonical_digest(plain)


# ---------------------------------------------------------------------------
# The granularity taper


class TestTailTaper:
    def _calibrated_donor(self, policy, rate=100.0):
        donor = DonorState("d0", registered_at=0.0, last_seen=0.0)
        model = donor.perf_for(1, alpha=policy.alpha)
        model.observe(1000, 1000.0 / rate)  # rate items/s, well warmed
        model.last_items = 1000
        return donor

    def test_tail_cap_shrinks_final_units(self):
        policy = AdaptiveGranularity(
            target_seconds=10.0, max_items=10_000, tail_factor=4.0
        )
        donor = self._calibrated_donor(policy)
        # Mid-problem the ideal (rate * target = 1000) wins.
        assert policy.items_for(donor, 1, remaining=100_000) == 1000
        # Near the end the tail cap binds: ceil(remaining / factor).
        assert policy.items_for(donor, 1, remaining=8) == 2
        assert policy.items_for(donor, 1, remaining=3) == 1

    def test_no_taper_by_default_or_without_count(self):
        plain = AdaptiveGranularity(target_seconds=10.0, max_items=10_000)
        donor = self._calibrated_donor(plain)
        assert plain.items_for(donor, 1, remaining=8) == 1000
        tapered = AdaptiveGranularity(
            target_seconds=10.0, max_items=10_000, tail_factor=4.0
        )
        donor2 = self._calibrated_donor(tapered)
        # A DataManager that cannot count passes remaining=None.
        assert tapered.items_for(donor2, 1, remaining=None) == 1000

    def test_tail_factor_validation(self):
        with pytest.raises(ValueError, match="tail_factor"):
            AdaptiveGranularity(tail_factor=1.0)

    def test_fixed_policy_ignores_remaining(self):
        donor = DonorState("d0", registered_at=0.0, last_seen=0.0)
        assert FixedGranularity(7).items_for(donor, 1, remaining=2) == 7


# ---------------------------------------------------------------------------
# Donor-side idle backoff (satellite: no more fixed 0.1 s hammering)


class _IdlePort:
    """A server with never any work (and no completion either)."""

    def register_donor(self, donor_id):
        pass

    def deregister_donor(self, donor_id):
        pass

    def request_work(self, donor_id):
        return None

    def all_complete(self):
        return False


class TestIdleBackoff:
    def test_full_jitter_growth_and_cap(self):
        sleeps = []
        client = DonorClient(
            "d0",
            _IdlePort(),
            idle_sleep=0.5,
            idle_sleep_max=4.0,
            sleep=sleeps.append,
            rng=random.Random(7),
        )
        for _ in range(6):
            client._idle_wait()
        rng = random.Random(7)
        expected = [
            rng.uniform(0.0, min(4.0, 0.5 * 2.0**attempt))
            for attempt in range(6)
        ]
        assert sleeps == expected
        assert all(s <= 4.0 for s in sleeps)
        assert client.idle_polls == 6

    def test_cap_defaults_to_heartbeat_interval(self):
        sleeps = []
        client = DonorClient(
            "d0",
            _IdlePort(),
            idle_sleep=1.0,
            heartbeat_interval=2.0,
            sleep=sleeps.append,
            rng=random.Random(3),
        )
        for _ in range(5):
            client._idle_wait()
        rng = random.Random(3)
        expected = [
            rng.uniform(0.0, min(2.0, 1.0 * 2.0**attempt))
            for attempt in range(5)
        ]
        assert sleeps == expected

    def test_attempt_resets_after_work(self):
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=60.0)
        server.submit(sum_problem(10), now=0.0)
        from repro.core.client import InProcessServerPort

        client = DonorClient(
            "d0", InProcessServerPort(server), sleep=lambda _s: None
        )
        client._idle_attempt = 5  # as if it had been idling at a barrier
        client.run()
        assert client.units_done == 1
        assert client._idle_attempt == 0

    def test_idle_sleep_max_below_base_rejected(self):
        with pytest.raises(ValueError, match="idle_sleep_max"):
            DonorClient("d0", _IdlePort(), idle_sleep=1.0, idle_sleep_max=0.5)


# ---------------------------------------------------------------------------
# run_to_completion yields instead of busy-spinning


class TestRunToCompletion:
    def test_idle_rounds_yield_through_sleep(self):
        """Every unit is leased to a donor that never answers: the
        driver must *wait* (letting the clock advance toward lease
        expiry), not spin hot, and then finish on the requeued units."""
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=5.0)
        pid = server.submit(sum_problem(30), now=clock())
        server.register_donor("ghost", clock())
        ghost = server.request_work("ghost", clock())
        assert ghost is not None  # unit 0 stranded on the ghost

        yields = []

        def sleep(seconds):
            yields.append(seconds)
            clock.advance(1.0)

        run_to_completion(server, donors=2, clock=clock, sleep=sleep)
        assert server.final_result(pid) == sum(range(30))
        # The driver idled (units 1-2 done, unit 0 leased out) and
        # yielded instead of burning the 10k-round guard.
        assert 0 < len(yields) <= 10
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.leases.expired"] == 1
