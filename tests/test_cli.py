"""Tests for the command-line entry points.

The job commands run against tiny synthetic inputs on a thread
cluster; the deployment pair (repro-server / repro-donor) is exercised
over real localhost TCP in a background thread.
"""

import threading

import numpy as np
import pytest

from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import (
    alignment_to_sequences,
    random_yule_tree,
    simulate_alignment,
)
from repro.bio.seq import DNA, write_fasta
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cli.farm import donor_main
from repro.cli.jobs import dboot_main, dprml_main, dsearch_main


@pytest.fixture()
def dsearch_inputs(tmp_path):
    rng = np.random.default_rng(5)
    query = random_sequence("q0", 60, DNA, rng)
    database, homologs = seeded_database(query, 20, 2, seed=6)
    db_path = tmp_path / "db.fasta"
    q_path = tmp_path / "q.fasta"
    write_fasta(db_path, database)
    write_fasta(q_path, [query])
    conf = tmp_path / "dsearch.conf"
    conf.write_text("algorithm = sw\ntop_hits = 3\n")
    return db_path, q_path, conf, homologs


@pytest.fixture()
def alignment_fasta(tmp_path):
    tree = random_yule_tree(6, seed=61, mean_branch=0.15)
    aln = simulate_alignment(tree, JC69(), 300, seed=62)
    path = tmp_path / "aln.fasta"
    write_fasta(path, alignment_to_sequences(aln))
    return path


class TestDSearchCLI:
    def test_writes_tsv(self, dsearch_inputs, tmp_path, capsys):
        db, q, conf, homologs = dsearch_inputs
        out = tmp_path / "hits.tsv"
        code = dsearch_main(
            [str(db), str(q), "--config", str(conf), "--workers", "2",
             "--output", str(out)]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("query\trank")
        assert len(lines) == 4  # header + top 3
        top_subject = lines[1].split("\t")[2]
        assert top_subject in homologs

    def test_stdout_mode(self, dsearch_inputs, capsys):
        db, q, conf, _h = dsearch_inputs
        dsearch_main([str(db), str(q), "--config", str(conf), "--workers", "2"])
        out = capsys.readouterr().out
        assert "query\trank" in out


class TestDPRmlCLI:
    def test_single_instance_writes_tree(self, alignment_fasta, tmp_path, capsys):
        conf = tmp_path / "dprml.conf"
        conf.write_text("model = jc69\n")
        out = tmp_path / "tree.nwk"
        code = dprml_main(
            [str(alignment_fasta), "--config", str(conf), "--workers", "2",
             "--output", str(out)]
        )
        assert code == 0
        newick = out.read_text().strip()
        from repro.bio.phylo.tree import parse_newick

        assert parse_newick(newick).n_leaves == 6
        assert "logL" in capsys.readouterr().out

    def test_multi_instance_reports_best(self, alignment_fasta, tmp_path, capsys):
        conf = tmp_path / "dprml.conf"
        conf.write_text("model = jc69\n")
        code = dprml_main(
            [str(alignment_fasta), "--config", str(conf), "--workers", "2",
             "--instances", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(best)" in out


class TestDBootCLI:
    def test_prints_supports(self, alignment_fasta, capsys):
        code = dboot_main([str(alignment_fasta), "--replicates", "10", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reference tree:" in out
        assert "support" in out


class TestFarmCLI:
    def test_donor_against_live_server(self, capsys):
        """Full deployment path: facade + RMI server + donor CLI."""
        from repro.cluster.local import ServerFacade
        from repro.core.problem import Problem
        from repro.core.scheduler import FixedGranularity
        from repro.core.server import TaskFarmServer
        from repro.rmi import RMIServer
        from tests.helpers import RangeSumAlgorithm, RangeSumDataManager

        server = TaskFarmServer(policy=FixedGranularity(25), lease_timeout=60.0)
        facade = ServerFacade(server)
        rmi = RMIServer()
        rmi.bind("taskfarm", facade)
        pid = facade.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm())
        )
        try:
            code = donor_main(
                [f"{rmi.host}:{rmi.port}", "--name", "cli-donor", "--idle-sleep", "0.01"]
            )
            assert code == 0
            assert facade.final_result(pid) == sum(range(100))
            out = capsys.readouterr().out
            assert "cli-donor connected" in out
            assert "done after 4 units" in out
        finally:
            rmi.close()

    def test_donor_fetches_shared_blobs_over_data_channel(self, capsys):
        """The deployed cache path: a shared-payload search served over
        repro-server's facade + bulk data channel, worked by the donor
        CLI — blobs must cross the data channel, not the RMI fallback."""
        import numpy as np

        from repro.apps.dsearch import DSearchConfig
        from repro.apps.dsearch import build_problem as build_dsearch_problem
        from repro.bio.seq import DNA
        from repro.bio.seq.generate import random_sequence, seeded_database
        from repro.cluster.local import ServerFacade
        from repro.core.integrity import canonical_digest
        from repro.core.scheduler import FixedGranularity
        from repro.core.server import TaskFarmServer
        from repro.rmi import RMIServer
        from repro.rmi.datachannel import DataChannelServer

        rng = np.random.default_rng(5)
        query = random_sequence("q0", 48, DNA, rng)
        database, _ = seeded_database(
            query, decoy_count=10, homolog_count=2, seed=6,
            substitution_rate=0.1,
        )

        def deploy_and_run(share: bool):
            server = TaskFarmServer(
                policy=FixedGranularity(3), lease_timeout=60.0
            )
            data_channel = DataChannelServer(meters=server.obs.meters)
            facade = ServerFacade(server, data_channel=data_channel)
            rmi = RMIServer()
            rmi.bind("taskfarm", facade)
            pid = facade.submit(
                build_dsearch_problem(
                    database,
                    [query],
                    DSearchConfig(top_hits=3, share_payloads=share),
                )
            )
            try:
                code = donor_main(
                    [f"{rmi.host}:{rmi.port}", "--name", "blob-donor",
                     "--idle-sleep", "0.01"]
                )
                assert code == 0
                result = facade.final_result(pid)
            finally:
                rmi.close()
                data_channel.close()
            return canonical_digest(result), server.obs.meters.snapshot()

        cached_digest, cached_snap = deploy_and_run(share=True)
        plain_digest, _plain_snap = deploy_and_run(share=False)
        assert cached_digest == plain_digest
        counters = cached_snap["counters"]
        assert counters["net.blob.deliveries"] > 0
        assert counters["net.blob.published"] > 0
        # The blobs travelled over the bulk channel, not RMI.
        assert counters["data.transfers.out"] > 0

    def test_donor_bad_address(self):
        with pytest.raises(SystemExit):
            donor_main(["localhost"])  # missing port
        with pytest.raises(SystemExit):
            donor_main(["localhost:notaport"])
