"""Tests for Hirschberg linear-memory alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.align.hirschberg import hirschberg_align
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.scoring import dna_scheme
from repro.bio.seq import DNA
from repro.bio.seq.generate import mutate_sequence, random_sequence
from repro.bio.seq.sequence import dna

#: Linear gaps: gap of length k costs k * gap_extend (gap_open = 0).
LINEAR = dna_scheme(match=2.0, mismatch=-1.0, gap_open=0.0, gap_extend=-2.0)


class TestHirschberg:
    def test_identical(self):
        a = dna("a", "ACGTACGT")
        aln = hirschberg_align(a, a, LINEAR)
        assert aln.score == 16.0
        assert aln.query_aligned == aln.subject_aligned == "ACGTACGT"

    def test_simple_gap(self):
        a = dna("a", "ACGT")
        b = dna("b", "AGT")
        aln = hirschberg_align(a, b, LINEAR)
        assert aln.score == needleman_wunsch_score(a, b, LINEAR)
        assert aln.query_aligned.replace("-", "") == "ACGT"
        assert aln.subject_aligned.replace("-", "") == "AGT"

    def test_rejects_affine_scheme(self):
        affine = dna_scheme(gap_open=-10.0, gap_extend=-1.0)
        with pytest.raises(ValueError, match="linear gap"):
            hirschberg_align(dna("a", "AC"), dna("b", "AC"), affine)

    def test_long_homologs(self):
        rng = np.random.default_rng(4)
        a = random_sequence("a", 800, DNA, rng)
        b = mutate_sequence(a, rng, substitution_rate=0.05, insertion_rate=0.02,
                            deletion_rate=0.02)
        aln = hirschberg_align(a, b, LINEAR)
        assert aln.score == pytest.approx(needleman_wunsch_score(a, b, LINEAR))
        assert aln.identity > 0.8

    def test_gapped_strings_reconstruct_inputs(self):
        rng = np.random.default_rng(9)
        a = random_sequence("a", 120, DNA, rng)
        b = random_sequence("b", 90, DNA, rng)
        aln = hirschberg_align(a, b, LINEAR)
        assert aln.query_aligned.replace("-", "") == str(a)
        assert aln.subject_aligned.replace("-", "") == str(b)


@st.composite
def _pair(draw):
    q = draw(st.text(alphabet="ACGT", min_size=1, max_size=50))
    s = draw(st.text(alphabet="ACGT", min_size=1, max_size=50))
    return dna("q", q), dna("s", s)


class TestHirschbergProperties:
    @settings(max_examples=60, deadline=None)
    @given(_pair())
    def test_score_equals_nw_kernel(self, pair):
        """Hirschberg's rendered alignment must score exactly the
        optimal NW value — the strongest available correctness oracle."""
        q, s = pair
        aln = hirschberg_align(q, s, LINEAR)
        assert aln.score == pytest.approx(needleman_wunsch_score(q, s, LINEAR))

    @settings(max_examples=40, deadline=None)
    @given(_pair())
    def test_alignment_is_well_formed(self, pair):
        q, s = pair
        aln = hirschberg_align(q, s, LINEAR)
        assert len(aln.query_aligned) == len(aln.subject_aligned)
        assert aln.query_aligned.replace("-", "") == str(q)
        assert aln.subject_aligned.replace("-", "") == str(s)
        # No column may be gap-vs-gap.
        assert all(
            not (a == "-" and b == "-")
            for a, b in zip(aln.query_aligned, aln.subject_aligned)
        )
