"""Integration: core.metrics accounting over simulated-cluster logs.

The same metrics code must read live and simulated event streams; this
exercises it on SimCluster runs with heterogeneity and churn.
"""

import pytest

from repro.cluster.sim import MachineSpec, SimCluster, heterogeneous_pool
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.metrics import problem_metrics, run_metrics
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity


def run_sim(machines, policy, traces, seed=5, lease=600.0):
    cluster = SimCluster(
        machines, policy=policy, lease_timeout=lease, seed=seed, execute=False
    )
    pids = [cluster.submit(trace_problem(t)) for t in traces]
    report = cluster.run()
    assert report.completed
    return report, pids


class TestProblemMetricsFromSim:
    def test_single_problem_accounting(self):
        report, (pid,) = run_sim(
            heterogeneous_pool(6, seed=1),
            FixedGranularity(10),
            [WorkloadTrace.single_stage([5.0] * 100)],
        )
        pm = problem_metrics(report.log, pid)
        assert pm.items_completed == 100
        assert pm.units_completed == 10
        assert pm.makespan == pytest.approx(report.makespans[pid])
        assert pm.mean_unit_seconds > 0
        assert pm.duplicate_results == 0

    def test_churn_shows_up_as_requeues(self):
        machines = [
            MachineSpec("leaver", sessions=((0.0, 20.0),)),
            MachineSpec("stayer"),
        ]
        report, (pid,) = run_sim(
            machines,
            FixedGranularity(50),
            [WorkloadTrace.single_stage([1.0] * 100)],
            lease=60.0,
        )
        pm = problem_metrics(report.log, pid)
        assert pm.items_completed == 100
        assert pm.units_requeued >= 1

    def test_multi_problem_run_metrics(self):
        report, pids = run_sim(
            heterogeneous_pool(8, seed=2),
            AdaptiveGranularity(target_seconds=30.0),
            [
                WorkloadTrace.single_stage([2.0] * 150),
                WorkloadTrace.single_stage([4.0] * 80),
            ],
        )
        rm = run_metrics(report.log)
        assert set(rm.problems) == set(pids)
        total_items = sum(p.items_completed for p in rm.problems.values())
        assert total_items == 150 + 80
        # Donor accounting must balance the problem accounting.
        assert sum(d.items_completed for d in rm.donors.values()) == total_items
        assert 0 < rm.mean_utilization <= 1.0
        assert rm.total_busy_seconds > 0
        assert rm.total_span >= max(report.makespans.values())

    def test_fast_donor_contributes_more(self):
        machines = [
            MachineSpec("fast", speed=4.0),
            MachineSpec("slow", speed=0.5),
        ]
        report, _pids = run_sim(
            machines,
            AdaptiveGranularity(target_seconds=20.0),
            [WorkloadTrace.single_stage([1.0] * 400)],
        )
        rm = run_metrics(report.log)
        assert (
            rm.donors["fast"].items_completed > rm.donors["slow"].items_completed
        )
