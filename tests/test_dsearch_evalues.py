"""Tests for DSEARCH E-value annotation."""

import numpy as np
import pytest

from repro.apps.dsearch import DSearchConfig, run_dsearch
from repro.apps.dsearch.evalues import annotate_report
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database


@pytest.fixture(scope="module")
def searched():
    rng = np.random.default_rng(77)
    query = random_sequence("q", 100, DNA, rng)
    database, homologs = seeded_database(
        query, decoy_count=40, homolog_count=2, seed=78, substitution_rate=0.08
    )
    config = DSearchConfig(top_hits=10)
    report = run_dsearch(database, [query], config, workers=2)
    return query, database, homologs, config, report


class TestAnnotation:
    def test_homologs_significant_decoys_not(self, searched):
        query, database, homologs, config, report = searched
        annotated = annotate_report(report, [query], database, config, seed=5)
        scored = annotated.hits["q"]
        for sh in scored:
            if sh.hit.subject_id in homologs:
                assert sh.evalue < 1e-4
                assert sh.significant
            else:
                assert sh.evalue > 1e-4

    def test_significant_hits_filter(self, searched):
        query, database, homologs, config, report = searched
        annotated = annotate_report(report, [query], database, config, seed=5)
        sig = annotated.significant_hits("q")
        assert {s.hit.subject_id for s in sig} >= set(homologs)
        assert all(s.significant for s in sig)

    def test_bit_scores_monotone_in_raw_score(self, searched):
        query, database, _h, config, report = searched
        annotated = annotate_report(report, [query], database, config, seed=5)
        bits = [s.bit_score for s in annotated.hits["q"]]  # best-first order
        assert bits == sorted(bits, reverse=True)

    def test_evalues_monotone_opposite_to_scores(self, searched):
        query, database, _h, config, report = searched
        annotated = annotate_report(report, [query], database, config, seed=5)
        scored = annotated.hits["q"]  # hits are sorted best-first
        evalues = [s.evalue for s in scored]
        assert evalues == sorted(evalues)

    def test_unknown_query_rejected(self, searched):
        query, database, _h, config, report = searched
        with pytest.raises(KeyError, match="unknown query"):
            annotate_report(report, [], database, config)

    def test_statistics_exposed(self, searched):
        query, database, _h, config, report = searched
        annotated = annotate_report(report, [query], database, config, seed=5)
        assert "q" in annotated.statistics
        assert annotated.statistics["q"].lam > 0
