"""The write-ahead journal: framing, rotation, compaction, torn tails,
and deterministic crash recovery.

The headline property (hypothesis-driven): chopping *any* number of
bytes off the tail of a valid journal and recovering yields a loadable,
internally consistent server that can still be driven to the correct
final result — a torn tail is always a valid shorter history.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    MAGIC as CKPT_MAGIC,
    CheckpointBlob,
    CheckpointError,
    dumps_checkpoint,
    loads_checkpoint,
    parse_checkpoint,
)
from repro.core.integrity import IntegrityPolicy
from repro.core.journal import (
    DirStore,
    JournalError,
    JournalWriter,
    MemoryStore,
    compact,
    read_journal,
    recover,
    torn_tail,
)
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import (
    RangeSumAlgorithm,
    RangeSumDataManager,
    StagedAlgorithm,
    StagedDataManager,
)


def make_server(store=None, integrity=None, unit_items=10):
    journal = JournalWriter(store) if store is not None else None
    server = TaskFarmServer(
        policy=FixedGranularity(unit_items),
        lease_timeout=100.0,
        integrity=integrity,
        journal=journal,
    )
    return server


def compute(a, donor="d0"):
    lo, hi = a.payload
    return WorkResult(a.problem_id, a.unit_id, sum(range(lo, hi)), donor, 1.0, a.items)


def drive_to_completion(server, pid, donor="driver", t=1000.0, compute_fn=compute):
    """Pull and fold units with one fresh donor until the problem ends."""
    server.register_donor(donor, t)
    for _ in range(10_000):
        if server.status(pid) is not ProblemStatus.RUNNING:
            return t
        a = server.request_work(donor, (t := t + 0.1))
        if a is None:
            server.expire_leases((t := t + server.leases.timeout))
            continue
        server.submit_result(compute_fn(a, donor), (t := t + 0.1))
    raise AssertionError("problem did not complete")


def chop_tail(store, nbytes: int) -> int:
    """Chop *nbytes* off the journal's end, crossing segments."""
    removed = 0
    while removed < nbytes:
        got = torn_tail(store, nbytes - removed)
        if got == 0:
            break
        removed += got
    return removed


class TestFraming:
    def test_roundtrip_records_and_lsns(self):
        store = MemoryStore()
        writer = JournalWriter(store)
        for i in range(5):
            assert writer.append("k", float(i), value=i) == i + 1
        assert writer.last_lsn == 5
        records, next_lsn, torn = read_journal(store)
        assert [r["lsn"] for r in records] == [1, 2, 3, 4, 5]
        assert [r["value"] for r in records] == list(range(5))
        assert next_lsn == 6 and torn == 0

    def test_rotation_spills_segments(self):
        store = MemoryStore()
        writer = JournalWriter(store, segment_bytes=64)
        for i in range(20):
            writer.append("k", 0.0, value=i)
        assert len(store.names()) > 1
        records, next_lsn, _ = read_journal(store)
        assert len(records) == 20 and next_lsn == 21
        # Segment names encode their first LSN.
        assert store.names()[0] == "wal-000000000001.log"

    def test_explicit_rotate_seals_segment(self):
        store = MemoryStore()
        writer = JournalWriter(store)
        writer.append("a", 0.0)
        writer.rotate()
        writer.append("b", 0.0)
        assert store.names() == ["wal-000000000001.log", "wal-000000000002.log"]

    def test_torn_partial_frame_truncated_once(self):
        store = MemoryStore()
        writer = JournalWriter(store)
        for i in range(3):
            writer.append("k", 0.0, value=i)
        name = store.names()[0]
        whole = len(store.read(name))
        store.truncate(name, whole - 5)  # rip into the last frame
        records, next_lsn, torn = read_journal(store)
        assert [r["value"] for r in records] == [0, 1]
        assert next_lsn == 3 and torn > 0
        # The truncation was physical: a second read is clean.
        records2, _, torn2 = read_journal(store)
        assert len(records2) == 2 and torn2 == 0

    def test_crc_flip_in_tail_truncates_loudly(self):
        from repro.obs.meters import MeterRegistry

        store = MemoryStore()
        writer = JournalWriter(store)
        for i in range(4):
            writer.append("k", 0.0, value=i)
        name = store.names()[0]
        data = bytearray(store.read(name))
        data[-2] ^= 0xFF  # damage the last record's payload
        store._segments[name] = data
        meters = MeterRegistry()
        records, next_lsn, torn = read_journal(store, meters=meters)
        assert [r["value"] for r in records] == [0, 1, 2]
        assert next_lsn == 4 and torn > 0
        counters = meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] == 1

    def test_corruption_before_tail_raises(self):
        store = MemoryStore()
        writer = JournalWriter(store)
        writer.append("a", 0.0)
        writer.rotate()
        writer.append("b", 0.0)
        first = store.names()[0]
        store.truncate(first, len(store.read(first)) - 3)
        with pytest.raises(JournalError, match="before the journal tail"):
            read_journal(store)

    def test_fully_torn_segment_deleted(self):
        store = MemoryStore()
        writer = JournalWriter(store)
        writer.append("a", 0.0)
        writer.rotate()
        writer.append("b", 0.0)
        last = store.names()[-1]
        # Leave only a ripped header: no frame survives.
        store.truncate(last, 6)
        records, next_lsn, torn = read_journal(store)
        assert [r["kind"] for r in records] == ["a"]
        assert next_lsn == 2 and torn > 0
        assert store.names() == ["wal-000000000001.log"]

    def test_compact_removes_covered_segments(self):
        store = MemoryStore()
        writer = JournalWriter(store, segment_bytes=1)  # one record per segment
        for i in range(4):
            writer.append("k", 0.0, value=i)
        assert len(store.names()) == 4
        removed = compact(store, upto_lsn=2)
        assert removed == 2
        records, next_lsn, _ = read_journal(store)
        assert [r["lsn"] for r in records] == [3, 4] and next_lsn == 5

    def test_compact_never_deletes_uncovered_or_active(self):
        store = MemoryStore()
        writer = JournalWriter(store, segment_bytes=1)
        for i in range(3):
            writer.append("k", 0.0, value=i)
        assert compact(store, upto_lsn=0) == 0
        assert len(store.names()) == 3
        # Even a checkpoint past the end keeps the newest segment.
        assert compact(store, upto_lsn=99) == 2
        assert len(store.names()) == 1

    def test_dir_store_matches_memory_store(self, tmp_path):
        mem, disk = MemoryStore(), DirStore(tmp_path / "wal")
        for store in (mem, disk):
            writer = JournalWriter(store, segment_bytes=64)
            for i in range(10):
                writer.append("k", float(i), value=i)
        assert disk.names() == mem.names()
        assert [disk.read(n) for n in disk.names()] == [
            mem.read(n) for n in mem.names()
        ]
        chop_tail(mem, 9)
        disk.close()
        chop_tail(disk, 9)
        mem_records, mem_next, mem_torn = read_journal(mem)
        disk_records, disk_next, disk_torn = read_journal(disk)
        assert mem_records == disk_records
        assert (mem_next, mem_torn) == (disk_next, disk_torn)


class TestCheckpointV4:
    def test_older_version_rejected_loudly(self):
        stale = CheckpointBlob(version=3, saved_at=0.0, snapshots=[])
        raw = CKPT_MAGIC + pickle.dumps(stale)
        with pytest.raises(CheckpointError, match="version 3, expected 4"):
            parse_checkpoint(raw)

    def test_journal_lsn_roundtrip(self):
        server = make_server()
        raw = dumps_checkpoint(server, now=1.0, journal_lsn=17)
        assert parse_checkpoint(raw).journal_lsn == 17
        # The default (no journal) stays 0 for compatibility.
        assert parse_checkpoint(dumps_checkpoint(server, 1.0)).journal_lsn == 0


class TestRecovery:
    def test_crash_mid_run_recovers_and_completes(self):
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        t = 0.0
        for _ in range(4):
            a = server.request_work("d0", (t := t + 0.1))
            server.submit_result(compute(a), (t := t + 0.1))
        leased = server.request_work("d0", (t := t + 0.1))
        assert leased is not None

        # kill -9: the server object is simply dropped.
        fresh = make_server()
        report = recover(fresh, store, now=t + 1.0)
        assert report.replayed > 0 and report.torn_bytes == 0
        assert report.restored_problems == []  # no checkpoint in play
        assert fresh.status(pid) is ProblemStatus.RUNNING
        assert fresh.log.of_kind("server.recovered")
        # The in-flight lease died with the server; its unit is back on
        # the requeue, not lost and not double-counted.
        state = fresh._problems[pid]
        assert leased.unit_id in {u.unit_id for u in state.requeue}
        assert state.units_completed == 4
        drive_to_completion(fresh, pid)
        assert fresh.final_result(pid) == sum(range(100))

    def test_recovered_server_journals_onward(self):
        """Recovery composes: crash again after recovering, recover again."""
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(60), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 0.1)
        server.submit_result(compute(a), 0.2)

        second = make_server()
        recover(second, store, now=1.0)
        second.register_donor("d1", 1.1)
        b = second.request_work("d1", 1.2)
        second.submit_result(compute(b, "d1"), 1.3)

        third = make_server()
        report = recover(third, store, now=2.0)
        assert third._problems[pid].units_completed == 2
        assert report.next_lsn > 1
        drive_to_completion(third, pid)
        assert third.final_result(pid) == sum(range(60))

    def test_duplicate_result_rejected_across_crash(self):
        """The ack-crash window: a fold that was journaled but never
        acknowledged is retried by its donor against the recovered
        server, which must shed it as a duplicate."""
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(50), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 0.1)
        result = compute(a)
        assert server.submit_result(result, 0.2) is True

        fresh = make_server()
        recover(fresh, store, now=1.0)
        fresh.register_donor("d0", 1.1)
        assert fresh.submit_result(result, 1.2) is False  # retry shed
        assert fresh._problems[pid].units_completed == 1

    def test_checkpoint_plus_tail_replay(self):
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        t = 0.0
        for _ in range(3):
            a = server.request_work("d0", (t := t + 0.1))
            server.submit_result(compute(a), (t := t + 0.1))
        # Checkpoint at a quiescent journal boundary, then compact.
        lsn = server.journal.last_lsn
        checkpoint = dumps_checkpoint(server, t, journal_lsn=lsn)
        server.journal.rotate()
        compact(store, lsn)
        # Two more folds land after the checkpoint.
        for _ in range(2):
            a = server.request_work("d0", (t := t + 0.1))
            server.submit_result(compute(a), (t := t + 0.1))

        fresh = make_server()
        report = recover(fresh, store, checkpoint=checkpoint, now=t + 1.0)
        assert report.checkpoint_lsn == lsn
        assert report.restored_problems == [pid]
        assert 0 < report.replayed  # only the tail, not the whole history
        assert fresh._problems[pid].units_completed == 5
        drive_to_completion(fresh, pid)
        assert fresh.final_result(pid) == sum(range(100))

    def test_torn_tail_truncated_then_recovers(self):
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(80), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        t = 0.0
        for _ in range(4):
            a = server.request_work("d0", (t := t + 0.1))
            server.submit_result(compute(a), (t := t + 0.1))
        torn_tail(store, 7)  # crash mid-write: a ripped final frame

        fresh = make_server()
        report = recover(fresh, store, now=t + 1.0)
        # The whole ripped frame is truncated, not just the chopped bytes.
        assert report.torn_bytes >= 7
        counters = fresh.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] == 1
        assert counters["farm.recovery.replayed"] == report.replayed
        drive_to_completion(fresh, pid)
        assert fresh.final_result(pid) == sum(range(80))

    def test_voting_state_survives_crash(self):
        policy = IntegrityPolicy(replication=2)
        store = MemoryStore()
        server = make_server(store, integrity=policy)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(40), RangeSumAlgorithm()), 0.0
        )
        for donor in ("d0", "d1"):
            server.register_donor(donor, 0.0)
        a = server.request_work("d0", 0.1)
        server.submit_result(compute(a, "d0"), 0.2)  # 1 of 2 votes: pending

        fresh = make_server(integrity=policy)
        recover(fresh, store, now=1.0)
        state = fresh._problems[pid]
        assert len(state.voting[a.unit_id].votes) == 1
        # Two honest donors settle every quorum post-crash (replication
        # needs votes from distinct donors, so one driver cannot finish).
        t = 1.0
        for donor in ("d1", "d2"):
            fresh.register_donor(donor, t)
        for _ in range(10_000):
            if fresh.status(pid) is not ProblemStatus.RUNNING:
                break
            for donor in ("d1", "d2"):
                work = fresh.request_work(donor, (t := t + 0.1))
                if work is not None:
                    fresh.submit_result(compute(work, donor), (t := t + 0.1))
        assert fresh.final_result(pid) == sum(range(40))
        rep = fresh.reputation.get("d0")
        assert rep is not None and rep.agreements > 0

    def test_reputation_transitions_survive_crash(self):
        policy = IntegrityPolicy(replication=2)
        store = MemoryStore()
        server = make_server(store, integrity=policy)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        donors = ["liar", "d1", "d2"]
        for donor in donors:
            server.register_donor(donor, 0.0)
        t = 1.0
        for _ in range(10_000):
            rep = server.reputation.get("liar")
            if rep is not None and rep.distrusted:
                break
            for donor in donors:
                a = server.request_work(donor, (t := t + 0.1))
                if a is None:
                    continue
                lo, hi = a.payload
                value = ("lie", a.unit_id) if donor == "liar" else sum(range(lo, hi))
                server.submit_result(
                    WorkResult(a.problem_id, a.unit_id, value, donor, 1.0, a.items),
                    (t := t + 0.1),
                )
        else:
            raise AssertionError("liar never quarantined")

        fresh = make_server(integrity=policy)
        recover(fresh, store, now=t + 1.0)
        assert "liar" in fresh.reputation.quarantined_ids()
        fresh.register_donor("liar", (t := t + 1.0))
        assert fresh.request_work("liar", (t := t + 0.1)) is None
        for donor in ("d1", "d2"):
            fresh.register_donor(donor, t)
        for _ in range(10_000):
            if fresh.status(pid) is not ProblemStatus.RUNNING:
                break
            for donor in ("d1", "d2"):
                a = fresh.request_work(donor, (t := t + 0.1))
                if a is None:
                    continue
                fresh.submit_result(compute(a, donor), (t := t + 0.1))
        assert fresh.final_result(pid) == sum(range(100))

    def test_staged_problem_recuts_deterministically(self):
        """Replay re-cuts via DataManager.next_unit in journal order —
        including across a stage barrier whose pending list pops from
        the end (order-sensitive, like DPRml's edge batches)."""

        def staged_compute(a, donor="d0"):
            return WorkResult(
                a.problem_id,
                a.unit_id,
                StagedAlgorithm().compute(a.payload),
                donor,
                1.0,
                a.items,
            )

        store = MemoryStore()
        server = make_server(store, unit_items=1)
        n = 8
        pid = server.submit(
            Problem("staged", StagedDataManager(n), StagedAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        t = 0.0
        for _ in range(5):  # crash mid-stage-1
            a = server.request_work("d0", (t := t + 0.1))
            server.submit_result(staged_compute(a), (t := t + 0.1))

        fresh = make_server(unit_items=1)
        recover(fresh, store, now=t + 1.0)
        drive_to_completion(fresh, pid, compute_fn=staged_compute)
        assert fresh.final_result(pid) == sum(i * i for i in range(n))

    def test_result_for_uncut_unit_refused_after_rollback(self):
        """A torn tail can roll next_unit_id back past a unit a donor
        still holds; its result must be refused as stale, not folded
        into a history that never cut it."""
        store = MemoryStore()
        server = make_server(store)
        pid = server.submit(
            Problem("sum", RangeSumDataManager(50), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a1 = server.request_work("d0", 0.1)
        name = store.names()[0]
        before_a2 = len(store.read(name))
        a2 = server.request_work("d0", 0.2)
        # Rip the journal back to just before a2's cut record.
        torn_tail(store, len(store.read(name)) - before_a2)

        fresh = make_server()
        recover(fresh, store, now=1.0)
        assert fresh._problems[pid].next_unit_id == a2.unit_id
        fresh.register_donor("d0", 1.0)
        assert fresh.submit_result(compute(a2), 1.1) is False
        counters = fresh.obs.meters.snapshot()["counters"]
        assert counters["farm.units.stale"] == 1
        assert fresh.submit_result(compute(a1), 1.2) is True
        drive_to_completion(fresh, pid)
        assert fresh.final_result(pid) == sum(range(50))

    def test_replay_divergence_fails_loudly(self):
        """A journal whose re-cut does not reproduce the recorded slice
        must raise, not fold results into the wrong data."""
        store = MemoryStore()
        server = make_server(store)
        server.submit(
            Problem("sum", RangeSumDataManager(30), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        server.request_work("d0", 0.1)
        # Doctor the cut record: claim a unit id replay cannot reach.
        records, _, _ = read_journal(store)
        doctored = MemoryStore()
        writer = JournalWriter(doctored)
        for record in records:
            fields = {
                k: v for k, v in record.items() if k not in ("lsn", "kind", "now")
            }
            if record["kind"] == "unit.cut":
                fields["uid"] = fields["uid"] + 1
            writer.append(record["kind"], record["now"], **fields)
        with pytest.raises(JournalError, match="replay divergence"):
            recover(make_server(), doctored, now=1.0)


# -- the hypothesis property ---------------------------------------------

EXPECTED_TOTAL = sum(range(60))


@pytest.fixture(scope="module")
def full_journal():
    """One complete journaled run; tests recover from chopped copies."""
    store = MemoryStore()
    server = TaskFarmServer(
        policy=FixedGranularity(7),
        lease_timeout=100.0,
        journal=JournalWriter(store, segment_bytes=512),
    )
    pid = server.submit(
        Problem("sum", RangeSumDataManager(60), RangeSumAlgorithm()), 0.0
    )
    drive_to_completion(server, pid, donor="d0", t=0.0)
    assert server.final_result(pid) == EXPECTED_TOTAL
    total_bytes = sum(len(store.read(n)) for n in store.names())
    return store, pid, total_bytes


def copy_store(store: MemoryStore) -> MemoryStore:
    dup = MemoryStore()
    for name in store.names():
        dup._segments[name] = bytearray(store.read(name))
    return dup


class TestPrefixTruncationProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(chop=st.integers(min_value=0, max_value=1 << 16))
    def test_any_tail_chop_recovers_consistently(self, chop, full_journal):
        store, pid, total_bytes = full_journal
        chopped = copy_store(store)
        chop_tail(chopped, chop % (total_bytes + 1))

        fresh = make_server(unit_items=7)
        recover(fresh, chopped, now=5000.0)

        if pid not in fresh._problems:
            # The chop consumed the submission itself: an empty but
            # valid history (the submitter would simply resubmit).
            assert fresh.all_complete()
            return
        state = fresh._problems[pid]
        # Internal consistency: counters agree with the fold set, and
        # no unit is simultaneously folded and queued.
        assert state.units_completed == len(state.completed_units)
        assert not (
            state.completed_units & {u.unit_id for u in state.requeue}
        )
        # Loadable: the recovered state checkpoints and restores.
        raw = dumps_checkpoint(fresh, 5001.0, journal_lsn=fresh.journal.last_lsn)
        reloaded = make_server(unit_items=7)
        assert loads_checkpoint(raw, reloaded, now=5002.0) == [pid]
        # Drivable: both servers still reach the correct total.
        for server in (fresh, reloaded):
            if server.status(pid) is ProblemStatus.RUNNING:
                drive_to_completion(server, pid, t=6000.0)
            assert server.final_result(pid) == EXPECTED_TOTAL
