"""The deterministic chaos harness.

The headline property: for any seeded fault schedule (donor crashes,
byzantine corruption, dropped / duplicated / delayed results, one
mid-run server restart), every problem completes and the assembled
result is **bit-identical** to the fault-free run — for both target
applications.  Plus the byte-level wire chaos: corrupted RMI frames
and datachannel streams must fail loudly without killing the server.
"""

import os
import socket

import numpy as np
import pytest

from repro.apps.dprml import DPRmlConfig
from repro.apps.dprml import build_problem as build_dprml_problem
from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch import build_problem as build_dsearch_problem
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.sim import FaultPlan, SimCluster, WireChaos, heterogeneous_pool
from repro.core.integrity import IntegrityPolicy, canonical_digest
from repro.core.scheduler import FixedGranularity
from repro.rmi import serialize
from repro.rmi.datachannel import DataChannelServer, fetch_data, push_data
from repro.rmi.errors import ChecksumError, ConnectionClosed, RMIError
from repro.rmi.reconnect import ReconnectingPort
from repro.rmi.transport import FrameSocket, TransportServer, dial
from repro.obs.meters import MeterRegistry
from repro.util.rng import spawn_rng

#: The chaos-smoke seed set.  CI adds one rolling seed from the run
#: number (see .github/workflows/ci.yml) so the schedule space keeps
#: getting explored; the failing seed is in the test id, so a red run
#: is replayable verbatim.
CHAOS_SEEDS = [11, 23, 37, 59, 83]
_extra = os.environ.get("CHAOS_EXTRA_SEED")
if _extra and _extra.isdigit():
    CHAOS_SEEDS.append(int(_extra))


#: Chaos seeds exercised by the cached-vs-uncached differential (a
#: subset: each case runs two full simulations).
CACHE_CHAOS_SEEDS = CHAOS_SEEDS[:2]


def chaos_plan(seed: int, restart_at: float | None) -> FaultPlan:
    """Every fault type at once, scheduled by *seed*."""
    return FaultPlan(
        seed=seed,
        crash_rate=0.15,
        crash_downtime=40.0,
        byzantine_fraction=0.3,
        corrupt_rate=0.7,
        drop_rate=0.1,
        dup_rate=0.15,
        delay_rate=0.2,
        max_delay=90.0,  # beyond the lease timeout: late-result paths
        server_restart_at=restart_at,
    )


def run_sim(build_problem, chaos=None, integrity=None):
    cluster = SimCluster(
        heterogeneous_pool(6, seed=2),
        policy=FixedGranularity(4),
        lease_timeout=60.0,
        seed=5,
        integrity=integrity,
        chaos=chaos,
        max_unit_attempts=10,
    )
    pid = cluster.submit(build_problem())
    report = cluster.run()
    return cluster, pid, report


@pytest.fixture(scope="module")
def dsearch_factory():
    rng = np.random.default_rng(7)
    query = random_sequence("q0", 60, DNA, rng)
    database, _ = seeded_database(
        query, decoy_count=14, homolog_count=2, seed=11, substitution_rate=0.1
    )

    def build():
        return build_dsearch_problem(
            database, [query], DSearchConfig(top_hits=4)
        )

    return build


@pytest.fixture(scope="module")
def dprml_factory():
    true = random_yule_tree(6, seed=33, mean_branch=0.2)
    alignment = simulate_alignment(true, JC69(), 200, seed=34)

    def build():
        return build_dprml_problem(alignment, DPRmlConfig(model="jc69"))

    return build


@pytest.fixture(scope="module")
def dsearch_baseline(dsearch_factory):
    """Fault-free digest + a restart time inside the chaos run."""
    _cluster, pid, report = run_sim(dsearch_factory)
    assert report.completed
    return canonical_digest(report.results[pid]), report.sim_time * 0.4


@pytest.fixture(scope="module")
def dprml_baseline(dprml_factory):
    _cluster, pid, report = run_sim(dprml_factory)
    assert report.completed
    return canonical_digest(report.results[pid]), report.sim_time * 0.4


class TestChaosProperty:
    """Completion + bit-identical results under seeded fault schedules."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_dsearch_survives_chaos(self, seed, dsearch_factory, dsearch_baseline):
        baseline_digest, restart_at = dsearch_baseline
        _cluster, pid, report = run_sim(
            dsearch_factory,
            chaos=chaos_plan(seed, restart_at),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed, f"chaos seed {seed}: run did not finish"
        assert pid in report.results, f"chaos seed {seed}: problem failed"
        assert canonical_digest(report.results[pid]) == baseline_digest, (
            f"chaos seed {seed}: assembled result diverged from fault-free run"
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_dprml_survives_chaos(self, seed, dprml_factory, dprml_baseline):
        baseline_digest, restart_at = dprml_baseline
        _cluster, pid, report = run_sim(
            dprml_factory,
            chaos=chaos_plan(seed, restart_at),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed, f"chaos seed {seed}: run did not finish"
        assert pid in report.results, f"chaos seed {seed}: problem failed"
        assert canonical_digest(report.results[pid]) == baseline_digest, (
            f"chaos seed {seed}: assembled result diverged from fault-free run"
        )

    def test_same_seed_replays_identically(self, dsearch_factory, dsearch_baseline):
        """The determinism contract: one seed, one fault schedule."""
        _digest, restart_at = dsearch_baseline

        def trace(seed):
            cluster, _pid, report = run_sim(
                dsearch_factory,
                chaos=chaos_plan(seed, restart_at),
                integrity=IntegrityPolicy(replication=2),
            )
            return [
                (e.time, e.kind, e.data.get("donor_id"), e.data.get("unit_id"))
                for e in report.log
            ]

        assert trace(CHAOS_SEEDS[0]) == trace(CHAOS_SEEDS[0])
        assert trace(CHAOS_SEEDS[0]) != trace(CHAOS_SEEDS[1])

    def test_faults_really_fire(self, dsearch_factory, dsearch_baseline):
        """Guard against a harness that silently injects nothing."""
        _digest, restart_at = dsearch_baseline
        cluster, _pid, report = run_sim(
            dsearch_factory,
            chaos=chaos_plan(CHAOS_SEEDS[0], restart_at),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.log.of_kind("server.restarted")
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.integrity.redundant_units"] > 0


class TestCachedChaosEquivalence:
    """The data cache under fire: a run with shared payload blobs and
    every fault type active (including a mid-run server restart, which
    rebuilds the server — and its shared-blob table — from checkpoint
    bytes while donors keep their warm caches) must assemble the same
    bits as a fault-free run with the cache off entirely."""

    @pytest.fixture(scope="class")
    def dsearch_uncached_digest(self, dsearch_factory):
        rng = np.random.default_rng(7)
        query = random_sequence("q0", 60, DNA, rng)
        database, _ = seeded_database(
            query, decoy_count=14, homolog_count=2, seed=11,
            substitution_rate=0.1,
        )
        _cluster, pid, report = run_sim(
            lambda: build_dsearch_problem(
                database,
                [query],
                DSearchConfig(top_hits=4, share_payloads=False),
            )
        )
        assert report.completed
        return canonical_digest(report.results[pid])

    @pytest.fixture(scope="class")
    def dprml_uncached_digest(self):
        true = random_yule_tree(6, seed=33, mean_branch=0.2)
        alignment = simulate_alignment(true, JC69(), 200, seed=34)
        _cluster, pid, report = run_sim(
            lambda: build_dprml_problem(
                alignment, DPRmlConfig(model="jc69", share_payloads=False)
            )
        )
        assert report.completed
        return canonical_digest(report.results[pid])

    @pytest.mark.parametrize("seed", CACHE_CHAOS_SEEDS)
    def test_dsearch_cached_chaos_matches_uncached_clean(
        self, seed, dsearch_factory, dsearch_baseline, dsearch_uncached_digest
    ):
        cached_clean_digest, restart_at = dsearch_baseline
        # Sharing on or off must not change the assembled bits even
        # before any chaos enters the picture.
        assert cached_clean_digest == dsearch_uncached_digest
        cluster, pid, report = run_sim(
            dsearch_factory,  # default config: share_payloads on
            chaos=chaos_plan(seed, restart_at),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed
        assert canonical_digest(report.results[pid]) == dsearch_uncached_digest
        counters = cluster.obs.meters.snapshot()["counters"]
        # The cache really was in the line of fire.
        assert counters["farm.cache.misses"] > 0
        assert counters["net.blob.bytes"] > 0
        assert report.log.of_kind("server.restarted")

    @pytest.mark.parametrize("seed", CACHE_CHAOS_SEEDS)
    def test_dprml_cached_chaos_matches_uncached_clean(
        self, seed, dprml_factory, dprml_baseline, dprml_uncached_digest
    ):
        cached_clean_digest, restart_at = dprml_baseline
        assert cached_clean_digest == dprml_uncached_digest
        cluster, pid, report = run_sim(
            dprml_factory,
            chaos=chaos_plan(seed, restart_at),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed
        assert canonical_digest(report.results[pid]) == dprml_uncached_digest
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.cache.misses"] > 0


def recovery_plan(
    seed: int,
    restart_at: float,
    torn: int = 0,
    ack_crash: float = 0.0,
) -> FaultPlan:
    """Every fault type plus the durability drills: periodic journal
    checkpoints, crashes in the journal-append-to-ack window, and
    optional byte-level tail corruption at each restart."""
    return FaultPlan(
        seed=seed,
        crash_rate=0.15,
        crash_downtime=40.0,
        byzantine_fraction=0.3,
        corrupt_rate=0.7,
        drop_rate=0.1,
        dup_rate=0.15,
        delay_rate=0.2,
        max_delay=90.0,
        server_restart_at=restart_at,
        checkpoint_every=restart_at * 0.45,
        torn_tail_bytes=torn,
        ack_crash_rate=ack_crash,
    )


#: The crash/recover differentials run two full sims per case.
RECOVERY_SEEDS = CHAOS_SEEDS[:3]


class TestRecoveryDrills:
    """Crash/recover vs. never-crashed, bit-identical.

    Every restart here is a genuine recovery: the dying server's memory
    is dropped and a fresh one rebuilds itself from checkpoint bytes +
    journal replay (plus an optional torn tail chopped off first).  The
    assembled results must match the fault-free baselines exactly.
    """

    @pytest.mark.parametrize("seed", RECOVERY_SEEDS)
    def test_dsearch_journal_recovery_differential(
        self, seed, dsearch_factory, dsearch_baseline
    ):
        baseline_digest, restart_at = dsearch_baseline
        cluster, pid, report = run_sim(
            dsearch_factory,
            chaos=recovery_plan(seed, restart_at, ack_crash=0.02),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed, f"seed {seed}: run did not finish"
        assert canonical_digest(report.results[pid]) == baseline_digest, (
            f"seed {seed}: recovered run diverged from never-crashed run"
        )
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.records"] > 0
        assert counters["farm.journal.fsyncs"] > 0
        # A restart can land right after a checkpoint and replay zero
        # records; the recovery pass itself must still have run.
        assert counters["farm.recovery.seconds"] > 0
        assert report.log.of_kind("server.recovered")

    @pytest.mark.parametrize("seed", RECOVERY_SEEDS)
    def test_dprml_journal_recovery_differential(
        self, seed, dprml_factory, dprml_baseline
    ):
        baseline_digest, restart_at = dprml_baseline
        cluster, pid, report = run_sim(
            dprml_factory,
            chaos=recovery_plan(seed, restart_at, ack_crash=0.02),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed, f"seed {seed}: run did not finish"
        assert canonical_digest(report.results[pid]) == baseline_digest, (
            f"seed {seed}: recovered run diverged from never-crashed run"
        )
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.records"] > 0
        assert counters["farm.recovery.seconds"] > 0
        assert report.log.of_kind("server.recovered")

    def test_dsearch_torn_tail_recovers_after_loud_truncation(
        self, dsearch_factory, dsearch_baseline
    ):
        baseline_digest, restart_at = dsearch_baseline
        cluster, pid, report = run_sim(
            dsearch_factory,
            chaos=recovery_plan(RECOVERY_SEEDS[0], restart_at, torn=200),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed
        assert canonical_digest(report.results[pid]) == baseline_digest
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] > 0

    def test_dprml_torn_tail_recovers_after_loud_truncation(
        self, dprml_factory, dprml_baseline
    ):
        baseline_digest, restart_at = dprml_baseline
        cluster, pid, report = run_sim(
            dprml_factory,
            chaos=recovery_plan(RECOVERY_SEEDS[0], restart_at, torn=200),
            integrity=IntegrityPolicy(replication=2),
        )
        assert report.completed
        assert canonical_digest(report.results[pid]) == baseline_digest
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] > 0


def run_gateway_sim(build_problem, chaos=None, integrity=None, cancel_at=None):
    """Four identical jobs through the job gateway: alice's second job
    queues behind her ``max_running=1`` cap, bob's two run at once, and
    (with *cancel_at*) bob's second is cancelled mid-flight — so a
    restart inside the run crashes a gateway holding queued, running,
    and cancelled jobs at once."""
    from repro.core.gateway import TenantConfig

    cluster = SimCluster(
        heterogeneous_pool(6, seed=2),
        policy=FixedGranularity(4),
        lease_timeout=60.0,
        seed=5,
        integrity=integrity,
        chaos=chaos,
        max_unit_attempts=10,
        tenants=[
            TenantConfig("alice", weight=1.0, max_running=1, max_pending=8),
            TenantConfig("bob", weight=2.0, max_running=2, max_pending=8),
        ],
    )
    pids = [
        cluster.submit_job("alice", build_problem()),  # job 1: runs
        cluster.submit_job("alice", build_problem()),  # job 2: queued behind it
        cluster.submit_job("bob", build_problem()),  # job 3: runs
        cluster.submit_job("bob", build_problem()),  # job 4: cancelled mid-run
    ]
    if cancel_at is not None:
        cluster.sim.schedule(
            cancel_at,
            lambda: cluster.gateway.cancel_job(4, now=cluster.sim.now),
        )
    report = cluster.run()
    return cluster, pids, report


class TestGatewayRecoveryDrills:
    """Kill the server while the gateway holds queued + running +
    cancelled jobs; journal replay must restore the job queue and the
    per-tenant accounting exactly, and every surviving job's result
    must match the fault-free single-problem baseline bit-for-bit."""

    def _check(self, cluster, pids, report, baseline_digest, seed):
        assert report.completed, f"seed {seed}: run did not finish"
        for pid in pids[:3]:
            assert canonical_digest(report.results[pid]) == baseline_digest, (
                f"seed {seed}: job result diverged from fault-free run"
            )
        # The cancelled job never assembles a result.
        assert pids[3] not in report.results
        gateway = cluster.gateway
        assert gateway.job_status(4)["status"] == "cancelled"
        snap = {t["tenant"]: t for t in gateway.snapshot()["tenants"]}
        assert snap["alice"]["jobs_done"] == 2
        assert snap["bob"]["jobs_done"] == 1
        assert snap["bob"]["jobs_cancelled"] == 1
        # Accounting consistency across the crash: each tenant's
        # delivered-items total is exactly the sum of its problems'
        # folded items (the quantity journal replay rebuilds).
        for tenant, jobs in (("alice", pids[:2]), ("bob", pids[2:])):
            folded = sum(
                cluster.server._problems[pid].items_completed
                for pid in jobs
                if pid in cluster.server._problems
            )
            assert gateway.scheduler.delivered_items(tenant) == folded
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.records"] > 0
        assert counters["farm.recovery.seconds"] > 0
        assert report.log.of_kind("server.recovered")

    @pytest.mark.parametrize("seed", RECOVERY_SEEDS)
    def test_dsearch_gateway_journal_recovery(
        self, seed, dsearch_factory, dsearch_baseline
    ):
        baseline_digest, restart_at = dsearch_baseline
        cluster, pids, report = run_gateway_sim(
            dsearch_factory,
            chaos=recovery_plan(seed, restart_at),
            integrity=IntegrityPolicy(replication=2),
            cancel_at=restart_at * 0.5,
        )
        self._check(cluster, pids, report, baseline_digest, seed)

    def test_dprml_gateway_journal_recovery(self, dprml_factory, dprml_baseline):
        baseline_digest, restart_at = dprml_baseline
        cluster, pids, report = run_gateway_sim(
            dprml_factory,
            chaos=recovery_plan(RECOVERY_SEEDS[0], restart_at),
            integrity=IntegrityPolicy(replication=2),
            cancel_at=restart_at * 0.5,
        )
        self._check(cluster, pids, report, baseline_digest, RECOVERY_SEEDS[0])


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestWireChaos:
    def test_mangle_flips_exactly_one_byte(self):
        chaos = WireChaos(seed=3, corrupt_rate=1.0)
        payload = bytes(range(64))
        damaged = chaos.mangle(payload)
        assert len(damaged) == len(payload)
        assert sum(a != b for a, b in zip(payload, damaged)) == 1
        assert chaos.corrupted == 1

    def test_maybe_delay_uses_injected_sleep(self):
        slept = []
        chaos = WireChaos(
            seed=4, delay_rate=1.0, max_delay=5.0, sleep=slept.append
        )
        chaos.maybe_delay()
        chaos.maybe_delay()
        assert chaos.delayed == 2
        assert all(0.0 <= s <= 5.0 for s in slept) and len(slept) == 2

    @staticmethod
    def _corrupting_seed(obj) -> int:
        """A seed whose one-byte flip makes the frame undecodable
        without touching the length field (which would stall the
        reader instead of failing loudly)."""
        frame = serialize.dumps(obj)
        for seed in range(200):
            mangled = WireChaos(seed=seed, corrupt_rate=1.0).mangle(frame)
            index = next(
                i for i, (a, b) in enumerate(zip(frame, mangled)) if a != b
            )
            if 3 <= index < 7:  # the big-endian length field
                continue
            try:
                serialize.loads(mangled)
            except RMIError:
                return seed
        raise AssertionError("no corrupting seed found")

    def test_server_survives_corrupt_frame(self):
        """A mangled frame kills that connection, not the server."""
        request = {"op": "ping", "payload": list(range(32))}

        def echo(fsock):
            while True:
                fsock.send_obj(("echo", fsock.recv_obj()))

        with TransportServer(echo, meters=MeterRegistry()) as server:
            seed = self._corrupting_seed(request)
            dirty = dial("127.0.0.1", server.port)
            dirty.chaos = WireChaos(seed=seed, corrupt_rate=1.0)
            dirty.send_obj(request)
            assert dirty.chaos.corrupted == 1
            with pytest.raises((ConnectionClosed, OSError)):
                dirty.recv_obj()  # server dropped the poisoned connection
            dirty.close()

            with dial("127.0.0.1", server.port) as clean:
                clean.send_obj(request)
                assert clean.recv_obj() == ("echo", request)


class TestDataChannelChecksum:
    def test_corrupted_push_refused_and_metered(self):
        meters = MeterRegistry()
        with DataChannelServer(meters=meters) as server:
            data = bytes(range(256)) * 64
            chaos = WireChaos(seed=9, corrupt_rate=1.0)
            with pytest.raises(ChecksumError):
                push_data(server.host, server.port, "blob", data, chaos=chaos)
            assert chaos.corrupted > 0
            assert (
                meters.snapshot()["counters"]["data.checksum.failures"] == 1
            )
            assert "blob" not in server.keys()

            # The connection-level failure did not poison the server.
            push_data(server.host, server.port, "blob", data)
            assert fetch_data(server.host, server.port, "blob") == data

    def test_clean_roundtrip_unchanged(self):
        with DataChannelServer() as server:
            payload = b"x" * (1 << 18) + b"tail"
            push_data(server.host, server.port, "k", payload)
            assert fetch_data(server.host, server.port, "k") == payload

    def test_corrupted_get_detected_by_receiver(self):
        """Byzantine blob corruption on the serving side: the server's
        chaos hook damages outgoing streams after digest computation,
        and the fetching donor must catch it — this is the failure the
        donor cache answers with exactly one refetch."""
        with DataChannelServer() as server:
            data = bytes(range(256)) * 32
            server.store("blob", data)
            server.chaos = WireChaos(seed=13, corrupt_rate=1.0)
            with pytest.raises(ChecksumError):
                fetch_data(server.host, server.port, "blob")
            assert server.chaos.corrupted > 0
            # The stored blob itself is unharmed: once the wire clears,
            # the same key serves the original bytes.
            server.chaos = None
            assert fetch_data(server.host, server.port, "blob") == data

    def test_cache_refetches_through_transient_get_corruption(self):
        """End to end: a BlobCache fetching over a data channel whose
        first transfer is damaged recovers with one refetch."""
        from repro.core.blobs import BlobCache, BlobRef, blob_key, canonical_dumps

        value = ("database", bytes(range(128)) * 16)
        data = canonical_dumps(value)
        ref = BlobRef(key=blob_key(data), size=len(data))
        with DataChannelServer() as server:
            server.store(ref.key, data)
            server.chaos = WireChaos(seed=21, corrupt_rate=1.0)
            cache = BlobCache(1 << 20, sink=lambda n, a: None)

            def flaky_fetch(r):
                try:
                    return fetch_data(server.host, server.port, r.key)
                finally:
                    server.chaos = None  # wire clears after the first try

            assert cache.ensure(ref, flaky_fetch) == value
            assert cache.refetches == 1
            assert cache.contains(ref.key)


class TestReconnectJitter:
    def _failing_port(self, **kwargs) -> ReconnectingPort:
        return ReconnectingPort("127.0.0.1", _free_port(), **kwargs)

    def test_full_jitter_delays_vary_and_respect_caps(self):
        slept: list[float] = []
        port = self._failing_port(
            max_attempts=6,
            base_backoff=0.5,
            max_backoff=4.0,
            sleep=slept.append,
            rng=spawn_rng(42, "jitter"),
        )
        with pytest.raises(RMIError, match="gave up"):
            port.heartbeat("d0")
        assert len(slept) == 5  # one sleep between each pair of attempts
        caps = [min(4.0, 0.5 * 2.0**attempt) for attempt in range(5)]
        assert all(0.0 <= delay <= cap for delay, cap in zip(slept, caps))
        # Full jitter: the delays are spread, not a deterministic ladder.
        assert len({round(d, 6) for d in slept}) > 1
        assert any(delay < cap * 0.95 for delay, cap in zip(slept, caps))

    def test_jitter_is_seed_deterministic(self):
        def delays(seed):
            slept: list[float] = []
            port = self._failing_port(
                max_attempts=4,
                base_backoff=0.25,
                max_backoff=2.0,
                sleep=slept.append,
                rng=spawn_rng(seed, "jitter"),
            )
            with pytest.raises(RMIError):
                port.request_work("d0")
            return slept

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)
