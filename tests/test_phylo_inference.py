"""Tests for distances, NJ, simulation and the stepwise-insertion search
— the inference pipeline end to end."""

import numpy as np
import pytest

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.distances import (
    MAX_JC_DISTANCE,
    jc_distance,
    jc_distance_matrix,
    neighbor_joining,
    nj_addition_order,
)
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import JC69, HKY85
from repro.bio.phylo.simulate import (
    alignment_to_sequences,
    random_yule_tree,
    simulate_alignment,
)
from repro.bio.phylo.stepwise import (
    StepwiseSearch,
    apply_placement,
    evaluate_placement,
)
from repro.bio.phylo.tree import Tree, parse_newick, rf_distance
from repro.bio.seq.sequence import dna

FREQS = np.array([0.3, 0.2, 0.2, 0.3])


class TestJCDistance:
    def test_identical_is_zero(self):
        aln = SiteAlignment.from_sequences([dna("a", "ACGTAC"), dna("b", "ACGTAC")])
        assert jc_distance(aln.patterns[0], aln.patterns[1], aln.weights) == 0.0

    def test_increases_with_divergence(self):
        aln = SiteAlignment.from_sequences(
            [dna("a", "AAAAAAAAAA"), dna("b", "AAAAAAAATT"), dna("c", "AAAATTTTTT")]
        )
        d_ab = jc_distance(aln.patterns[0], aln.patterns[1], aln.weights)
        d_ac = jc_distance(aln.patterns[0], aln.patterns[2], aln.weights)
        assert 0 < d_ab < d_ac

    def test_saturation_capped(self):
        aln = SiteAlignment.from_sequences([dna("a", "AAAA"), dna("b", "TTTT")])
        assert (
            jc_distance(aln.patterns[0], aln.patterns[1], aln.weights)
            == MAX_JC_DISTANCE
        )

    def test_unknowns_ignored(self):
        aln = SiteAlignment.from_sequences([dna("a", "ACGTNN"), dna("b", "ACGANN")])
        d = jc_distance(aln.patterns[0], aln.patterns[1], aln.weights)
        aln2 = SiteAlignment.from_sequences([dna("a", "ACGT"), dna("b", "ACGA")])
        d2 = jc_distance(aln2.patterns[0], aln2.patterns[1], aln2.weights)
        assert d == pytest.approx(d2)

    def test_matrix_symmetric_zero_diagonal(self):
        tree = random_yule_tree(6, seed=1)
        aln = simulate_alignment(tree, JC69(), 200, seed=2)
        D = jc_distance_matrix(aln)
        assert np.allclose(D, D.T)
        assert np.allclose(np.diag(D), 0.0)
        assert (D[~np.eye(6, dtype=bool)] > 0).all()


class TestNeighborJoining:
    def test_additive_distances_recover_topology(self):
        # Distances measured on a known tree are additive; NJ must
        # reconstruct that tree exactly.
        true = parse_newick(
            "((a:0.1,b:0.2):0.15,(c:0.12,d:0.08):0.1,e:0.3);"
        )
        names = true.leaf_names()
        # path-length matrix
        n = len(names)
        D = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                D[i, j] = D[j, i] = _path_length(true, names[i], names[j])
        nj = neighbor_joining(names, D)
        assert rf_distance(true, nj) == 0
        # branch lengths recovered too (additive case is exact)
        for leaf in nj.leaves():
            assert leaf.branch_length == pytest.approx(
                true.find(leaf.name).branch_length, abs=1e-9
            )

    def test_two_and_three_taxa(self):
        t2 = neighbor_joining(["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert sorted(t2.leaf_names()) == ["a", "b"]
        D3 = np.array([[0, 0.4, 0.6], [0.4, 0, 0.8], [0.6, 0.8, 0]])
        t3 = neighbor_joining(["a", "b", "c"], D3)
        assert len(t3.root.children) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="match"):
            neighbor_joining(["a", "b"], np.zeros((3, 3)))
        with pytest.raises(ValueError, match="symmetric"):
            neighbor_joining(["a", "b"], np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(ValueError, match="at least two"):
            neighbor_joining(["a"], np.zeros((1, 1)))

    def test_recovers_simulated_topology(self):
        true = random_yule_tree(8, seed=13, mean_branch=0.15)
        aln = simulate_alignment(true, JC69(), 2000, seed=14)
        nj = neighbor_joining(aln.names, jc_distance_matrix(aln))
        assert rf_distance(true, nj) <= 2  # near-perfect on long clean data


def _path_length(tree: Tree, a: str, b: str) -> float:
    ancestors = {}
    node = tree.find(a)
    total = 0.0
    while node is not None:
        ancestors[id(node)] = total
        total += node.branch_length
        node = node.parent
    node = tree.find(b)
    total = 0.0
    while id(node) not in ancestors:
        total += node.branch_length
        node = node.parent
    return total + ancestors[id(node)]


class TestSimulate:
    def test_shape_and_determinism(self):
        tree = random_yule_tree(5, seed=3)
        a = simulate_alignment(tree, JC69(), 100, seed=9)
        b = simulate_alignment(tree, JC69(), 100, seed=9)
        assert a.n_taxa == 5
        assert a.weights.sum() == 100
        assert np.array_equal(a.patterns, b.patterns)

    def test_zero_branch_child_copies_parent(self):
        tree = parse_newick("(a:0.0000001,b:0.0000001,c:0.0000001);")
        aln = simulate_alignment(tree, JC69(), 200, seed=5)
        assert np.array_equal(aln.patterns[0], aln.patterns[1])

    def test_long_branches_decorrelate(self):
        tree = parse_newick("(a:8,b:8,c:8);")
        aln = simulate_alignment(tree, JC69(), 2000, seed=6)
        agree = float(
            (aln.patterns[0] == aln.patterns[1]).astype(float) @ aln.weights
        ) / aln.weights.sum()
        assert agree == pytest.approx(0.25, abs=0.05)

    def test_frequencies_respected(self):
        tree = random_yule_tree(4, seed=1)
        model = HKY85(2.0, FREQS)
        aln = simulate_alignment(tree, model, 5000, seed=2)
        expanded = np.repeat(aln.patterns, aln.weights.astype(int), axis=1)
        counts = np.bincount(expanded.ravel(), minlength=4)[:4]
        observed = counts / counts.sum()
        assert np.allclose(observed, FREQS, atol=0.03)

    def test_alignment_to_sequences_roundtrip(self):
        tree = random_yule_tree(4, seed=1)
        aln = simulate_alignment(tree, JC69(), 60, seed=2)
        seqs = alignment_to_sequences(aln)
        again = SiteAlignment.from_sequences(seqs)
        assert sorted(again.names) == sorted(aln.names)
        assert again.weights.sum() == aln.weights.sum()

    def test_validation(self):
        tree = random_yule_tree(4, seed=1)
        with pytest.raises(ValueError):
            simulate_alignment(tree, JC69(), 0)


class TestAdditionOrder:
    def test_is_permutation(self):
        tree = random_yule_tree(7, seed=2)
        aln = simulate_alignment(tree, JC69(), 150, seed=3)
        order = nj_addition_order(aln)
        assert sorted(order) == sorted(aln.names)

    def test_first_pair_is_most_distant(self):
        tree = random_yule_tree(6, seed=5)
        aln = simulate_alignment(tree, JC69(), 400, seed=6)
        D = jc_distance_matrix(aln)
        order = nj_addition_order(aln)
        i, j = aln.names.index(order[0]), aln.names.index(order[1])
        assert D[i, j] == pytest.approx(D.max())


class TestPlacementTasks:
    def setup_method(self):
        self.true = random_yule_tree(6, seed=31, mean_branch=0.12)
        self.model = JC69()
        self.aln = simulate_alignment(self.true, self.model, 300, seed=32)

    def test_evaluate_placement_is_pure(self):
        tree = Tree.star(self.aln.names[:3])
        newick = tree.newick()
        s1 = evaluate_placement(newick, self.aln.names[3], 0, self.aln, self.model)
        s2 = evaluate_placement(newick, self.aln.names[3], 0, self.aln, self.model)
        assert s1.log_likelihood == s2.log_likelihood
        assert tree.newick() == newick  # input tree untouched

    def test_edge_index_out_of_range(self):
        tree = Tree.star(self.aln.names[:3])
        with pytest.raises(IndexError):
            evaluate_placement(tree.newick(), self.aln.names[3], 99, self.aln, self.model)

    def test_apply_placement_matches_evaluation(self):
        tree = Tree.star(self.aln.names[:3])
        taxon = self.aln.names[3]
        score = evaluate_placement(tree.newick(), taxon, 1, self.aln, self.model)
        apply_placement(tree, taxon, score)
        sub = self.aln.subset(tree.leaf_names())
        ll = TreeLikelihood(tree, sub, self.model).log_likelihood()
        assert ll == pytest.approx(score.log_likelihood, rel=1e-9)

    def test_cost_recorded(self):
        tree = Tree.star(self.aln.names[:3])
        score = evaluate_placement(
            tree.newick(), self.aln.names[3], 0, self.aln, self.model
        )
        assert score.cost > 0


class TestStepwiseSearch:
    def test_candidate_counts_follow_2i_minus_5(self):
        true = random_yule_tree(7, seed=41, mean_branch=0.1)
        aln = simulate_alignment(true, JC69(), 200, seed=42)
        result = StepwiseSearch(aln, JC69()).run()
        assert [s.n_candidates for s in result.stages] == [3, 5, 7, 9]
        assert result.total_evaluations == 24

    def test_recovers_easy_topology(self):
        true = random_yule_tree(7, seed=51, mean_branch=0.15)
        aln = simulate_alignment(true, JC69(), 1500, seed=52)
        result = StepwiseSearch(aln, JC69()).run()
        assert sorted(result.tree.leaf_names()) == sorted(aln.names)
        assert rf_distance(true, result.tree) <= 2

    def test_loglik_beats_random_tree(self):
        true = random_yule_tree(6, seed=61, mean_branch=0.12)
        aln = simulate_alignment(true, JC69(), 400, seed=62)
        result = StepwiseSearch(aln, JC69()).run()
        random_tree = random_yule_tree(6, seed=99)
        for node, name in zip(random_tree.leaves(), aln.names):
            node.name = name
        from repro.bio.phylo.optimize import optimize_all_branches

        tl = TreeLikelihood(random_tree, aln, JC69())
        random_ll = optimize_all_branches(tl, passes=2)
        assert result.log_likelihood >= random_ll - 1e-6

    def test_respects_addition_order(self):
        true = random_yule_tree(5, seed=71)
        aln = simulate_alignment(true, JC69(), 150, seed=72)
        order = list(reversed(aln.names))
        result = StepwiseSearch(aln, JC69(), addition_order=order).run()
        assert result.addition_order == order
        assert [s.taxon for s in result.stages] == order[3:]

    def test_bad_order_rejected(self):
        true = random_yule_tree(5, seed=71)
        aln = simulate_alignment(true, JC69(), 100, seed=72)
        with pytest.raises(ValueError, match="permutation"):
            StepwiseSearch(aln, JC69(), addition_order=aln.names[:-1])

    def test_too_few_taxa_rejected(self):
        aln = SiteAlignment.from_sequences([dna("a", "ACGT"), dna("b", "ACGT")])
        with pytest.raises(ValueError, match="three"):
            StepwiseSearch(aln, JC69())
