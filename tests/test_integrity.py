"""The result-integrity layer: replication, quorum voting, spot
checks, donor reputation / quarantine, and their persistence."""

import pickle

import pytest

from repro.cli.status import render_snapshot
from repro.core.checkpoint import (
    MAGIC,
    CheckpointBlob,
    CheckpointError,
    dumps_checkpoint,
    loads_checkpoint,
)
from repro.core.integrity import (
    IntegrityPolicy,
    ReputationState,
    canonical_digest,
)
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.status import snapshot_dict
from repro.core.workunit import WorkResult
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


def make_server(**kwargs) -> TaskFarmServer:
    kwargs.setdefault("policy", FixedGranularity(10))
    kwargs.setdefault("lease_timeout", 1e6)
    return TaskFarmServer(**kwargs)


def sum_problem(n=100) -> Problem:
    return Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm())


def drive(server, donors, liars=(), t0=1.0, max_steps=10_000) -> float:
    """Round-robin donor loop; donors in *liars* return poison values.

    Each liar's poison is donor-specific and consistent per unit, the
    adversarial worst case for quorum voting.
    """
    t = t0
    for donor_id in donors:
        server.register_donor(donor_id, 0.0)
    for steps in range(max_steps):
        if server.all_complete():
            return t
        for donor_id in donors:
            assignment = server.request_work(donor_id, t)
            if assignment is None:
                continue
            lo, hi = assignment.payload
            value = sum(range(lo, hi))
            if donor_id in liars:
                value = ("lie", donor_id, assignment.unit_id)
            server.submit_result(
                WorkResult(
                    problem_id=assignment.problem_id,
                    unit_id=assignment.unit_id,
                    value=value,
                    donor_id=donor_id,
                    compute_seconds=1.0,
                    items=assignment.items,
                ),
                t + 0.5,
            )
            t += 1.0
    raise AssertionError("farm did not converge")


def counters(server) -> dict:
    return server.obs.meters.snapshot()["counters"]


class TestPolicy:
    def test_default_policy_is_inactive(self):
        assert not IntegrityPolicy().active

    def test_replication_activates(self):
        assert IntegrityPolicy(replication=2).active

    def test_spot_check_activates(self):
        assert IntegrityPolicy(spot_check_rate=0.01).active

    def test_escalation_alone_does_not_activate(self):
        # Escalation scales an active spot-check policy; it must not
        # switch the layer on for default servers (whose behaviour has
        # to stay byte-identical to the pre-integrity farm).
        assert not IntegrityPolicy(suspect_escalation=5.0).active

    def test_validation(self):
        with pytest.raises(ValueError, match="replication"):
            IntegrityPolicy(replication=0)
        with pytest.raises(ValueError, match="quorum"):
            IntegrityPolicy(quorum=1)
        with pytest.raises(ValueError, match="spot_check_rate"):
            IntegrityPolicy(spot_check_rate=1.5)
        with pytest.raises(ValueError, match="quarantine_after"):
            IntegrityPolicy(quarantine_after=0.0)
        with pytest.raises(ValueError, match="quarantine_after"):
            IntegrityPolicy(quarantine_after=5.0, blacklist_after=4.0)
        with pytest.raises(ValueError, match="max_votes"):
            IntegrityPolicy(replication=3, max_votes=2)

    def test_required_votes_replication(self):
        policy = IntegrityPolicy(replication=3)
        assert policy.required_votes(0, 0) == 3

    def test_spot_check_rate_one_always_audits(self):
        policy = IntegrityPolicy(spot_check_rate=1.0)
        assert all(policy.required_votes(0, uid) == 2 for uid in range(20))

    def test_spot_coin_deterministic(self):
        a = IntegrityPolicy(spot_check_rate=0.5, seed=7)
        b = IntegrityPolicy(spot_check_rate=0.5, seed=7)
        assert [a.spot_coin(1, u) for u in range(50)] == [
            b.spot_coin(1, u) for u in range(50)
        ]

    def test_canonical_digest_distinguishes(self):
        assert canonical_digest([1, 2, 3]) == canonical_digest([1, 2, 3])
        assert canonical_digest([1, 2, 3]) != canonical_digest([1, 2, 4])


class TestReplication:
    def test_clean_run_completes_with_exact_redundancy(self):
        """Reconciliation: with replication=2 every unit is issued to
        exactly one extra donor, so redundant work == 1x the problem."""
        server = make_server(integrity=IntegrityPolicy(replication=2))
        pid = server.submit(sum_problem(50), 0.0)
        drive(server, ["d0", "d1"])
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert server.final_result(pid) == sum(range(50))
        c = counters(server)
        # 50 items in units of 10 => 5 accepted units, each computed twice.
        assert c["farm.items.completed"] == 50
        assert c["farm.integrity.redundant_items"] == 50
        assert c["farm.integrity.redundant_units"] == 5
        assert c["farm.units.issued"] == 10
        assert c["farm.integrity.agreements"] == 10  # both votes, 5 units
        assert c.get("farm.integrity.disagreements", 0) == 0

    def test_spot_check_everything(self):
        server = make_server(
            integrity=IntegrityPolicy(spot_check_rate=1.0)
        )
        pid = server.submit(sum_problem(30), 0.0)
        drive(server, ["d0", "d1"])
        assert server.final_result(pid) == sum(range(30))
        c = counters(server)
        assert c["farm.integrity.spot_checks"] == 3
        assert c["farm.integrity.redundant_units"] == 3
        assert c["farm.integrity.redundant_items"] == 30

    def test_inactive_policy_records_nothing(self):
        server = make_server()  # default policy
        pid = server.submit(sum_problem(30), 0.0)
        drive(server, ["d0", "d1"])
        assert server.final_result(pid) == sum(range(30))
        c = counters(server)
        assert c.get("farm.integrity.redundant_units", 0) == 0
        assert len(server.reputation) == 0
        assert "integrity" not in snapshot_dict(server, 100.0)


class TestByzantineDonor:
    def make_byzantine_run(self):
        server = make_server(
            policy=FixedGranularity(5),
            integrity=IntegrityPolicy(replication=2, quarantine_after=3.0),
        )
        pid = server.submit(sum_problem(60), 0.0)
        drive(server, ["liar", "d0", "d1"], liars={"liar"})
        return server, pid

    def test_detected_quarantined_and_result_still_correct(self):
        server, pid = self.make_byzantine_run()
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert server.final_result(pid) == sum(range(60))
        rep = server.reputation.get("liar")
        assert rep is not None and rep.distrusted
        assert rep.disagreements >= 3
        assert server.reputation.quarantined_ids() == ["liar"]
        c = counters(server)
        assert c["farm.integrity.disagreements"] > 0
        assert c["farm.integrity.quarantines"] >= 1
        # Honest donors never lose trust.
        for honest in ("d0", "d1"):
            rep = server.reputation.get(honest)
            assert rep is None or not rep.distrusted

    def test_status_snapshot_surfaces_quarantine(self):
        server, _pid = self.make_byzantine_run()
        snap = snapshot_dict(server, 500.0)
        integrity = snap["integrity"]
        assert integrity["quarantined"] == ["liar"]
        assert integrity["reputations"]["liar"]["disagreements"] >= 3
        rendered = render_snapshot(snap)
        assert "farm.integrity.disagreements" in rendered
        assert "quarantined: liar" in rendered

    def test_quarantined_donor_gets_no_work_and_results_refused(self):
        server = make_server(integrity=IntegrityPolicy(replication=2))
        pid = server.submit(sum_problem(40), 0.0)
        for donor_id in ("liar", "d0"):
            server.register_donor(donor_id, 0.0)
        rep = server.reputation.record("liar")
        rep.disagreements = 3
        assert (
            server.reputation.update_state("liar", server.integrity)
            is ReputationState.QUARANTINED
        )
        assert server.request_work("liar", 1.0) is None
        assignment = server.request_work("d0", 1.0)
        assert assignment is not None
        forged = WorkResult(
            problem_id=pid,
            unit_id=assignment.unit_id,
            value=-1,
            donor_id="liar",
            compute_seconds=0.1,
            items=assignment.items,
        )
        assert server.submit_result(forged, 2.0) is False
        assert counters(server)["farm.integrity.untrusted"] == 1
        assert server.log.of_kind("unit.untrusted")


class TestReputationPersistence:
    def test_quarantine_survives_checkpoint(self):
        server = make_server(
            policy=FixedGranularity(5),
            integrity=IntegrityPolicy(replication=2, quarantine_after=3.0),
        )
        pid = server.submit(sum_problem(60), 0.0)
        drive(server, ["liar", "d0", "d1"], liars={"liar"})
        assert server.reputation.quarantined_ids() == ["liar"]

        blob = dumps_checkpoint(server, 500.0)
        fresh = make_server(integrity=server.integrity)
        assert loads_checkpoint(blob, fresh, 501.0) == [pid]
        rep = fresh.reputation.get("liar")
        assert rep is not None and rep.state is ReputationState.QUARANTINED
        assert fresh.reputation.distrusted("liar")
        fresh.register_donor("liar", 502.0)
        assert fresh.request_work("liar", 503.0) is None

    def test_version_mismatch_fails_loudly(self):
        stale = CheckpointBlob(version=1, saved_at=0.0, snapshots=[])
        raw = MAGIC + pickle.dumps(stale)
        with pytest.raises(CheckpointError, match="version 1, expected 4"):
            loads_checkpoint(raw, make_server(), 0.0)

    def test_foreign_bytes_fail_loudly(self):
        with pytest.raises(CheckpointError, match="not a task-farm"):
            loads_checkpoint(b"garbage", make_server(), 0.0)
