"""Tests for the bootstrap substrate and the DBOOT application."""

import numpy as np
import pytest

from repro.apps.dboot import (
    BootstrapAlgorithm,
    BootstrapDataManager,
    build_problem,
    run_dboot,
)
from repro.bio.phylo.bootstrap import (
    SupportedSplit,
    bootstrap_alignment,
    nj_replicate_tree,
    run_bootstrap,
    split_support,
)
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.tree import parse_newick
from repro.core.client import run_to_completion
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer


@pytest.fixture(scope="module")
def clean_data():
    """Strong signal: every true split should get high support."""
    true = parse_newick(
        "((a:0.05,b:0.05):0.3,((c:0.05,d:0.05):0.3,(e:0.05,f:0.05):0.3):0.1);"
    )
    aln = simulate_alignment(true, JC69(), 2000, seed=31)
    return true, aln


class TestBootstrapAlignment:
    def test_preserves_shape(self, clean_data):
        _true, aln = clean_data
        rng = np.random.default_rng(0)
        rep = bootstrap_alignment(aln, rng)
        assert rep.n_taxa == aln.n_taxa
        assert rep.weights.sum() == aln.weights.sum()
        assert rep.names == aln.names

    def test_replicates_differ(self, clean_data):
        _true, aln = clean_data
        rng = np.random.default_rng(0)
        a = bootstrap_alignment(aln, rng)
        b = bootstrap_alignment(aln, rng)
        assert not (
            a.patterns.shape == b.patterns.shape
            and np.array_equal(a.weights, b.weights)
        )

    def test_deterministic_under_seed(self, clean_data):
        _true, aln = clean_data
        a = bootstrap_alignment(aln, np.random.default_rng(7))
        b = bootstrap_alignment(aln, np.random.default_rng(7))
        assert np.array_equal(a.patterns, b.patterns)
        assert np.array_equal(a.weights, b.weights)


class TestSplitSupport:
    def test_identical_replicates_give_full_support(self, clean_data):
        true, aln = clean_data
        ref = nj_replicate_tree(aln)
        supports = split_support(ref, [ref.splits()] * 10)
        assert all(s.support == 1.0 for s in supports)

    def test_validation(self, clean_data):
        true, _aln = clean_data
        with pytest.raises(ValueError):
            split_support(true, [])
        with pytest.raises(ValueError):
            SupportedSplit(frozenset({"a"}), 1.5)

    def test_sequential_bootstrap_high_support_on_clean_data(self, clean_data):
        _true, aln = clean_data
        _ref, supports = run_bootstrap(aln, replicates=30, seed=3)
        assert supports, "reference tree should have internal splits"
        assert all(s.support >= 0.8 for s in supports)

    def test_run_bootstrap_validation(self, clean_data):
        _true, aln = clean_data
        with pytest.raises(ValueError):
            run_bootstrap(aln, replicates=0)


class TestDBootApp:
    def test_datamanager_counts(self, clean_data):
        _true, aln = clean_data
        dm = BootstrapDataManager(aln, replicates=25)
        issued = 0
        while (unit := dm.next_unit(7)) is not None:
            issued += unit.items
        assert issued == 25

    def test_validation(self, clean_data):
        _true, aln = clean_data
        with pytest.raises(ValueError):
            BootstrapDataManager(aln, replicates=0)
        small = aln.subset(aln.names[:3])
        with pytest.raises(ValueError):
            BootstrapDataManager(small, replicates=10)

    def test_distributed_matches_sequential(self, clean_data):
        """Same seed => identical replicate trees => identical supports,
        regardless of unit size or donor interleaving."""
        _true, aln = clean_data
        ref, sequential = run_bootstrap(aln, replicates=20, seed=5)

        server = TaskFarmServer(policy=FixedGranularity(3), lease_timeout=1e9)
        reference = nj_replicate_tree(aln)
        pid = server.submit(
            build_problem(aln, replicates=20, seed=5, reference=reference), 0.0
        )
        run_to_completion(server, donors=4)
        report = server.final_result(pid)
        assert report.replicates == 20
        # Note: sequential uses one RNG stream; distributed derives one
        # stream per replicate id.  Supports agree statistically, and
        # structure (split set) exactly.
        assert {s.split for s in report.supports} == {s.split for s in sequential}

    def test_thread_cluster_run(self, clean_data):
        _true, aln = clean_data
        report = run_dboot(aln, replicates=16, seed=2, workers=3)
        assert report.replicates == 16
        assert parse_newick(report.reference_newick).n_leaves == 6
        assert all(s.support >= 0.5 for s in report.supports)
        strong = report.strongly_supported(0.7)
        assert set(s.split for s in strong) <= set(s.split for s in report.supports)

    def test_algorithm_cost_scales(self, clean_data):
        _true, aln = clean_data
        algo = BootstrapAlgorithm(aln, base_seed=0)
        assert algo.cost((0, 1, 2)) == pytest.approx(3 * algo.cost((0,)))

    def test_support_for_lookup(self, clean_data):
        _true, aln = clean_data
        report = run_dboot(aln, replicates=8, seed=2, workers=2)
        first = report.supports[0]
        assert report.support_for(first.split) == first.support
        with pytest.raises(KeyError):
            report.support_for(frozenset({"zz", "yy"}))
