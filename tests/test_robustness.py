"""Robustness tests: garbage on the wire, both-strand search, and
stepwise options not covered elsewhere."""

import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dsearch import DSearchAlgorithm, DSearchConfig
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence
from repro.rmi import RMIServer, connect
from repro.rmi.transport import dial


class Echo:
    def ping(self, x):
        return x


class TestWireGarbage:
    """A server facing the open lab network must shrug off junk."""

    @pytest.fixture()
    def server(self):
        srv = RMIServer()
        srv.bind("echo", Echo())
        yield srv
        srv.close()

    def test_garbage_bytes_dont_kill_server(self, server):
        with socket.create_connection((server.host, server.port)) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")  # a confused web browser
        # The server must still serve real clients afterwards.
        with connect(server.host, server.port, "echo") as proxy:
            assert proxy.ping(42) == 42

    def test_half_frame_then_disconnect(self, server):
        from repro.rmi import serialize

        frame = serialize.dumps({"partial": True})
        with socket.create_connection((server.host, server.port)) as sock:
            sock.sendall(frame[: len(frame) // 2])
        with connect(server.host, server.port, "echo") as proxy:
            assert proxy.ping("still alive") == "still alive"

    @settings(max_examples=20, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=64))
    def test_random_junk_property(self, junk):
        srv = RMIServer()
        srv.bind("echo", Echo())
        try:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(junk)
            with connect(srv.host, srv.port, "echo") as proxy:
                assert proxy.ping(1) == 1
        finally:
            srv.close()

    def test_non_callrequest_object(self, server):
        with dial(server.host, server.port) as fsock:
            fsock.send_obj({"not": "a CallRequest"})
            response = fsock.recv_obj()
            assert not response.ok
            assert "expected CallRequest" in response.exc_message


class TestBothStrands:
    def test_reverse_strand_feature_found(self):
        rng = np.random.default_rng(41)
        query = random_sequence("q", 60, DNA, rng)
        # Plant the query's reverse complement inside a subject.
        flank1 = random_sequence("f1", 40, DNA, rng)
        flank2 = random_sequence("f2", 40, DNA, rng)
        from repro.bio.seq.sequence import Sequence

        planted = Sequence(
            "subject",
            np.concatenate(
                [flank1.codes, query.reverse_complement().codes, flank2.codes]
            ),
            DNA,
        )
        decoy = random_sequence("decoy", 140, DNA, rng)

        single = DSearchAlgorithm(DSearchConfig(top_hits=2))
        both = DSearchAlgorithm(DSearchConfig(top_hits=2, both_strands=True))
        payload = ([query], [planted, decoy])

        single_hits = {h.subject_id: h.score for h in single.compute(payload)["q"]}
        both_hits = {h.subject_id: h.score for h in both.compute(payload)["q"]}
        # Forward-only search scores the planted subject like noise;
        # both-strand search lights it up.
        assert both_hits["subject"] >= 5.0 * len(query) * 0.9  # near-perfect match
        assert both_hits["subject"] > single_hits["subject"] * 2

    def test_cost_doubles(self):
        rng = np.random.default_rng(42)
        query = random_sequence("q", 50, DNA, rng)
        subject = random_sequence("s", 80, DNA, rng)
        single = DSearchAlgorithm(DSearchConfig())
        both = DSearchAlgorithm(DSearchConfig(both_strands=True))
        assert both.cost(([query], [subject])) == pytest.approx(
            2 * single.cost(([query], [subject]))
        )

    def test_protein_both_strands_rejected(self):
        with pytest.raises(ValueError, match="both_strands"):
            DSearchConfig(scoring="blosum62", both_strands=True)

    def test_config_file_key(self):
        from repro.util.config import ConfigFile

        cfg = DSearchConfig.from_config(
            ConfigFile.from_text("both_strands = yes\n")
        )
        assert cfg.both_strands is True


class TestStepwiseGlobalOpt:
    def test_periodic_global_optimisation_runs(self):
        from repro.bio.phylo.models import JC69
        from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
        from repro.bio.phylo.stepwise import StepwiseSearch

        true = random_yule_tree(6, seed=301, mean_branch=0.15)
        aln = simulate_alignment(true, JC69(), 300, seed=302)
        plain = StepwiseSearch(aln, JC69()).run()
        periodic = StepwiseSearch(aln, JC69(), global_opt_every=1).run()
        # Same data, same order: periodic optimisation can only match or
        # improve the final likelihood (both end with a full polish).
        assert periodic.log_likelihood >= plain.log_likelihood - 0.5
        assert sorted(periodic.tree.leaf_names()) == sorted(aln.names)
