"""Tests for alignment score statistics (Gumbel calibration, E-values)."""

import math

import numpy as np
import pytest

from repro.bio.align.scoring import dna_scheme
from repro.bio.align.stats import (
    ScoreStatistics,
    calibrate,
    database_search_space,
    shuffled,
)
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq import DNA
from repro.bio.seq.generate import mutate_sequence, random_database, random_sequence

SCHEME = dna_scheme()


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(17)
    query = random_sequence("q", 150, DNA, rng)
    database = random_database(30, DNA, seed=18, mean_length=200)
    stats = calibrate(query, database[:10], SCHEME, samples=40, seed=19)
    return query, database, stats


class TestShuffle:
    def test_preserves_composition(self):
        rng = np.random.default_rng(0)
        seq = random_sequence("s", 300, DNA, rng)
        null = shuffled(seq, rng, 0)
        assert sorted(seq.codes.tolist()) == sorted(null.codes.tolist())
        assert str(null) != str(seq)  # overwhelmingly likely at length 300


class TestScoreStatistics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ScoreStatistics(lam=0, k=0.1, calibration_length=100)
        with pytest.raises(ValueError):
            ScoreStatistics(lam=0.2, k=-1, calibration_length=100)

    def test_evalue_decreases_with_score(self, setup):
        _query, database, stats = setup
        space = 1e6
        e_low = stats.evalue(50, space)
        e_high = stats.evalue(150, space)
        assert e_high < e_low

    def test_evalue_scales_with_search_space(self, setup):
        _query, _db, stats = setup
        assert stats.evalue(100, 2e6) == pytest.approx(2 * stats.evalue(100, 1e6))

    def test_pvalue_bounded(self, setup):
        _query, _db, stats = setup
        for score in (10, 60, 120, 400):
            p = stats.pvalue(score, 1e6)
            assert 0.0 <= p <= 1.0

    def test_bit_score_monotone(self, setup):
        _query, _db, stats = setup
        assert stats.bit_score(120) > stats.bit_score(60)

    def test_search_space_validation(self, setup):
        _query, _db, stats = setup
        with pytest.raises(ValueError):
            stats.evalue(100, 0)


class TestCalibration:
    def test_requires_enough_samples(self, setup):
        query, database, _stats = setup
        with pytest.raises(ValueError):
            calibrate(query, database, SCHEME, samples=5)
        with pytest.raises(ValueError):
            calibrate(query, [], SCHEME)

    def test_null_scores_are_insignificant(self, setup):
        """Chance alignments should get E >= ~0.1 under the null fit."""
        query, database, stats = setup
        rng = np.random.default_rng(55)
        space = database_search_space(query, database)
        null = shuffled(database[20], rng, 99)
        score = smith_waterman_score(query, null, SCHEME)
        assert stats.evalue(score, space) > 1e-2

    def test_true_homolog_is_significant(self, setup):
        """A planted homolog should be far beyond chance."""
        query, database, stats = setup
        rng = np.random.default_rng(56)
        homolog = mutate_sequence(query, rng, substitution_rate=0.1)
        score = smith_waterman_score(query, homolog, SCHEME)
        space = database_search_space(query, database)
        assert stats.evalue(score, space) < 1e-6

    def test_deterministic(self, setup):
        query, database, _ = setup
        a = calibrate(query, database[:5], SCHEME, samples=20, seed=3)
        b = calibrate(query, database[:5], SCHEME, samples=20, seed=3)
        assert a.lam == b.lam and a.k == b.k

    def test_search_space_helper(self, setup):
        query, database, _ = setup
        expected = len(query) * sum(len(s) for s in database)
        assert database_search_space(query, database) == expected
