"""Differential tests: the live drivers and the simulator must schedule
identically.

The simulator's claim to validity is that it drives the *same*
:class:`~repro.core.server.TaskFarmServer` as the live cluster.  These
tests push one seeded workload through both drivers and require the
unit-assignment sequences, the time-free event-log metrics and the
final results to match exactly.
"""

from __future__ import annotations

import pickle

from repro.cluster.local import ThreadCluster
from repro.cluster.sim import SimCluster
from repro.cluster.sim.machines import MachineSpec
from repro.core.metrics import run_metrics
from repro.core.problem import Problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity
from repro.core.server import TaskFarmServer
from repro.core.workunit import WorkResult
from repro.util.events import EventLog
from tests.helpers import ManualClock, RangeSumAlgorithm, RangeSumDataManager

N = 150


def _issue_sequence(log: EventLog) -> list[tuple[int, int, int]]:
    """The scheduling decisions, donor-anonymous: (problem, unit, items).

    Problem ids are normalized to order of first appearance — they are
    allocated from a process-global counter, so their absolute values
    differ between the two runs.
    """
    norm: dict[int, int] = {}
    seq = []
    for e in log.of_kind("unit.issued"):
        pid = norm.setdefault(e.data["problem_id"], len(norm))
        seq.append((pid, e.data["unit_id"], e.data["items"]))
    return seq


def _timefree_totals(log: EventLog) -> dict:
    m = run_metrics(log)
    return {
        "units_completed": m.total_units_completed,
        "items_completed": m.total_items_completed,
        "units_requeued": m.total_units_requeued,
        "bytes_in": m.total_bytes_in,
        "bytes_out": m.total_bytes_out,
        "units_issued": sum(p.units_issued for p in m.problems.values()),
        "duplicates": sum(p.duplicate_results for p in m.problems.values()),
    }


def _run_single_donor_manual(policy, n: int):
    """The live donor protocol under a manual clock.

    Identical to what one simulated machine at speed 1.0 does — request,
    compute for ``cost`` seconds, submit — but expressed through direct
    server calls, exactly as :class:`InProcessServerPort` would make them.
    """
    server = TaskFarmServer(policy=policy, lease_timeout=1e9)
    clock = ManualClock()
    pid = server.submit(
        Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm()), now=clock()
    )
    server.register_donor("donor", clock())
    algorithm = None
    while not server.all_complete():
        assignment = server.request_work("donor", clock())
        assert assignment is not None
        if algorithm is None:
            algorithm = server.get_algorithm(pid)
        cost = assignment.cost_hint or algorithm.cost(assignment.payload)
        duration = cost / 1.0  # speed 1.0, like the sim machine
        clock.advance(duration)
        value = algorithm.compute(assignment.payload)
        output_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        server.submit_result(
            WorkResult(
                problem_id=pid,
                unit_id=assignment.unit_id,
                value=value,
                donor_id="donor",
                compute_seconds=duration,
                items=assignment.items,
                output_bytes=output_bytes,
            ),
            clock(),
        )
    server.deregister_donor("donor", clock())
    return server, pid


def _run_sim_single_machine(policy, n: int):
    cluster = SimCluster(
        [MachineSpec("donor", speed=1.0)], policy=policy, seed=3, lease_timeout=1e9
    )
    pid = cluster.submit(
        Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm())
    )
    report = cluster.run()
    assert report.completed
    return cluster.server, pid, report


class TestFixedGranularityDifferential:
    def test_threadcluster_matches_simulator(self):
        """One worker, fixed unit size: both drivers must cut the same
        units in the same order and account them identically."""
        live = ThreadCluster(workers=1, policy=FixedGranularity(7), lease_timeout=1e9)
        live_pid = live.submit(
            Problem("sum", RangeSumDataManager(N), RangeSumAlgorithm())
        )
        live.run()

        sim_server, sim_pid, report = _run_sim_single_machine(FixedGranularity(7), N)

        assert _issue_sequence(live.server.log) == _issue_sequence(sim_server.log)
        assert _timefree_totals(live.server.log) == _timefree_totals(sim_server.log)
        assert live.final_result(live_pid) == report.results[sim_pid]
        assert live.final_result(live_pid) == N * (N - 1) // 2


class TestAdaptiveGranularityDifferential:
    def test_manual_clock_run_matches_simulator(self):
        """Adaptive sizing depends on measured unit durations; with the
        live path's compute time equal to the simulator's virtual
        compute time (speed 1.0), the granularity ramp — and therefore
        every issued unit — must be byte-identical."""
        policy_args = dict(target_seconds=8.0, probe_items=2)

        server, pid = _run_single_donor_manual(
            AdaptiveGranularity(**policy_args), N
        )
        sim_server, sim_pid, report = _run_sim_single_machine(
            AdaptiveGranularity(**policy_args), N
        )

        live_seq = _issue_sequence(server.log)
        sim_seq = _issue_sequence(sim_server.log)
        assert live_seq == sim_seq
        assert len({items for _, _, items in live_seq}) > 1, (
            "workload too small to exercise the adaptive ramp"
        )
        assert _timefree_totals(server.log) == _timefree_totals(sim_server.log)
        assert server.final_result(pid) == report.results[sim_pid]

    def test_meters_agree_across_drivers(self):
        """The streaming counters, not just the event logs, must match."""
        server, _ = _run_single_donor_manual(AdaptiveGranularity(target_seconds=8.0), N)
        sim_server, _, _ = _run_sim_single_machine(
            AdaptiveGranularity(target_seconds=8.0), N
        )
        live = server.obs.meters.snapshot()["counters"]
        sim = sim_server.obs.meters.snapshot()["counters"]
        for key in (
            "farm.units.issued",
            "farm.units.completed",
            "farm.items.completed",
            "farm.units.requeued",
            "farm.bytes.in",
            "farm.bytes.out",
        ):
            assert live[key] == sim[key], key
