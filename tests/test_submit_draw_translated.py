"""Tests for remote submission, tree drawing, translated search and the
DPRml consensus helper."""

import numpy as np
import pytest

from repro.apps.dprml import DPRmlConfig, run_many_dprml
from repro.apps.dprml.driver import consensus_of
from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch.translated import (
    build_translated_problem,
    fold_frames,
    run_translated_search,
    translated_queries,
)
from repro.bio.phylo.draw import ascii_outline, ascii_tree
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.tree import parse_newick
from repro.bio.seq import DNA, PROTEIN
from repro.bio.seq.generate import random_database, random_sequence
from repro.bio.seq.sequence import dna
from repro.bio.seq.translate import translate
from repro.cluster.local import RemoteSubmitter, ServerFacade
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.rmi import RMIServer
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


class TestRemoteSubmitter:
    @pytest.fixture()
    def farm(self):
        server = TaskFarmServer(policy=FixedGranularity(20), lease_timeout=60.0)
        facade = ServerFacade(server)
        rmi = RMIServer()
        rmi.bind("taskfarm", facade)
        yield server, facade, rmi
        rmi.close()

    def test_submit_wait_result(self, farm):
        server, facade, rmi = farm
        import threading

        from repro.core.client import DonorClient
        from repro.rmi import connect

        with RemoteSubmitter(rmi.host, rmi.port) as submitter:
            pid = submitter.submit(
                Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm())
            )
            assert not submitter.is_complete(pid)

            donor_proxy = connect(rmi.host, rmi.port, "taskfarm")
            donor = DonorClient("remote-donor", donor_proxy, idle_sleep=0.01)
            thread = threading.Thread(target=donor.run)
            thread.start()
            progress_samples = []
            result = submitter.wait(
                pid, timeout=30.0, poll_interval=0.02,
                on_progress=progress_samples.append,
            )
            thread.join()
            donor_proxy.close()
            assert result == sum(range(100))
            assert submitter.is_complete(pid)
            assert all(0.0 <= p <= 1.0 for p in progress_samples)

    def test_wait_timeout(self, farm):
        _server, _facade, rmi = farm
        with RemoteSubmitter(rmi.host, rmi.port) as submitter:
            pid = submitter.submit(
                Problem("stuck", RangeSumDataManager(10), RangeSumAlgorithm())
            )
            with pytest.raises(TimeoutError, match="did not complete"):
                submitter.wait(pid, timeout=0.2, poll_interval=0.05)

    def test_status_report_remote(self, farm):
        _server, _facade, rmi = farm
        with RemoteSubmitter(rmi.host, rmi.port) as submitter:
            submitter.submit(
                Problem("job", RangeSumDataManager(10), RangeSumAlgorithm())
            )
            assert "task farm status" in submitter.status_report()


class TestDraw:
    TREE = "((a:0.1,b:0.2):0.15,(c:0.12,(d:0.08,e:0.1):0.05):0.1,f:0.3);"

    def test_outline_contains_all_nodes(self):
        tree = parse_newick(self.TREE)
        text = ascii_outline(tree)
        for name in "abcdef":
            assert name in text
        assert ":0.15" in text

    def test_ascii_tree_places_all_leaves(self):
        tree = parse_newick(self.TREE)
        art = ascii_tree(tree, width=50)
        for name in "abcdef":
            assert f" {name}" in art
        assert "+" in art and "-" in art

    def test_phylogram_scales_with_length(self):
        tree = parse_newick("(short:0.01,long:1.0,mid:0.5);")
        art = ascii_tree(tree, width=60, use_lengths=True)
        lines = {line.split()[-1]: len(line) for line in art.splitlines() if line.strip()}
        assert lines["long"] > lines["short"]

    def test_cladogram_equal_depths(self):
        tree = parse_newick("(a:0.01,b:5.0,c:1.0);")
        art = ascii_tree(tree, width=40, use_lengths=False)
        cols = {
            line.rindex(f" {leaf}")
            for leaf in "abc"
            for line in art.splitlines()
            if line.endswith(f" {leaf}")
        }
        assert len(cols) == 1  # all leaves at the same depth

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ascii_tree(parse_newick("(a:1,b:1,c:1);"), width=5)


class TestTranslatedSearch:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(91)
        # A protein, its coding DNA, and decoy proteins.
        protein_db = random_database(25, PROTEIN, seed=92, mean_length=120)
        target = protein_db[7]
        # Reverse-translate the target deterministically (pick one codon
        # per residue) to get a DNA query whose frame-0 translation is
        # exactly the target protein.
        from repro.bio.seq.translate import GENETIC_CODE

        codon_for = {}
        for codon, aa in sorted(GENETIC_CODE.items()):
            codon_for.setdefault(aa, codon)
        dna_text = "".join(codon_for[aa] for aa in str(target))
        query = dna("dnaquery", dna_text)
        return protein_db, query, target

    def test_translated_queries_have_six_frames(self, workload):
        _db, query, _target = workload
        frames = translated_queries([query])
        assert len(frames["dnaquery"]) == 6

    def test_dna_scoring_rejected(self, workload):
        db, query, _target = workload
        with pytest.raises(ValueError, match="protein scoring"):
            build_translated_problem(db, [query], DSearchConfig(scoring="dna"))

    def test_dna_database_rejected(self, workload):
        _db, query, _target = workload
        with pytest.raises(ValueError, match="protein sequences"):
            build_translated_problem([dna("d", "ACGT")], [query])

    def test_finds_coding_match(self, workload):
        db, query, target = workload
        config = DSearchConfig(scoring="blosum62", top_hits=3)
        folded = run_translated_search(db, [query], config, workers=2)
        hits = folded["dnaquery"]
        assert hits[0].hit.subject_id == target.seq_id
        assert hits[0].frame_id == "dnaquery_f0"  # the coding frame
        assert len(hits) <= 3

    def test_frame0_translation_matches_target(self, workload):
        _db, query, target = workload
        assert str(translate(query)) == str(target)


class TestDPRmlConsensus:
    def test_consensus_of_instances(self):
        true = random_yule_tree(7, seed=201, mean_branch=0.15)
        aln = simulate_alignment(true, JC69(), 800, seed=202)
        reports = run_many_dprml(
            aln, instances=3, config=DPRmlConfig(model="jc69"), workers=3
        )
        tree, splits = consensus_of(reports)
        assert sorted(tree.leaf_names()) == sorted(aln.names)
        assert all(0.5 < s.frequency <= 1.0 for s in splits)
        # On clean data the instances agree on most clades.
        assert len(splits) >= 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus_of([])
