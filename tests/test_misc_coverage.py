"""Edge cases not covered by the main suites: lease-table API, stuck
DataManagers, concurrent bulk transfers, problem validation."""

import threading

import pytest

from repro.core.client import run_to_completion
from repro.core.faults import LeaseTable
from repro.core.problem import Algorithm, DataManager, FunctionAlgorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.core.workunit import UnitPayload, WorkResult, WorkUnit
from repro.rmi import DataChannelServer, fetch_data, push_data
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


class TestLeaseTableDirect:
    def unit(self, uid=0):
        return WorkUnit(problem_id=1, unit_id=uid, payload=None, items=1)

    def test_grant_and_holder(self):
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(), "d0", now=0.0)
        assert table.holder(1, 0) == "d0"
        assert table.holder(1, 99) is None
        assert len(table) == 1

    def test_double_grant_same_donor_rejected(self):
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(), "d0", now=0.0)
        with pytest.raises(ValueError, match="already leased"):
            table.grant(self.unit(), "d0", now=1.0)

    def test_multi_lease_replicas(self):
        """The integrity layer leases one unit to several donors."""
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(), "d0", now=0.0)
        table.grant(self.unit(), "d1", now=1.0)
        assert table.holders(1, 0) == ["d0", "d1"]
        assert table.holder(1, 0) == "d0"  # earliest issue
        assert len(table) == 2
        # Donor-scoped release leaves the replica's lease alone.
        released = table.release(1, 0, donor_id="d0")
        assert released is not None and released.donor_id == "d0"
        assert table.holders(1, 0) == ["d1"]
        # Donor-scoped renew only extends that donor's deadline.
        assert table.renew(1, 0, now=5.0, donor_id="d9") is False
        assert table.renew(1, 0, now=5.0, donor_id="d1") is True
        # Release-all drops every remaining holder.
        assert table.release(1, 0).donor_id == "d1"
        assert table.holders(1, 0) == []
        assert len(table) == 0

    def test_renew_missing_lease(self):
        table = LeaseTable(timeout=10.0)
        assert table.renew(1, 0, now=5.0) is False

    def test_expired_boundary(self):
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(), "d0", now=0.0)
        assert table.expired(9.999) == []
        dead = table.expired(10.0)  # deadline inclusive
        assert len(dead) == 1
        assert len(table) == 0

    def test_revoke_donor_scoped(self):
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(0), "d0", now=0.0)
        table.grant(self.unit(1), "d1", now=0.0)
        revoked = table.revoke_donor("d0")
        assert [l.unit.unit_id for l in revoked] == [0]
        assert table.holder(1, 1) == "d1"

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            LeaseTable(timeout=0.0)

    def test_outstanding_by_problem(self):
        table = LeaseTable(timeout=10.0)
        table.grant(self.unit(0), "d0", now=0.0)
        other = WorkUnit(problem_id=2, unit_id=0, payload=None, items=1)
        table.grant(other, "d0", now=0.0)
        assert len(table.outstanding()) == 2
        assert len(table.outstanding(problem_id=2)) == 1


class _StuckDataManager(DataManager):
    """Never produces units, never completes: a deadlocked problem."""

    def next_unit(self, max_items):
        return None

    def handle_result(self, result):  # pragma: no cover
        pass

    def is_complete(self):
        return False

    def final_result(self):  # pragma: no cover
        return None


class TestRunToCompletion:
    def test_stuck_problem_detected(self):
        server = TaskFarmServer(policy=FixedGranularity(1), lease_timeout=1e6)
        server.submit(
            Problem("stuck", _StuckDataManager(), FunctionAlgorithm(lambda x: x)), 0.0
        )
        with pytest.raises(RuntimeError, match="no progress"):
            run_to_completion(server, donors=2)


class TestProblemValidation:
    def test_type_checks(self):
        with pytest.raises(TypeError, match="DataManager"):
            Problem("p", object(), RangeSumAlgorithm())
        with pytest.raises(TypeError, match="Algorithm"):
            Problem("p", RangeSumDataManager(5), object())

    def test_unit_payload_validation(self):
        with pytest.raises(ValueError, match="at least one item"):
            UnitPayload(payload=None, items=0)

    def test_problem_ids_unique(self):
        a = Problem("a", RangeSumDataManager(5), RangeSumAlgorithm())
        b = Problem("b", RangeSumDataManager(5), RangeSumAlgorithm())
        assert a.problem_id != b.problem_id

    def test_algorithm_default_cost(self):
        assert RangeSumAlgorithm().cost((0, 7)) == 7.0
        assert FunctionAlgorithm(lambda x: x).cost("anything") == 1.0
        assert FunctionAlgorithm(lambda x: x, cost_fn=len).cost("abc") == 3.0


class TestDataChannelConcurrency:
    def test_parallel_fetches(self):
        with DataChannelServer() as dcs:
            payloads = {f"blob{i}": bytes([i]) * (256 << 10) for i in range(8)}
            for key, data in payloads.items():
                dcs.store(key, data)
            errors = []
            results = {}

            def fetch(key):
                try:
                    results[key] = fetch_data(dcs.host, dcs.port, key)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=fetch, args=(key,)) for key in payloads
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert results == payloads

    def test_concurrent_push_and_fetch(self):
        with DataChannelServer() as dcs:
            dcs.store("stable", b"s" * 1000)
            errors = []

            def pusher(n):
                try:
                    for i in range(5):
                        push_data(dcs.host, dcs.port, f"k{n}", bytes([n]) * 10_000)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def fetcher():
                try:
                    for _ in range(10):
                        assert fetch_data(dcs.host, dcs.port, "stable") == b"s" * 1000
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=pusher, args=(n,)) for n in range(4)]
            threads += [threading.Thread(target=fetcher) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            for n in range(4):
                assert dcs.get(f"k{n}") == bytes([n]) * 10_000


class TestWorkResultDefaults:
    def test_extra_dict_isolated(self):
        a = WorkResult(1, 1, None)
        b = WorkResult(1, 2, None)
        a.extra["k"] = 1
        assert b.extra == {}
