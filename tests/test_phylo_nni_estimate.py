"""Tests for NNI rearrangements and model parameter estimation."""

import numpy as np
import pytest

from repro.bio.phylo.estimate import (
    empirical_frequencies,
    fit_alpha,
    fit_hky_gamma,
    fit_kappa,
)
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GammaRates, HKY85, JC69
from repro.bio.phylo.nni import (
    NNIMove,
    apply_nni,
    evaluate_nni,
    internal_edges,
    nni_candidates,
    nni_search,
)
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.tree import Tree, TreeError, parse_newick, rf_distance

FREQS = np.array([0.35, 0.15, 0.2, 0.3])


class TestNNIMechanics:
    def test_internal_edges_excludes_leaves(self):
        tree = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        indices = internal_edges(tree)
        edges = tree.edges()
        assert len(indices) == 2
        assert all(not edges[i].is_leaf for i in indices)

    def test_candidates_two_per_internal_edge(self):
        tree = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        assert len(nni_candidates(tree)) == 4

    def test_star_has_no_moves(self):
        assert nni_candidates(Tree.star(["a", "b", "c", "d"])) == []

    def test_apply_changes_topology(self):
        tree = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        before = tree.splits()
        move = nni_candidates(tree)[0]
        apply_nni(tree, move)
        assert tree.splits() != before
        assert sorted(tree.leaf_names()) == ["a", "b", "c", "d", "e"]

    def test_moves_produce_distinct_topologies(self):
        base = "((a:1,b:1):1,(c:1,d:1):1,e:1);"
        seen = set()
        tree = parse_newick(base)
        for move in nni_candidates(tree):
            work = parse_newick(base)
            apply_nni(work, move)
            seen.add(frozenset(work.splits()))
        # around one internal edge the two swaps give the two
        # alternative resolutions; both must differ from the original
        assert frozenset(parse_newick(base).splits()) not in seen

    def test_apply_validation(self):
        tree = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        with pytest.raises(IndexError):
            apply_nni(tree, NNIMove(99, 0))
        leaf_index = tree.edges().index(tree.find("a"))
        with pytest.raises(TreeError):
            apply_nni(tree, NNIMove(leaf_index, 0))
        with pytest.raises(ValueError):
            NNIMove(0, 2)

    def test_branch_lengths_travel_with_subtrees(self):
        tree = parse_newick("((a:0.1,b:0.2)x:0.3,(c:0.4,d:0.5)y:0.6,e:0.7);")
        total_before = tree.total_branch_length()
        apply_nni(tree, nni_candidates(tree)[0])
        assert tree.total_branch_length() == pytest.approx(total_before)


class TestNNISearch:
    def test_escapes_a_bad_join(self):
        # Build data on a clear topology, start the search from a
        # deliberately wrong arrangement: NNI must repair it.
        true = parse_newick("((a:0.05,b:0.05):0.2,(c:0.05,d:0.05):0.2,e:0.3);")
        aln = simulate_alignment(true, JC69(), 1500, seed=9)
        wrong = parse_newick("((a:0.05,c:0.05):0.2,(b:0.05,d:0.05):0.2,e:0.3);")
        fixed, ll, rounds = nni_search(wrong, aln, JC69())
        assert rf_distance(fixed, true) == 0
        assert rounds >= 1
        # input untouched
        assert rf_distance(wrong, parse_newick("((a:0.05,c:0.05):0.2,(b:0.05,d:0.05):0.2,e:0.3);")) == 0

    def test_no_move_improves_optimal_tree(self):
        true = parse_newick("((a:0.05,b:0.05):0.2,(c:0.05,d:0.05):0.2,e:0.3);")
        aln = simulate_alignment(true, JC69(), 1500, seed=10)
        result, ll, rounds = nni_search(true, aln, JC69())
        assert rf_distance(result, true) == 0

    def test_evaluate_nni_is_pure(self):
        true = random_yule_tree(6, seed=3)
        aln = simulate_alignment(true, JC69(), 200, seed=4)
        newick = true.newick()
        move = nni_candidates(true)[0]
        s1 = evaluate_nni(newick, move, aln, JC69())
        s2 = evaluate_nni(newick, move, aln, JC69())
        assert s1.log_likelihood == s2.log_likelihood
        assert true.newick() == newick


class TestEmpiricalFrequencies:
    def test_sums_to_one_and_tracks_content(self):
        tree = random_yule_tree(6, seed=5)
        model = HKY85(2.0, FREQS)
        aln = simulate_alignment(tree, model, 3000, seed=6)
        freqs = empirical_frequencies(aln)
        assert freqs.sum() == pytest.approx(1.0)
        assert np.allclose(freqs, FREQS, atol=0.05)

    def test_pseudocount_prevents_zero(self):
        from repro.bio.phylo.alignment import SiteAlignment
        from repro.bio.seq.sequence import dna

        aln = SiteAlignment.from_sequences(
            [dna("a", "AAAA"), dna("b", "AAAA"), dna("c", "AAAA"), dna("d", "AAAA")]
        )
        freqs = empirical_frequencies(aln)
        assert (freqs > 0).all()

    def test_validation(self):
        tree = random_yule_tree(4, seed=1)
        aln = simulate_alignment(tree, JC69(), 50, seed=2)
        with pytest.raises(ValueError):
            empirical_frequencies(aln, pseudocount=0)


class TestParameterFitting:
    def setup_method(self):
        self.tree = random_yule_tree(8, seed=21, mean_branch=0.12)
        self.kappa_true = 4.0
        self.model = HKY85(self.kappa_true, FREQS)

    def test_fit_kappa_recovers_truth(self):
        aln = simulate_alignment(self.tree, self.model, 4000, seed=22)
        kappa, ll = fit_kappa(self.tree, aln, empirical_frequencies(aln))
        assert kappa == pytest.approx(self.kappa_true, rel=0.25)
        assert ll < 0

    def test_fit_alpha_recovers_heterogeneity(self):
        alpha_true = 0.4
        aln = simulate_alignment(
            self.tree, self.model, 4000, seed=23, rates=GammaRates(alpha_true, 8)
        )
        alpha, _ll = fit_alpha(self.tree, aln, self.model, categories=4)
        assert alpha == pytest.approx(alpha_true, rel=0.5)

    def test_alpha_large_on_homogeneous_data(self):
        aln = simulate_alignment(self.tree, self.model, 2000, seed=24)
        alpha, _ll = fit_alpha(self.tree, aln, self.model, categories=4)
        assert alpha > 5.0  # effectively "no heterogeneity"

    def test_fit_hky_gamma_improves_loglik(self):
        aln = simulate_alignment(self.tree, self.model, 1500, seed=25)
        naive_ll = TreeLikelihood(self.tree, aln, JC69()).log_likelihood()
        fitted = fit_hky_gamma(self.tree, aln)
        assert fitted.log_likelihood > naive_ll
        assert fitted.alpha is None  # gamma disabled by default
        assert fitted.kappa > 1.5  # transition bias detected

    def test_fit_validation(self):
        aln = simulate_alignment(self.tree, self.model, 100, seed=26)
        with pytest.raises(ValueError):
            fit_hky_gamma(self.tree, aln, rounds=0)
