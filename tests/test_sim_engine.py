"""Tests for the discrete-event engine: ordering, timeouts, resources."""

import pytest

from repro.cluster.sim.engine import (
    Acquire,
    SimResource,
    Simulator,
    Timeout,
    transfer,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(5.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.peek() == 10.0

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_every_stops_on_condition(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=lambda: len(ticks) >= 3)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancelled = True
        sim.run()
        assert fired == []


class TestProcesses:
    def test_timeout_sequence(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield Timeout(2.0)
            trace.append(sim.now)
            yield Timeout(3.0)
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_spawn_delay(self):
        sim = Simulator()
        start = []

        def proc():
            start.append(sim.now)
            yield Timeout(1.0)

        sim.spawn(proc(), delay=7.0)
        sim.run()
        assert start == [7.0]

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def bad():
            yield "not-an-effect"

        sim.spawn(bad())
        with pytest.raises(TypeError, match="expected Timeout, Acquire"):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def proc(name, dt):
            for _ in range(3):
                yield Timeout(dt)
                trace.append((name, sim.now))

        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("slow", 2.5))
        sim.run()
        assert trace == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]


class TestResources:
    def test_mutual_exclusion_serializes(self):
        sim = Simulator()
        res = SimResource(sim, capacity=1)
        done = []

        def proc(name):
            yield Acquire(res)
            yield Timeout(10.0)
            res.release()
            done.append((name, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.spawn(proc("c"))
        sim.run()
        assert done == [("a", 10.0), ("b", 20.0), ("c", 30.0)]

    def test_capacity_two_runs_pairs(self):
        sim = Simulator()
        res = SimResource(sim, capacity=2)
        done = []

        def proc(name):
            yield Acquire(res)
            yield Timeout(10.0)
            res.release()
            done.append((name, sim.now))

        for name in "abcd":
            sim.spawn(proc(name))
        sim.run()
        assert [t for _n, t in done] == [10.0, 10.0, 20.0, 20.0]

    def test_fifo_order(self):
        sim = Simulator()
        res = SimResource(sim, capacity=1)
        grabbed = []

        def proc(name, arrive):
            yield Timeout(arrive)
            yield Acquire(res)
            grabbed.append(name)
            yield Timeout(5.0)
            res.release()

        sim.spawn(proc("late", 2.0))
        sim.spawn(proc("early", 1.0))
        sim.spawn(proc("middle", 1.5))
        sim.run()
        assert grabbed == ["early", "middle", "late"]

    def test_release_idle_resource_raises(self):
        sim = Simulator()
        res = SimResource(sim, capacity=1)
        with pytest.raises(RuntimeError, match="release of idle"):
            res.release()

    def test_transfer_helper(self):
        sim = Simulator()
        res = SimResource(sim, capacity=1)
        ends = []

        def proc():
            yield from transfer(res, 4.0)
            ends.append(sim.now)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert ends == [4.0, 8.0]
        assert res.in_use == 0

    def test_queue_length_visible(self):
        sim = Simulator()
        res = SimResource(sim, capacity=1)

        def holder():
            yield Acquire(res)
            yield Timeout(10.0)
            res.release()

        def waiter():
            yield Acquire(res)
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run(until=5.0)
        assert res.queue_length == 2

    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimResource(sim, capacity=0)
