"""Property-based invariants of the simulated task farm.

Whatever the churn pattern, pool composition or granularity policy,
the farm must satisfy its conservation laws: every item completed
exactly once, no phantom work, event log causally ordered, makespan at
least the theoretical bound.  Hypothesis searches the configuration
space for violations.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.sim import MachineSpec, SimCluster
from repro.cluster.sim.machines import with_churn
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity


@st.composite
def pools(draw):
    """Small random heterogeneous pools, possibly with churn."""
    count = draw(st.integers(1, 8))
    machines = [
        MachineSpec(
            machine_id=f"m{i}",
            speed=draw(st.floats(0.25, 4.0)),
            availability=draw(st.floats(0.3, 1.0)),
            availability_jitter=draw(st.floats(0.0, 0.3)),
        )
        for i in range(count)
    ]
    churny = draw(st.booleans())
    if churny:
        machines = with_churn(
            machines,
            horizon=1e6,
            mean_uptime=draw(st.floats(200.0, 5000.0)),
            mean_downtime=draw(st.floats(50.0, 1000.0)),
            seed=draw(st.integers(0, 100)),
        )
    return machines


@st.composite
def workloads(draw):
    n_stages = draw(st.integers(1, 3))
    stages = []
    for _ in range(n_stages):
        n_items = draw(st.integers(1, 60))
        cost = draw(st.floats(0.5, 50.0))
        stages.append(tuple([cost] * n_items))
    return stages


@st.composite
def policies(draw):
    if draw(st.booleans()):
        return FixedGranularity(draw(st.integers(1, 20)))
    return AdaptiveGranularity(
        target_seconds=draw(st.floats(5.0, 500.0)),
        probe_items=draw(st.integers(1, 4)),
    )


@settings(max_examples=25, deadline=None)
@given(pool=pools(), stage_costs=workloads(), policy=policies(), seed=st.integers(0, 1000))
def test_farm_conservation_laws(pool, stage_costs, policy, seed):
    from repro.cluster.sim.trace import TraceStage

    trace = WorkloadTrace(tuple(TraceStage(costs) for costs in stage_costs))
    cluster = SimCluster(
        pool, policy=policy, lease_timeout=300.0, seed=seed, execute=False
    )
    pid = cluster.submit(trace_problem(trace))
    report = cluster.run(until=5e6)

    log = report.log
    issued = log.of_kind("unit.issued")
    completed = log.of_kind("unit.completed")

    # 1. Causal ordering is enforced by EventLog itself; reaching here
    #    means no event went backwards.
    # 2. No phantom completions: every completed unit id was issued.
    issued_ids = {(e.data["problem_id"], e.data["unit_id"]) for e in issued}
    completed_ids = [
        (e.data["problem_id"], e.data["unit_id"]) for e in completed
    ]
    assert set(completed_ids) <= issued_ids
    # 3. Exactly-once: no unit id completed twice.
    assert len(completed_ids) == len(set(completed_ids))

    if report.completed:
        # 4. All items accounted for exactly once.
        assert report.results[pid]["items"] == trace.total_items
        # 5. Makespan respects the physics: cannot beat perfect speedup
        #    on the aggregate nominal capacity, nor the critical path.
        capacity = sum(m.speed for m in pool)  # availability <= 1
        lower_bound = max(
            trace.total_cost / capacity / 1.5,  # jitter can't exceed nominal
            trace.critical_path / 4.0 / 1.5,    # fastest machine is <= 4x
        )
        assert report.makespans[pid] >= lower_bound * 0.99
        # 6. Donor busy time never exceeds elapsed time per machine
        #    (sessions make this an inequality, not equality).
        for machine_id, busy in report.machine_busy.items():
            assert busy <= report.sim_time + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_determinism_across_replays(seed):
    """Same seed, same pool, same trace => bit-identical makespan."""
    def run():
        pool = [
            MachineSpec("a", speed=1.0, availability=0.8, availability_jitter=0.2),
            MachineSpec("b", speed=2.0, availability=0.9, availability_jitter=0.1),
        ]
        cluster = SimCluster(
            pool,
            policy=AdaptiveGranularity(target_seconds=20.0),
            seed=seed,
            execute=False,
        )
        pid = cluster.submit(trace_problem(WorkloadTrace.single_stage([3.0] * 50)))
        return cluster.run().makespans[pid]

    assert run() == run()
