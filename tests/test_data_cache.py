"""The content-addressed donor data cache, differentially tested.

The tentpole contract: with ``share_payloads`` on, work units carry
:class:`~repro.core.blobs.BlobRef` placeholders and donors cache the
blobs, and the assembled result of every run is **bit-identical** to
the same run with sharing off — for both target applications, across
seeds, under simulated schedules.  On top of that, the byte accounting
must show the point of the whole exercise: the database crosses the
wire once per donor, not once per unit.

Plus Hypothesis property tests for the donor cache itself (budget
invariant, counter reconciliation against real
:class:`~repro.rmi.datachannel.DataChannelServer` transfer meters,
exactly-one-refetch on digest mismatch) and the refcounted blob
lifecycle on the data channel.
"""

import pickle
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dprml import DPRmlConfig
from repro.apps.dprml import build_problem as build_dprml_problem
from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch import build_problem as build_dsearch_problem
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.sim import SimCluster, heterogeneous_pool, homogeneous_pool
from repro.cluster.sim.network import NetworkConfig
from repro.core.blobs import (
    BlobCache,
    BlobRef,
    blob_key,
    canonical_dumps,
    fetch_and_resolve,
    iter_blob_refs,
    payload_nbytes,
    resolve_payload,
)
from repro.core.integrity import canonical_digest
from repro.core.scheduler import FixedGranularity
from repro.obs.meters import MeterRegistry
from repro.rmi.datachannel import DataChannelServer, fetch_data
from repro.rmi.errors import ChecksumError

DIFF_SEEDS = [3, 17, 29]


# ---------------------------------------------------------------------------
# Workload builders


def dsearch_problem(seed: int, share: bool):
    rng = np.random.default_rng(seed)
    query = random_sequence("q0", 64, DNA, rng)
    database, _ = seeded_database(
        query, decoy_count=12, homolog_count=2, seed=seed + 1,
        substitution_rate=0.1,
    )
    return build_dsearch_problem(
        database, [query], DSearchConfig(top_hits=4, share_payloads=share)
    )


def dprml_problem(seed: int, share: bool):
    true = random_yule_tree(6, seed=seed, mean_branch=0.2)
    alignment = simulate_alignment(true, JC69(), 150, seed=seed + 1)
    return build_dprml_problem(
        alignment, DPRmlConfig(model="jc69", share_payloads=share)
    )


def run_sim(problem, donors=5, granularity=3):
    cluster = SimCluster(
        heterogeneous_pool(donors, seed=2),
        policy=FixedGranularity(granularity),
        lease_timeout=120.0,
        seed=5,
    )
    pid = cluster.submit(problem)
    report = cluster.run()
    assert report.completed
    return cluster, report.results[pid]


# ---------------------------------------------------------------------------
# The differential equivalence suite (satellite 1)


class TestDifferentialEquivalence:
    """share-on and share-off runs assemble bit-identical results."""

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dsearch_cache_on_off_bit_identical(self, seed):
        _c_off, plain = run_sim(dsearch_problem(seed, share=False))
        cached_cluster, cached = run_sim(dsearch_problem(seed, share=True))
        assert canonical_digest(cached) == canonical_digest(plain)
        counters = cached_cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.cache.misses"] > 0
        assert counters["farm.cache.hits"] > 0

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dprml_cache_on_off_bit_identical(self, seed):
        _c_off, plain = run_sim(dprml_problem(seed, share=False))
        cached_cluster, cached = run_sim(dprml_problem(seed, share=True))
        assert canonical_digest(cached) == canonical_digest(plain)
        counters = cached_cluster.obs.meters.snapshot()["counters"]
        assert counters["farm.cache.misses"] > 0

    def test_share_off_run_moves_no_blobs(self):
        cluster, _result = run_sim(dsearch_problem(3, share=False))
        counters = cluster.obs.meters.snapshot()["counters"]
        assert counters.get("net.blob.refs", 0) == 0
        assert counters.get("net.blob.bytes", 0) == 0
        assert counters.get("farm.cache.misses", 0) == 0


# ---------------------------------------------------------------------------
# Byte accounting: the database crosses the wire once per donor


def _byte_workload(share: bool):
    """A deliberately reference-heavy search: many tiny units, each of
    which (uncached) re-ships the whole 24-query set."""
    rng = np.random.default_rng(11)
    queries = [random_sequence(f"q{i}", 150, DNA, rng) for i in range(24)]
    database, _ = seeded_database(
        queries[0], decoy_count=23, homolog_count=1, seed=12,
        substitution_rate=0.1,
    )
    return build_dsearch_problem(
        database, queries, DSearchConfig(top_hits=2, share_payloads=share)
    )


def _run_byte_workload(share: bool, donors: int = 3):
    # control_bytes=0 isolates payload movement: every byte on the
    # simulated link is unit input, blob fetch, or result upload.
    cluster = SimCluster(
        homogeneous_pool(donors, speed=1.0, availability=1.0),
        policy=FixedGranularity(1),
        lease_timeout=600.0,
        seed=9,
        network=NetworkConfig(control_bytes=0),
    )
    # Two identical searches: content addressing must share one cached
    # copy between them (the second search is "free").
    pid_a = cluster.submit(_byte_workload(share))
    pid_b = cluster.submit(_byte_workload(share))
    report = cluster.run()
    assert report.completed
    counters = cluster.obs.meters.snapshot()["counters"]
    digest = canonical_digest((report.results[pid_a], report.results[pid_b]))
    return counters, digest


class TestSimByteAccounting:
    @pytest.fixture(scope="class")
    def byte_runs(self):
        return _run_byte_workload(share=False), _run_byte_workload(share=True)

    def test_net_bytes_drop_by_dedup_factor(self, byte_runs):
        (plain, plain_digest), (cached, cached_digest) = byte_runs
        assert cached_digest == plain_digest
        # Input side: 48 single-sequence units each re-ship the query
        # set uncached; cached they ship ~64-byte refs and the blobs
        # move once per donor.  The crafted workload dedups >=5x.
        assert plain["farm.bytes.in"] >= 5 * cached["farm.bytes.in"]
        # Link side: outputs are identical (bit-identical results) and
        # control traffic is zeroed, so the net.bytes drop must equal
        # the input-side saving exactly.
        saving = plain["farm.bytes.in"] - cached["farm.bytes.in"]
        assert plain["net.bytes"] - cached["net.bytes"] == saving

    def test_blob_meters_reconcile(self, byte_runs):
        _plain, (cached, _digest) = byte_runs
        # Every simulated blob download is a donor-cache miss the
        # server also charged as a first delivery — and vice versa.
        assert cached["net.blob.fetches"] == cached["net.blob.deliveries"]
        assert cached["net.blob.fetch.bytes"] == cached["net.blob.bytes"]
        assert cached["farm.cache.misses"] == cached["net.blob.fetches"]
        # 2 blobs (queries, database), fetched at most once per donor
        # across BOTH problems: content addressing dedups the second
        # submission against the first.
        assert cached["net.blob.deliveries"] <= 2 * 3
        assert cached["net.blob.bytes.saved"] > 0
        # Charged wire bytes reconcile: farm.bytes.in is all inline
        # envelopes plus the first-delivery blob content.
        assert cached["farm.bytes.in"] > cached["net.blob.bytes"]


# ---------------------------------------------------------------------------
# The blob primitives


class TestBlobPrimitives:
    def test_canonical_dumps_ignores_sharing(self):
        piece = [1, 2, 3]
        shared = (piece, piece)
        copies = ([1, 2, 3], [1, 2, 3])
        assert canonical_dumps(shared) == canonical_dumps(copies)
        assert blob_key(canonical_dumps(shared)) == blob_key(
            canonical_dumps(copies)
        )

    def test_iter_blob_refs_dedups_in_order(self):
        a = BlobRef(key="a" * 32, size=10)
        b = BlobRef(key="b" * 32, size=20)
        payload = {"x": [a, (b, a)], "y": b}
        assert iter_blob_refs(payload) == [a, b]
        assert iter_blob_refs(("no", "refs", 3)) == []

    def test_resolve_payload_substitutes_and_passes_through(self):
        a = BlobRef(key="a" * 32, size=10)
        payload = ("head", a, [1, a])
        resolved = resolve_payload(payload, lambda ref: "BLOB")
        assert resolved == ("head", "BLOB", [1, "BLOB"])
        plain = ("head", [1, 2], {"k": 3})
        assert resolve_payload(plain, lambda ref: "BLOB") is plain

    def test_blob_ref_rejects_negative_size(self):
        with pytest.raises(ValueError):
            BlobRef(key="a" * 32, size=-1)

    def test_payload_nbytes_is_real_pickle_size(self):
        value = list(range(100))
        assert payload_nbytes(value) == len(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )


def _make_blob(value):
    data = canonical_dumps(value)
    return data, BlobRef(key=blob_key(data), size=len(data))


# ---------------------------------------------------------------------------
# Hypothesis: the donor cache (satellite 2)


class TestBlobCacheProperties:
    @given(
        budget=st.integers(min_value=64, max_value=2048),
        values=st.lists(
            st.integers(min_value=0, max_value=11), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_lru_never_exceeds_byte_budget(self, budget, values):
        """The invariant: whatever the access sequence and blob sizes,
        ``bytes_used`` stays within budget (oversized blobs bypass)."""
        cache = BlobCache(budget, sink=lambda name, amount: None)
        store = {}
        for v in values:
            # Sizes spread around the budget so eviction and bypass
            # both fire: value v serializes to ~v*300 bytes.
            data, ref = _make_blob(bytes(300 * v))
            store[ref.key] = data
            cache.ensure(ref, lambda r: store[r.key])
            assert cache.bytes_used <= budget
            assert cache.bytes_used == sum(
                size for size, _obj in cache._entries.values()
            )
        assert cache.hits + cache.misses == len(values)

    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=12
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_counters_reconcile_with_datachannel_meters(
        self, channel, channel_blobs, accesses
    ):
        """Cache misses are exactly the data channel's outbound
        transfers; fetched bytes are exactly its outbound bytes."""
        server, meters = channel
        before = meters.snapshot()["counters"]
        recorded: dict[str, float] = {}

        def sink(name, amount):
            recorded[name] = recorded.get(name, 0.0) + amount

        def delta(name):
            counters = meters.snapshot()["counters"]
            return counters.get(name, 0) - before.get(name, 0)

        cache = BlobCache(1 << 20, sink=sink)
        fetch = lambda ref: fetch_data(server.host, server.port, ref.key)
        for i in accesses:
            ref = channel_blobs[i]
            value = cache.ensure(ref, fetch)
            assert value[0] == "blob"
            assert blob_key(canonical_dumps(value)) == ref.key
        expected_misses = len({i for i in accesses})
        assert cache.misses == expected_misses
        assert cache.hits == len(accesses) - expected_misses
        assert cache.refetches == 0
        fetched = recorded.get("farm.cache.fetch.bytes", 0.0)
        assert fetched == sum(
            channel_blobs[i].size for i in set(accesses)
        )
        assert recorded.get("farm.cache.hits", 0.0) == cache.hits
        assert recorded.get("farm.cache.misses", 0.0) == cache.misses
        # The server meters a transfer *after* streaming it, on its own
        # thread: give the last increment a moment to land, then the
        # reconciliation must be exact.
        deadline = time.monotonic() + 2.0
        while (
            delta("data.transfers.out") != cache.misses
            and time.monotonic() < deadline
        ):
            time.sleep(0.002)
        assert delta("data.transfers.out") == cache.misses
        assert delta("data.bytes.out") == fetched

    @given(value=st.binary(min_size=1, max_size=512), flip=st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_digest_mismatch_triggers_exactly_one_refetch(self, value, flip):
        data, ref = _make_blob(value)
        corrupt = bytearray(data)
        corrupt[flip % len(data)] ^= 0x41
        corrupt = bytes(corrupt)
        if corrupt == data:  # XOR happened to be identity — impossible
            return

        calls = []

        def flaky(r):
            calls.append(r.key)
            return corrupt if len(calls) == 1 else data

        cache = BlobCache(1 << 20, sink=lambda n, a: None)
        assert cache.ensure(ref, flaky) == value
        assert cache.refetches == 1
        assert len(calls) == 2
        # The verified copy is cached: no further fetches.
        assert cache.ensure(ref, flaky) == value
        assert len(calls) == 2 and cache.hits == 1

    def test_persistently_corrupt_source_fails_loudly(self):
        data, ref = _make_blob(b"payload")
        calls = []

        def always_corrupt(r):
            calls.append(r.key)
            return b"not the blob"

        cache = BlobCache(1 << 20, sink=lambda n, a: None)
        with pytest.raises(ChecksumError):
            cache.ensure(ref, always_corrupt)
        assert cache.refetches == 1
        assert len(calls) == 2
        assert not cache.contains(ref.key)

    def test_transport_checksum_error_counts_as_refetch(self):
        data, ref = _make_blob(b"payload")
        calls = []

        def flaky(r):
            calls.append(r.key)
            if len(calls) == 1:
                raise ChecksumError("damaged in transit")
            return data

        cache = BlobCache(1 << 20, sink=lambda n, a: None)
        assert cache.ensure(ref, flaky) == b"payload"
        assert cache.refetches == 1 and len(calls) == 2

    def test_oversized_blob_bypasses_cache(self):
        data, ref = _make_blob(bytes(4096))
        cache = BlobCache(256, sink=lambda n, a: None)
        assert cache.ensure(ref, lambda r: data) == bytes(4096)
        assert cache.bypasses == 1
        assert cache.bytes_used == 0 and len(cache) == 0

    def test_fetch_and_resolve_counts_each_distinct_ref_once(self):
        data_a, ref_a = _make_blob([1, 2, 3])
        data_b, ref_b = _make_blob({"k": "v"})
        store = {ref_a.key: data_a, ref_b.key: data_b}
        cache = BlobCache(1 << 20, sink=lambda n, a: None)
        payload = (ref_a, ref_b, ref_a, ("inline", ref_b))
        resolved = fetch_and_resolve(
            payload, cache, lambda r: store[r.key]
        )
        assert resolved == ([1, 2, 3], {"k": "v"}, [1, 2, 3], ("inline", {"k": "v"}))
        assert cache.misses == 2 and cache.hits == 0


@pytest.fixture(scope="class")
def channel():
    meters = MeterRegistry()
    with DataChannelServer(meters=meters) as server:
        yield server, meters


@pytest.fixture(scope="class")
def channel_blobs(channel):
    server, _meters = channel
    refs = []
    for i in range(4):
        data, ref = _make_blob(("blob", i, bytes(64 * (i + 1))))
        server.store(ref.key, data)
        refs.append(ref)
    return refs


# ---------------------------------------------------------------------------
# Refcounted blob lifecycle on the data channel


class TestDataChannelLifecycle:
    def test_retain_release_deletes_on_last_reference(self):
        with DataChannelServer() as server:
            data, ref = _make_blob("shared database")
            server.retain(ref.key, data)
            server.retain(ref.key)  # second problem, same content
            assert server.refcount(ref.key) == 2
            assert server.get(ref.key) == data
            server.release(ref.key)
            assert server.refcount(ref.key) == 1
            assert ref.key in server.keys()
            server.release(ref.key)
            assert server.refcount(ref.key) == 0
            assert ref.key not in server.keys()

    def test_release_of_untracked_key_is_noop(self):
        with DataChannelServer() as server:
            server.release("never-published")  # must not raise

    def test_retain_without_data_requires_prior_publish(self):
        with DataChannelServer() as server:
            with pytest.raises(KeyError):
                server.retain("unknown-key")

    def test_retained_blob_fetchable_and_digest_verified(self):
        with DataChannelServer() as server:
            data, ref = _make_blob(("db", bytes(1 << 12)))
            server.retain(ref.key, data)
            fetched = fetch_data(server.host, server.port, ref.key)
            assert fetched == data
            assert blob_key(fetched) == ref.key
