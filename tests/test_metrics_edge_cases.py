"""Degenerate-input regression tests for the accounting layer.

The divisions hiding in utilization and histogram statistics must be
defined for empty farms, empty runs and zero-span donor careers — the
states every farm passes through at startup.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import DonorMetrics, run_metrics
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.core.problem import Problem
from repro.core.status import render_status, snapshot_dict
from repro.core.workunit import WorkResult
from repro.util.events import EventLog
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


class TestDonorUtilization:
    def test_zero_span_with_work_is_fully_utilized(self):
        """A donor whose whole recorded career is one instant but which
        did complete work was busy for all the time we saw it."""
        d = DonorMetrics("d", busy_seconds=1.0, first_seen=5.0, last_seen=5.0)
        assert d.utilization == 1.0

    def test_zero_span_without_work_is_idle(self):
        d = DonorMetrics("d", busy_seconds=0.0, first_seen=5.0, last_seen=5.0)
        assert d.utilization == 0.0

    def test_utilization_is_capped_at_one(self):
        # Clock skew between donor-reported compute time and server
        # timestamps can push busy over span; never report > 100%.
        d = DonorMetrics("d", busy_seconds=10.0, first_seen=0.0, last_seen=5.0)
        assert d.utilization == 1.0

    def test_normal_fraction(self):
        d = DonorMetrics("d", busy_seconds=2.0, first_seen=0.0, last_seen=8.0)
        assert d.utilization == pytest.approx(0.25)


class TestEmptyFarm:
    def test_run_metrics_of_empty_log(self):
        m = run_metrics(EventLog())
        assert m.problems == {} and m.donors == {}
        assert m.total_span == 0.0
        assert m.mean_utilization == 0.0
        assert m.total_units_completed == 0
        assert m.total_bytes_in == m.total_bytes_out == 0

    def test_empty_server_snapshots_cleanly(self):
        server = TaskFarmServer()
        snap = snapshot_dict(server, now=0.0)
        assert snap["problems"] == [] and snap["donors"] == []
        # The farm counters exist from birth but have counted nothing.
        assert all(v == 0 for v in snap["meters"]["counters"].values())
        assert "donor" in render_status(server, now=0.0)  # header renders

    def test_registered_but_idle_donor(self):
        server = TaskFarmServer()
        server.register_donor("d0", now=1.0)
        snap = snapshot_dict(server, now=1.0)  # zero-span presence
        (donor,) = snap["donors"]
        assert donor["utilization"] == 0.0
        assert donor["items_per_second"] == 0.0


class TestSingleUnitRun:
    def test_instantaneous_single_unit_run(self):
        """Everything happens at t=0: one unit, zero elapsed time.

        Every derived statistic must still be finite and sensible."""
        server = TaskFarmServer(policy=FixedGranularity(4))
        pid = server.submit(
            Problem("one", RangeSumDataManager(4), RangeSumAlgorithm()), now=0.0
        )
        server.register_donor("d0", now=0.0)
        a = server.request_work("d0", now=0.0)
        server.submit_result(
            WorkResult(
                problem_id=pid,
                unit_id=a.unit_id,
                value=sum(range(*a.payload)),
                donor_id="d0",
                compute_seconds=0.5,  # donor-measured, server saw no time pass
                items=a.items,
            ),
            now=0.0,
        )
        m = run_metrics(server.log)
        assert m.problems[pid].units_completed == 1
        assert m.problems[pid].makespan == 0.0
        assert m.donors["d0"].utilization == 1.0  # zero span, real work
        assert m.mean_utilization == 1.0
        h = server.obs.meters.histogram("farm.unit.seconds")
        assert h.count == 1 and h.mean == pytest.approx(0.5)
