"""The multi-core donor worker pool, end to end.

Three layers of coverage:

* **Lifecycle under chaos** — a SIGKILLed donor leaves no orphan worker
  processes (the per-worker watchdog), shutdown is idempotent, and a
  poisoned unit (unpicklable result) fails loudly without wedging the
  pool.
* **Capacity scheduling** — registration advertises slots, the server
  scales lease depth by :meth:`PipelineConfig.depth_for`, and
  ``AdaptiveGranularity`` warm-starts new problems from a donor's
  calibrated capacity.
* **Differential equality** — pooled runs (simulated multi-core
  machines and live threaded donors driving a real spawn pool) assemble
  results bit-identical to serial runs, for both target applications,
  across seeds.

Worker processes cost ~a second each to spawn, so every pooled test in
this module shares one module-scoped :class:`WorkerPool`.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

import pytest

from repro.cluster.local import ThreadCluster
from repro.cluster.sim import MachineSpec, SimCluster, multicore_pool
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.client import DonorClient, InProcessServerPort, WorkerPool
from repro.core.integrity import canonical_digest
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity
from repro.core.server import PipelineConfig, ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager
from tests.test_data_cache import DIFF_SEEDS, dprml_problem, dsearch_problem

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def shared_pool():
    pool = WorkerPool(2)
    yield pool
    pool.shutdown()


class PoisonAlgorithm(Algorithm):
    """Returns an unpicklable value for the slice containing item 13.

    The lambda survives compute fine inside the worker; it is the pool's
    result transport that must fail loudly (and only for that unit).
    """

    def compute(self, payload: Any) -> Any:
        lo, hi = payload
        if lo <= 13 < hi:
            return lambda: None  # pragma: no cover - never called
        return sum(range(lo, hi))

    def cost(self, payload: Any) -> float:
        lo, hi = payload
        return float(hi - lo)


# ---------------------------------------------------------------------------
# The pooled donor loop against a real spawn pool


class TestPooledDonor:
    def test_pooled_run_matches_closed_form(self, shared_pool):
        server = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=60.0)
        pid = server.submit(
            Problem("rangesum", RangeSumDataManager(200), RangeSumAlgorithm()), 0.0
        )
        client = DonorClient(
            "pooled", InProcessServerPort(server), pool=shared_pool
        )
        done = client.run()
        assert server.final_result(pid) == 200 * 199 // 2
        assert done == client.units_done == 40
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.pool.units"] == 40
        assert counters["farm.pool.busy.seconds"] > 0
        assert counters["farm.pool.slot.seconds"] > 0

    def test_injected_pool_survives_run(self, shared_pool):
        """A shared pool is not shut down by the client's finally."""
        server = TaskFarmServer(policy=FixedGranularity(10))
        pid = server.submit(
            Problem("again", RangeSumDataManager(50), RangeSumAlgorithm()), 0.0
        )
        DonorClient("reuser", InProcessServerPort(server), pool=shared_pool).run()
        assert server.final_result(pid) == 50 * 49 // 2
        assert len(shared_pool.worker_pids()) == 2


class TestCapacityScheduling:
    def test_registration_advertises_slots(self):
        server = TaskFarmServer()
        server.register_donor("wide", 0.0, slots=8)
        assert server.donor_state("wide").slots == 8
        server.register_donor("narrow", 0.0)
        assert server.donor_state("narrow").slots == 1

    def test_slots_must_be_positive(self):
        server = TaskFarmServer()
        with pytest.raises(ValueError):
            server.register_donor("bad", 0.0, slots=0)

    def test_depth_scales_with_slots(self):
        config = PipelineConfig(lease_depth=2)
        assert config.depth_for(1) == 2
        assert config.depth_for(4) == 8
        assert PipelineConfig(lease_depth=None).depth_for(4) is None

    def test_pooled_donor_holds_up_to_slots_leases(self):
        """With a depth-1 pipeline config, a slots=4 donor may still
        hold 4 concurrent leases — depth scales per slot."""
        server = TaskFarmServer(
            policy=FixedGranularity(1),
            lease_timeout=60.0,
            pipeline=PipelineConfig(lease_depth=1),
        )
        server.submit(
            Problem("wide", RangeSumDataManager(16), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("quad", 0.0, slots=4)
        grants = []
        while True:
            a = server.request_work("quad", 0.0)
            if a is None:
                break
            grants.append(a)
        assert len(grants) == 4

    def test_adaptive_warm_start_from_capacity(self):
        """A donor calibrated on one problem gets capacity-sized (not
        probe-sized) first units of the next problem."""
        policy = AdaptiveGranularity(
            target_seconds=10.0, probe_items=4, max_items=1000
        )
        server = TaskFarmServer(policy=policy, lease_timeout=600.0)
        server.register_donor("fast", 0.0, slots=4)
        pid1 = server.submit(
            Problem("first", RangeSumDataManager(400), RangeSumAlgorithm()), 0.0
        )
        now = 0.0
        while not server.all_complete():
            a = server.request_work("fast", now)
            assert a is not None
            lo, hi = a.payload
            now += 0.01  # 100 items/sec equivalent per grant
            server.submit_result(
                WorkResult(
                    problem_id=a.problem_id,
                    unit_id=a.unit_id,
                    value=sum(range(lo, hi)),
                    donor_id="fast",
                    compute_seconds=a.items / 100.0,
                    items=a.items,
                ),
                now,
            )
        assert server.final_result(pid1) == 400 * 399 // 2
        assert server.donor_state("fast").capacity_rate() > 0

        server.submit(
            Problem("second", RangeSumDataManager(400), RangeSumAlgorithm()), now
        )
        first = server.request_work("fast", now)
        assert first is not None
        # Warm-started well above the cold probe, capped by the ramp.
        assert first.items > policy.probe_items
        assert first.items <= policy.probe_items * policy.max_growth


# ---------------------------------------------------------------------------
# Lifecycle under chaos (satellite)


class TestPoolLifecycle:
    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        with pytest.raises(RuntimeError):
            pool.submit(
                ("k", None, ()), callback=lambda r: None,
                error_callback=lambda e: None,
            )

    def test_poisoned_result_fails_unit_without_wedging_pool(self, shared_pool):
        server = TaskFarmServer(
            policy=FixedGranularity(5), lease_timeout=60.0, max_unit_attempts=2
        )
        pid = server.submit(
            Problem("poisoned", RangeSumDataManager(40), PoisonAlgorithm()), 0.0
        )
        client = DonorClient(
            "victim", InProcessServerPort(server), pool=shared_pool
        )
        client.run()

        # The unpicklable unit failed loudly (twice: reissue then fail)
        # and took the problem down; the other units still completed.
        assert server.status(pid) is ProblemStatus.FAILED
        assert "Error" in (server.failure_reason(pid) or "")
        assert client.failures == 2
        assert client.units_done >= 1

        # The pool is not wedged: a clean problem through the same pool.
        server2 = TaskFarmServer(policy=FixedGranularity(10))
        pid2 = server2.submit(
            Problem("clean", RangeSumDataManager(60), RangeSumAlgorithm()), 0.0
        )
        DonorClient("after", InProcessServerPort(server2), pool=shared_pool).run()
        assert server2.final_result(pid2) == 60 * 59 // 2

    def test_sigkilled_donor_leaves_no_orphan_workers(self, tmp_path):
        """SIGKILL the donor process mid-unit: the workers' parent-death
        watchdog must reap every worker within its poll window."""
        script = tmp_path / "doomed_donor.py"
        script.write_text(
            """
import time

from repro.core.client import DonorClient, InProcessServerPort, WorkerPool
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from tests.helpers import RangeSumDataManager


class Glacial(Algorithm):
    def compute(self, payload):
        time.sleep(120.0)
        return 0

    def cost(self, payload):
        return 1.0


def main():
    server = TaskFarmServer(policy=FixedGranularity(1), lease_timeout=600.0)
    server.submit(Problem("glacial", RangeSumDataManager(8), Glacial()), 0.0)
    pool = WorkerPool(2)
    print("WORKERS", *pool.worker_pids(), flush=True)
    DonorClient("doomed", InProcessServerPort(server), pool=pool).run()


if __name__ == "__main__":
    main()
"""
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("WORKERS"), f"unexpected output: {line!r}"
            worker_pids = [int(p) for p in line.split()[1:]]
            assert len(worker_pids) == 2
            # Let the donor lease units and the workers start computing.
            time.sleep(0.5)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)

            deadline = time.monotonic() + 8.0
            while time.monotonic() < deadline:
                if all(_process_gone(pid) for pid in worker_pids):
                    break
                time.sleep(0.1)
            survivors = [p for p in worker_pids if not _process_gone(p)]
            assert not survivors, f"orphan workers survived: {survivors}"
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5.0)


def _process_gone(pid: int) -> bool:
    """Dead, or a zombie awaiting reaping by init."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        return stat.rsplit(")", 1)[1].split()[0] == "Z"
    except OSError:
        return True


# ---------------------------------------------------------------------------
# Differential equality: pooled == serial, bit for bit


def _run_sim_cores(problem, cores: int, pipeline: PipelineConfig | None = None):
    machines = [
        MachineSpec(f"m-{i}", speed=1.0, availability=1.0, cores=cores)
        for i in range(3)
    ]
    cluster = SimCluster(
        machines,
        policy=FixedGranularity(3),
        lease_timeout=120.0,
        seed=5,
        pipeline=pipeline,
    )
    pid = cluster.submit(problem)
    report = cluster.run()
    assert report.completed
    return report.results[pid]


class TestSimDifferential:
    """Multi-core simulated machines vs single-core, bit-identical."""

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dsearch_pooled_sim_bit_identical(self, seed):
        serial = _run_sim_cores(dsearch_problem(seed, share=False), cores=1)
        pooled = _run_sim_cores(dsearch_problem(seed, share=False), cores=2)
        assert canonical_digest(pooled) == canonical_digest(serial)

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dprml_pooled_sim_bit_identical(self, seed):
        serial = _run_sim_cores(dprml_problem(seed, share=False), cores=1)
        pooled = _run_sim_cores(dprml_problem(seed, share=False), cores=2)
        assert canonical_digest(pooled) == canonical_digest(serial)

    def test_pipelined_and_pooled_sim_bit_identical(self):
        """The full stack at once: prefetch + multi-core + blob cache."""
        serial = _run_sim_cores(dsearch_problem(3, share=False), cores=1)
        stacked = _run_sim_cores(
            dsearch_problem(3, share=True),
            cores=2,
            pipeline=PipelineConfig.pipelined(),
        )
        assert canonical_digest(stacked) == canonical_digest(serial)

    def test_multicore_pool_preset_completes(self):
        machines = multicore_pool(5, seed=3)
        assert any(m.cores > 1 for m in machines)
        cluster = SimCluster(
            machines, policy=FixedGranularity(3), lease_timeout=120.0, seed=5
        )
        pid = cluster.submit(dsearch_problem(3, share=False))
        report = cluster.run()
        assert report.completed
        assert report.results[pid]


class TestLiveDifferential:
    """Threaded donors driving a real spawn pool vs serial threads."""

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dsearch_threaded_pooled_bit_identical(self, seed, shared_pool):
        serial = _run_threaded(dsearch_problem(seed, share=False))
        pooled = _run_threaded(
            dsearch_problem(seed, share=True), pool=shared_pool
        )
        assert canonical_digest(pooled) == canonical_digest(serial)

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_dprml_threaded_pooled_bit_identical(self, seed, shared_pool):
        serial = _run_threaded(dprml_problem(seed, share=False))
        pooled = _run_threaded(
            dprml_problem(seed, share=True), pool=shared_pool
        )
        assert canonical_digest(pooled) == canonical_digest(serial)


def _run_threaded(problem, pool: WorkerPool | None = None):
    cluster = ThreadCluster(
        workers=2,
        policy=FixedGranularity(3),
        lease_timeout=30.0,
        worker_pool=pool,
    )
    pid = cluster.submit(problem)
    cluster.run()
    return cluster.final_result(pid)


# ---------------------------------------------------------------------------
# Sim-path idle backoff (satellite)


class TestSimIdleBackoff:
    def test_idle_donors_pace_polls_at_stage_barrier(self):
        """When a stage barrier drains the queue, waiting donors poll at
        the idle_poll period — hot polling would show up as orders of
        magnitude more idle polls than the pacing bound allows."""
        trace = WorkloadTrace.staged(
            [[2.0, 4.0, 6.0, 8.0], [2.0, 4.0, 6.0, 8.0]], name="barrier"
        )
        machines = [
            MachineSpec(f"m-{i}", speed=1.0, availability=1.0) for i in range(4)
        ]
        cluster = SimCluster(
            machines,
            policy=FixedGranularity(1),
            lease_timeout=600.0,
            seed=3,
            execute=False,
            idle_poll=5.0,
        )
        cluster.submit(trace_problem(trace))
        report = cluster.run()
        assert report.completed
        counters = cluster.obs.meters.snapshot()["counters"]
        idle = counters.get("farm.pipeline.idle.polls", 0)
        # Early finishers must have idled at the barrier at least once...
        assert idle >= 1
        # ...but each donor polls at most once per idle_poll interval.
        bound = len(machines) * (report.sim_time / cluster.idle_poll + 2)
        assert idle <= bound, f"{idle} idle polls exceeds pacing bound {bound}"
