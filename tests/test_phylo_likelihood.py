"""Tests for alignments, Felsenstein pruning, caching and optimisation."""

import math

import numpy as np
import pytest

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GammaRates, HKY85, JC69
from repro.bio.phylo.optimize import optimize_all_branches, optimize_branch
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.tree import Tree, parse_newick
from repro.bio.seq.sequence import dna

FREQS = np.array([0.35, 0.15, 0.20, 0.30])


def two_taxon_alignment(a: str, b: str) -> SiteAlignment:
    return SiteAlignment.from_sequences([dna("A", a), dna("B", b)])


class TestSiteAlignment:
    def test_pattern_compression(self):
        # Columns: (A,A) x3 and (A,C) x2 -> 2 patterns.
        aln = two_taxon_alignment("AAAAA", "AACCA")
        assert aln.n_sites == 5
        assert aln.n_patterns == 2
        assert aln.weights.sum() == 5

    def test_row_lookup(self):
        aln = two_taxon_alignment("ACGT", "ACGT")
        assert aln.row("A").shape == (aln.n_patterns,)
        with pytest.raises(KeyError):
            aln.row("Z")

    def test_subset_preserves_site_counts(self):
        seqs = [dna("a", "ACGTAC"), dna("b", "ACGTAA"), dna("c", "TTGTAC")]
        aln = SiteAlignment.from_sequences(seqs)
        sub = aln.subset(["a", "c"])
        assert sub.n_taxa == 2
        assert sub.weights.sum() == 6

    def test_validation(self):
        with pytest.raises(ValueError, match="not aligned"):
            SiteAlignment.from_sequences([dna("a", "ACG"), dna("b", "AC")])
        with pytest.raises(ValueError, match="duplicate"):
            SiteAlignment(["x", "x"], np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(ValueError, match="no sites"):
            SiteAlignment(["x"], np.zeros((1, 0), dtype=np.uint8))
        with pytest.raises(ValueError):
            SiteAlignment.from_sequences([])


class TestTwoTaxonClosedForm:
    """L for two taxa under JC69 has an exact formula:
    per matching site pi*(P_same), per differing site pi*(P_diff)."""

    def loglik(self, a, b, t_total):
        aln = two_taxon_alignment(a, b)
        tree = parse_newick(f"(A:{t_total/2},B:{t_total/2});")
        return TreeLikelihood(tree, aln, JC69()).log_likelihood()

    def test_matches_analytic(self):
        a, b = "ACGTACGTAC", "ACGTACGTAA"  # 9 match, 1 differ
        t = 0.4
        # JC69: P(same) = 1/4 + 3/4 e^{-4t/3}; P(specific other base)
        # = 1/4 - 1/4 e^{-4t/3}.
        p_same = 0.25 + 0.75 * math.exp(-4 * t / 3)
        p_diff = 0.25 - 0.25 * math.exp(-4 * t / 3)
        expected = 9 * math.log(0.25 * p_same) + 1 * math.log(0.25 * p_diff)
        assert self.loglik(a, b, t) == pytest.approx(expected, rel=1e-9)

    def test_only_total_path_length_matters(self):
        # Two taxa: likelihood depends on t1 + t2 only.
        aln = two_taxon_alignment("ACGTAC", "ACGTAA")
        t1 = TreeLikelihood(parse_newick("(A:0.1,B:0.3);"), aln, JC69())
        t2 = TreeLikelihood(parse_newick("(A:0.2,B:0.2);"), aln, JC69())
        assert t1.log_likelihood() == pytest.approx(t2.log_likelihood(), rel=1e-10)


class TestPruningInvariants:
    def setup_method(self):
        self.tree = random_yule_tree(8, seed=11)
        self.model = HKY85(2.0, FREQS)
        self.aln = simulate_alignment(self.tree, self.model, 300, seed=4)

    def test_pulley_principle(self):
        """Likelihood is invariant to rerooting (reversible model)."""
        tl = TreeLikelihood(self.tree, self.aln, self.model)
        reference = tl.log_likelihood()
        for node in self.tree.nodes():
            if node.is_leaf or node is self.tree.root:
                continue
            moved = TreeLikelihood(
                self.tree.rerooted(node), self.aln, self.model
            ).log_likelihood()
            assert moved == pytest.approx(reference, rel=1e-9)

    def test_reroot_preserves_splits_and_length(self):
        for node in self.tree.nodes():
            if node.is_leaf or node is self.tree.root:
                continue
            other = self.tree.rerooted(node)
            assert other.splits() == self.tree.splits()
            assert other.total_branch_length() == pytest.approx(
                self.tree.total_branch_length()
            )

    def test_gap_only_alignment_is_certain(self):
        taxa = self.tree.leaf_names()
        matrix = np.full((len(taxa), 5), 4, dtype=np.uint8)  # all unknown
        aln = SiteAlignment(taxa, matrix)
        tl = TreeLikelihood(self.tree, aln, self.model)
        assert tl.log_likelihood() == pytest.approx(0.0, abs=1e-9)

    def test_longer_data_scales_loglik(self):
        aln2 = simulate_alignment(self.tree, self.model, 600, seed=4)
        l1 = TreeLikelihood(self.tree, self.aln, self.model).log_likelihood()
        l2 = TreeLikelihood(self.tree, aln2, self.model).log_likelihood()
        assert l2 < l1 < 0

    def test_scaling_handles_many_taxa_long_branches(self):
        tree = random_yule_tree(40, seed=2, mean_branch=0.5)
        aln = simulate_alignment(tree, JC69(), 100, seed=3)
        ll = TreeLikelihood(tree, aln, JC69()).log_likelihood()
        assert math.isfinite(ll)
        assert ll < 0

    def test_gamma_rates_change_likelihood(self):
        plain = TreeLikelihood(self.tree, self.aln, self.model).log_likelihood()
        gamma = TreeLikelihood(
            self.tree, self.aln, self.model, rates=GammaRates(0.5, 4)
        ).log_likelihood()
        assert gamma != pytest.approx(plain)

    def test_true_model_beats_wrong_model_on_average(self):
        right = TreeLikelihood(self.tree, self.aln, self.model).log_likelihood()
        wrong = TreeLikelihood(self.tree, self.aln, JC69()).log_likelihood()
        assert right > wrong

    def test_missing_taxon_rejected(self):
        bigger = random_yule_tree(9, seed=11)
        with pytest.raises(ValueError, match="missing"):
            TreeLikelihood(bigger, self.aln, self.model)


class TestCaching:
    def setup_method(self):
        self.tree = random_yule_tree(10, seed=7)
        self.model = JC69()
        self.aln = simulate_alignment(self.tree, self.model, 200, seed=8)
        self.tl = TreeLikelihood(self.tree, self.aln, self.model)

    def test_cached_revaluation_matches(self):
        first = self.tl.log_likelihood()
        assert self.tl.log_likelihood() == first

    def test_second_evaluation_does_no_node_work(self):
        self.tl.log_likelihood()
        before = self.tl.node_updates
        self.tl.log_likelihood()
        assert self.tl.node_updates == before

    def test_branch_change_invalidates_only_path(self):
        self.tl.log_likelihood()
        total_nodes = len(self.tree.nodes())
        leaf = self.tree.leaves()[0]
        before = self.tl.node_updates
        self.tl.set_branch_length(leaf, leaf.branch_length * 2)
        self.tl.log_likelihood()
        updated = self.tl.node_updates - before
        assert 0 < updated < total_nodes

    def test_cache_result_equals_fresh_computation(self):
        self.tl.log_likelihood()
        leaf = self.tree.leaves()[3]
        self.tl.set_branch_length(leaf, 0.42)
        cached = self.tl.log_likelihood()
        fresh = TreeLikelihood(self.tree, self.aln, self.model).log_likelihood()
        assert cached == pytest.approx(fresh, rel=1e-12)

    def test_insertion_invalidation(self):
        self.tl.log_likelihood()
        # Grow the alignment: add the new taxon's data first.
        big_tree = random_yule_tree(10, seed=7)
        edge = big_tree.edges()[0]
        # Use an existing taxon name trick: remove a leaf first? Simpler:
        # evaluate on a fresh tree built over a subset then insert the
        # held-out taxon.
        names = self.aln.names
        sub_names = names[:-1]
        held_out = names[-1]
        sub_tree = random_yule_tree(9, seed=3, prefix="x")
        # rename leaves to match subset
        for node, name in zip(sub_tree.leaves(), sub_names):
            node.name = name
        tl = TreeLikelihood(sub_tree, self.aln, self.model)
        tl.log_likelihood()
        v, _leaf = sub_tree.insert_on_edge(sub_tree.edges()[2], held_out)
        tl.invalidate(v)
        grown = tl.log_likelihood()
        fresh = TreeLikelihood(sub_tree, self.aln, self.model).log_likelihood()
        assert grown == pytest.approx(fresh, rel=1e-12)

    def test_negative_branch_rejected(self):
        with pytest.raises(ValueError):
            self.tl.set_branch_length(self.tree.leaves()[0], -0.1)


class TestOptimisation:
    def setup_method(self):
        self.tree = random_yule_tree(6, seed=21)
        self.model = JC69()
        self.aln = simulate_alignment(self.tree, self.model, 400, seed=22)

    def test_optimize_branch_improves_or_holds(self):
        tl = TreeLikelihood(self.tree, self.aln, self.model)
        leaf = self.tree.leaves()[0]
        tl.set_branch_length(leaf, 2.0)  # deliberately bad
        before = tl.log_likelihood()
        after = optimize_branch(tl, leaf)
        assert after >= before

    def test_optimize_root_rejected(self):
        tl = TreeLikelihood(self.tree, self.aln, self.model)
        with pytest.raises(ValueError):
            optimize_branch(tl, self.tree.root)

    def test_optimize_all_branches_monotone(self):
        # Start from uniformly wrong branch lengths.
        for node in self.tree.nodes():
            if node.parent is not None:
                node.branch_length = 0.5
        tl = TreeLikelihood(self.tree, self.aln, self.model)
        start = tl.log_likelihood()
        final = optimize_all_branches(tl, passes=3)
        assert final > start

    def test_optimized_lengths_near_truth(self):
        """With plenty of data, optimisation recovers the generating
        branch lengths reasonably well (sum of error bounded)."""
        true_lengths = {
            id(n): n.branch_length for n in self.tree.nodes() if n.parent
        }
        for node in self.tree.nodes():
            if node.parent is not None:
                node.branch_length = 0.3
        tl = TreeLikelihood(self.tree, self.aln, self.model)
        optimize_all_branches(tl, passes=4)
        errors = [
            abs(n.branch_length - true_lengths[id(n)])
            for n in self.tree.nodes()
            if n.parent
        ]
        assert np.mean(errors) < 0.1
