"""Tests for ``repro-status``: mid-run snapshots, live and simulated.

The acceptance bar for the observability layer: the status command must
render a *mid-run* snapshot from (a) a paused simulation and (b) a real
server over RMI while donors are still working — and the two go through
the same ``render_snapshot`` path.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

import pytest

from repro.cli.status import fetch_snapshot, render_snapshot, status_main
from repro.cluster.local import ServerFacade
from repro.cluster.sim import SimCluster
from repro.cluster.sim.machines import MachineSpec
from repro.core.client import DonorClient
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.rmi import RMIServer, connect
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


def _sim_midrun_snapshot() -> dict[str, Any]:
    cluster = SimCluster(
        [MachineSpec(f"m{i}", speed=1.0 + i) for i in range(3)],
        policy=FixedGranularity(10),
        seed=7,
    )
    cluster.submit(Problem("rangesum", RangeSumDataManager(400), RangeSumAlgorithm()))
    cluster.run(until=50.0)  # pause mid-flight
    snap = cluster.status_snapshot()
    assert not cluster.server.all_complete(), "horizon too late to be mid-run"
    return snap


class TestSimStatus:
    def test_midrun_snapshot_renders(self):
        snap = _sim_midrun_snapshot()
        text = render_snapshot(snap)
        assert "rangesum" in text
        assert "running" in text
        assert "m0" in text and "m2" in text
        assert "farm.units.completed" in text
        assert "farm.unit.seconds" in text

    def test_snapshot_shows_partial_progress(self):
        snap = _sim_midrun_snapshot()
        (problem,) = snap["problems"]
        assert 0.0 < problem["progress"] < 1.0
        assert problem["units_in_flight"] > 0
        counters = snap["meters"]["counters"]
        assert 0 < counters["farm.units.completed"] < 40

    def test_snapshot_is_json_round_trippable(self):
        snap = _sim_midrun_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_from_json_file_mode(self, tmp_path, capsys):
        snap = _sim_midrun_snapshot()
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snap))
        assert status_main(["--from-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "rangesum" in out and "running" in out

    def test_json_dump_mode(self, tmp_path, capsys):
        snap = _sim_midrun_snapshot()
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snap))
        assert status_main(["--from-json", str(path), "--json"]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped["problems"][0]["name"] == "rangesum"


class _SlowRangeSum(Algorithm):
    def __init__(self, delay_per_unit: float = 0.03):
        self.delay = delay_per_unit

    def compute(self, payload):
        lo, hi = payload
        time.sleep(self.delay)
        return sum(range(lo, hi))

    def cost(self, payload) -> float:
        lo, hi = payload
        return float(hi - lo)


class TestLiveStatus:
    def test_midrun_snapshot_over_rmi(self, capsys):
        """A real server on a TCP port, a donor grinding in the
        background, and the status CLI polling mid-run."""
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=60.0)
        facade = ServerFacade(server)
        rmi = RMIServer(obs=server.obs)
        rmi.bind("taskfarm", facade)
        pid = facade.submit(
            Problem("slowsum", RangeSumDataManager(200), _SlowRangeSum())
        )

        def donate():
            proxy = connect(rmi.host, rmi.port, "taskfarm")
            try:
                DonorClient("bg-donor", proxy, idle_sleep=0.01).run()
            finally:
                proxy.close()

        thread = threading.Thread(target=donate, daemon=True)
        thread.start()
        try:
            snap = None
            for _ in range(400):  # wait for genuinely mid-run state
                snap = fetch_snapshot(rmi.host, rmi.port)
                done = snap["meters"]["counters"].get("farm.units.completed", 0)
                if 1 <= done < 20:
                    break
                time.sleep(0.01)
            assert snap is not None
            counters = snap["meters"]["counters"]
            assert 1 <= counters["farm.units.completed"] < 20
            (problem,) = snap["problems"]
            assert problem["status"] == "running"
            assert 0.0 < problem["progress"] < 1.0
            (donor,) = snap["donors"]
            assert donor["donor_id"] == "bg-donor"
            assert donor["units_completed"] >= 1

            # The actual CLI command against the live port.
            code = status_main([f"{rmi.host}:{rmi.port}"])
            assert code == 0
            out = capsys.readouterr().out
            assert "slowsum" in out
            assert "bg-donor" in out
            assert "rmi.calls" in out

            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert facade.final_result(pid) == 200 * 199 // 2
        finally:
            rmi.close()

    def test_json_mode_over_rmi(self, capsys):
        server = TaskFarmServer()
        facade = ServerFacade(server)
        rmi = RMIServer(obs=server.obs)
        rmi.bind("taskfarm", facade)
        try:
            assert status_main([f"{rmi.host}:{rmi.port}", "--json"]) == 0
            dumped = json.loads(capsys.readouterr().out)
            assert dumped["problems"] == [] and dumped["donors"] == []
        finally:
            rmi.close()


def _meters_only_snapshot(counters: dict[str, float]) -> dict[str, Any]:
    return {
        "time": 0.0,
        "problems": [],
        "donors": [],
        "meters": {"counters": counters, "histograms": {}},
    }


def _donor_line(**overrides: Any) -> dict[str, Any]:
    donor = {
        "donor_id": "d0",
        "active": False,
        "idle_seconds": 1.0,
        "units_completed": 3,
        "items_completed": 30,
        "busy_seconds": 2.0,
        "items_per_second": 0.0,
        "utilization": 0.5,
    }
    donor.update(overrides)
    return donor


class TestDerivedRates:
    """The shared zero-denominator guard for every derived-rate line."""

    def test_pool_utilization_renders_ratio(self):
        text = render_snapshot(
            _meters_only_snapshot(
                {"farm.pool.busy.seconds": 2.0, "farm.pool.slot.seconds": 8.0}
            )
        )
        assert "farm.pool.utilization" in text
        assert "25.0%" in text

    def test_pool_utilization_zero_denominator_renders_dash(self):
        # busy seconds recorded but slot seconds absent/zero (e.g. a
        # truncated or hand-edited --from-json snapshot): no crash, a
        # dash instead of a rate.
        text = render_snapshot(
            _meters_only_snapshot({"farm.pool.busy.seconds": 2.0})
        )
        lines = [l for l in text.splitlines() if "farm.pool.utilization" in l]
        assert lines and lines[0].rstrip().endswith("-")

    def test_prefetch_hit_rate_guarded(self):
        text = render_snapshot(
            _meters_only_snapshot(
                {
                    "farm.pipeline.prefetch.hits": 3.0,
                    "farm.pipeline.prefetch.misses": 1.0,
                }
            )
        )
        assert "farm.pipeline.prefetch.hit.rate" in text
        assert "75.0%" in text

    def test_pad_efficiency_guarded(self):
        text = render_snapshot(
            _meters_only_snapshot(
                {
                    "farm.align.cells.effective": 50.0,
                    "farm.align.cells.padded": 200.0,
                }
            )
        )
        assert "farm.align.pad.efficiency" in text
        assert "25.0%" in text


class TestSlotsColumn:
    def test_donor_slots_rendered(self):
        snap = _meters_only_snapshot({})
        snap["donors"] = [_donor_line(donor_id="octo", slots=8)]
        text = render_snapshot(snap)
        assert "slots" in text
        row = [l for l in text.splitlines() if "octo" in l][0]
        assert " 8 " in row or row.split()[1] == "8"

    def test_old_snapshot_without_slots_defaults_to_one(self):
        # Snapshots dumped before the worker pool existed carry no
        # "slots" key; rendering must not KeyError.
        snap = _meters_only_snapshot({})
        snap["donors"] = [_donor_line(donor_id="legacy")]
        row = [l for l in render_snapshot(snap).splitlines() if "legacy" in l][0]
        assert row.split()[1] == "1"


def _tenant_line(**overrides: Any) -> dict[str, Any]:
    tenant = {
        "tenant": "alice",
        "weight": 1.0,
        "max_running": 4,
        "max_pending": 16,
        "running": 1,
        "pending": 0,
        "items_delivered": 100,
        "jobs_done": 2,
        "jobs_failed": 0,
        "jobs_cancelled": 0,
        "rejected": 0,
        "queue_wait_total": 0.0,
        "queue_wait_count": 0,
        "queue_wait_max": 0.0,
    }
    tenant.update(overrides)
    return tenant


class TestGatewaySection:
    """Per-tenant table and share lines for gateway snapshots."""

    def _gateway_snapshot(self) -> dict[str, Any]:
        snap = _meters_only_snapshot(
            {
                "farm.problems.cancelled": 1.0,
                "farm.gateway.jobs.submitted": 5.0,
                "farm.gateway.jobs.rejected": 2.0,
            }
        )
        snap["gateway"] = {
            "jobs": {"queued": 1, "running": 2, "done": 2, "failed": 0,
                     "cancelled": 1},
            "items_delivered_total": 400,
            "tenants": [
                _tenant_line(
                    queue_wait_total=6.0, queue_wait_count=2, queue_wait_max=4.0
                ),
                _tenant_line(
                    tenant="bob", weight=3.0, items_delivered=300, rejected=2
                ),
            ],
        }
        return snap

    def test_tenant_table_and_share_lines(self):
        text = render_snapshot(self._gateway_snapshot())
        assert "gateway: 1 queued, 2 running, 2 done" in text
        alice = [l for l in text.splitlines() if l.strip().startswith("alice")][0]
        assert "3.0s" in alice  # queue_wait_total / queue_wait_count
        bob = [l for l in text.splitlines() if l.strip().startswith("bob")][0]
        assert bob.split()[-4] == "2"  # rejected column
        # Weight 1:3 split delivered 100:300 — share lines hit target.
        assert "share alice (target 25%)" in text
        assert "share bob (target 75%)" in text
        assert "25.0%" in text and "75.0%" in text
        # Gateway counters surface in the meter summary.
        assert "farm.gateway.jobs.submitted" in text
        assert "farm.gateway.jobs.rejected" in text
        assert "farm.problems.cancelled" in text

    def test_share_lines_guard_zero_delivery(self):
        # A gateway that admitted jobs but delivered nothing yet: share
        # lines render a dash through the shared guard, no crash.
        snap = self._gateway_snapshot()
        snap["gateway"]["items_delivered_total"] = 0
        for tenant in snap["gateway"]["tenants"]:
            tenant["items_delivered"] = 0
        text = render_snapshot(snap)
        share_lines = [
            l for l in text.splitlines() if l.strip().startswith("share ")
        ]
        assert len(share_lines) == 2
        assert all(l.rstrip().endswith("-") for l in share_lines)

    def test_old_snapshot_without_gateway_renders(self):
        # Pre-gateway snapshots carry no "gateway" key at all.
        text = render_snapshot(_meters_only_snapshot({}))
        assert "gateway:" not in text

    def test_sim_gateway_snapshot_round_trips_through_json(self, tmp_path, capsys):
        from repro.core.gateway import TenantConfig

        cluster = SimCluster(
            [MachineSpec(f"m{i}", speed=1.0 + i) for i in range(3)],
            policy=FixedGranularity(10),
            seed=7,
            tenants=[
                TenantConfig("alice", weight=1.0),
                TenantConfig("bob", weight=2.0),
            ],
        )
        cluster.submit_job(
            "alice",
            Problem("rangesum", RangeSumDataManager(400), RangeSumAlgorithm()),
        )
        cluster.run(until=50.0)
        snap = cluster.status_snapshot()
        assert json.loads(json.dumps(snap)) == snap
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snap))
        assert status_main(["--from-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "gateway:" in out
        assert "alice" in out and "bob" in out
        assert "share alice" in out


class TestArgumentHandling:
    def test_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit):
            status_main([])
        path = tmp_path / "s.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            status_main(["host:1", "--from-json", str(path)])

    def test_rejects_bad_address(self):
        with pytest.raises(SystemExit):
            status_main(["localhost"])
        with pytest.raises(SystemExit):
            status_main(["localhost:notaport"])
