"""Tests for the diurnal lab-availability model."""

import pytest

from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.cluster.sim.diurnal import (
    DAY_SECONDS,
    DiurnalProfile,
    diurnal_pool,
    diurnal_sessions,
)
from repro.cluster.sim.machines import MachineSpec
from repro.cluster.sim.trace import WorkloadTrace, trace_problem
from repro.core.scheduler import AdaptiveGranularity


class TestProfile:
    def test_availability_by_time_of_day(self):
        profile = DiurnalProfile(
            work_start=9 * 3600, work_end=18 * 3600,
            busy_availability=0.3, idle_availability=0.9,
        )
        assert profile.availability_at(3 * 3600) == 0.9     # night
        assert profile.availability_at(12 * 3600) == 0.3    # working hours
        assert profile.availability_at(20 * 3600) == 0.9    # evening
        # Next day, same shape.
        assert profile.availability_at(DAY_SECONDS + 12 * 3600) == 0.3

    def test_mean_availability(self):
        profile = DiurnalProfile(
            work_start=0.0, work_end=DAY_SECONDS / 2,
            busy_availability=0.2, idle_availability=1.0,
        )
        assert profile.mean_availability() == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(work_start=10.0, work_end=5.0)
        with pytest.raises(ValueError):
            DiurnalProfile(busy_availability=0.0)
        with pytest.raises(ValueError):
            DiurnalProfile(idle_availability=1.5)


class TestSessions:
    def test_cover_horizon_without_overlap(self):
        profile = DiurnalProfile()
        horizon = 2.5 * DAY_SECONDS
        intervals = diurnal_sessions(profile, horizon)
        assert intervals[0][0] == 0.0
        assert intervals[-1][1] == horizon
        for (s1, e1, _), (s2, _e2, _) in zip(intervals, intervals[1:]):
            assert e1 == s2  # contiguous
        total = sum(e - s for s, e, _a in intervals)
        assert total == pytest.approx(horizon)

    def test_availability_labels(self):
        profile = DiurnalProfile(busy_availability=0.25, idle_availability=0.75)
        intervals = diurnal_sessions(profile, DAY_SECONDS)
        labels = {a for _s, _e, a in intervals}
        assert labels == {0.25, 0.75}

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_sessions(DiurnalProfile(), 0.0)


class TestDiurnalPool:
    def test_expands_to_shift_specs(self):
        pool = homogeneous_pool(3)
        expanded = diurnal_pool(pool, DiurnalProfile(), horizon=2 * DAY_SECONDS)
        assert len(expanded) == 6
        ids = {m.machine_id for m in expanded}
        assert "pc-000@day" in ids and "pc-000@night" in ids
        day = next(m for m in expanded if m.machine_id == "pc-000@day")
        night = next(m for m in expanded if m.machine_id == "pc-000@night")
        assert day.availability < night.availability
        # A day spec is only present during working hours.
        assert day.present_at(12 * 3600)
        assert not day.present_at(3 * 3600)
        assert night.present_at(3 * 3600)

    def test_rejects_churned_input(self):
        spec = MachineSpec("m", sessions=((0.0, 10.0),))
        with pytest.raises(ValueError, match="churnless"):
            diurnal_pool([spec], DiurnalProfile(), horizon=DAY_SECONDS)

    def test_simulation_runs_faster_at_night(self):
        """A workload submitted at night outruns one during the day."""
        profile = DiurnalProfile(busy_availability=0.2, idle_availability=1.0)
        pool = diurnal_pool(homogeneous_pool(8), profile, horizon=10 * DAY_SECONDS)

        def makespan(submit_at):
            cluster = SimCluster(
                pool,
                policy=AdaptiveGranularity(target_seconds=300.0),
                lease_timeout=4 * 3600.0,
                seed=3,
                execute=False,
            )
            pid = cluster.submit(
                trace_problem(WorkloadTrace.single_stage([60.0] * 400)),
                at=submit_at,
            )
            report = cluster.run()
            assert report.completed
            return report.makespans[pid]

        at_night = makespan(20 * 3600.0)   # 8 pm: labs empty
        by_day = makespan(9.5 * 3600.0)    # 9:30 am: labs busy
        assert at_night < by_day
