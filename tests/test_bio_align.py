"""Tests for scoring schemes and the alignment algorithms.

The vectorised kernels are validated against the pure-Python reference
implementation over random inputs (property tests) and against
hand-computed scores on small cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.align import (
    banded_global_score,
    blosum62,
    dna_scheme,
    global_align,
    local_align,
    needleman_wunsch_score,
    pam250,
    smith_waterman_score,
)
from repro.bio.align.hits import Hit, TopK, merge_topk
from repro.bio.align.scoring import scheme_by_name
from repro.bio.seq import DNA, PROTEIN
from repro.bio.seq.sequence import dna, protein

SIMPLE = dna_scheme(match=1.0, mismatch=-1.0, gap_open=0.0, gap_extend=-1.0)
AFFINE = dna_scheme(match=2.0, mismatch=-3.0, gap_open=-5.0, gap_extend=-2.0)


class TestScoringSchemes:
    def test_dna_scheme_values(self):
        s = dna_scheme(match=5, mismatch=-4)
        assert s.score(0, 0) == 5
        assert s.score(0, 3) == -4
        assert s.score(0, DNA.unknown_code) == 0

    def test_dna_scheme_validation(self):
        with pytest.raises(ValueError):
            dna_scheme(match=-1)
        with pytest.raises(ValueError):
            dna_scheme(mismatch=1)
        with pytest.raises(ValueError):
            dna_scheme(gap_open=1)

    def test_blosum62_known_values(self):
        b = blosum62()
        aa = {letter: i for i, letter in enumerate(PROTEIN.letters)}
        assert b.score(aa["W"], aa["W"]) == 11
        assert b.score(aa["A"], aa["A"]) == 4
        assert b.score(aa["C"], aa["C"]) == 9
        assert b.score(aa["A"], aa["R"]) == -1
        assert b.score(aa["W"], aa["D"]) == -4
        assert b.score(aa["I"], aa["V"]) == 3

    def test_pam250_known_values(self):
        p = pam250()
        aa = {letter: i for i, letter in enumerate(PROTEIN.letters)}
        assert p.score(aa["W"], aa["W"]) == 17
        assert p.score(aa["C"], aa["C"]) == 12
        assert p.score(aa["F"], aa["Y"]) == 7
        assert p.score(aa["W"], aa["C"]) == -8

    def test_matrices_symmetric(self):
        # The constructor validates symmetry; building without error is
        # itself the check, but assert explicitly for clarity.
        for scheme in (blosum62(), pam250(), dna_scheme()):
            assert np.allclose(scheme.matrix, scheme.matrix.T)

    def test_scheme_by_name(self):
        assert scheme_by_name("BLOSUM62").name == "blosum62"
        assert scheme_by_name("dna").name == "dna"
        with pytest.raises(ValueError, match="unknown scoring scheme"):
            scheme_by_name("blosum999")

    def test_profile_shape(self):
        seq = dna("q", "ACGT")
        prof = SIMPLE.profile(seq.codes)
        assert prof.shape == (4, DNA.size + 1)
        assert prof[0, 0] == 1.0  # A vs A


class TestNeedlemanWunsch:
    def test_identical_sequences(self):
        a = dna("a", "ACGTACGT")
        assert needleman_wunsch_score(a, a, AFFINE) == 16.0

    def test_single_mismatch(self):
        a = dna("a", "ACGT")
        b = dna("b", "ACTT")
        assert needleman_wunsch_score(a, b, AFFINE) == 2 + 2 - 3 + 2

    def test_gap_cheaper_than_mismatches(self):
        # Deleting one residue: open + 1*extend = -7 vs mismatch chain.
        a = dna("a", "AAAA")
        b = dna("b", "AAA")
        assert needleman_wunsch_score(a, b, AFFINE) == 3 * 2 - 5 - 2

    def test_affine_gap_run(self):
        # One gap of length 3 costs open + 3*extend, not 3 opens.
        a = dna("a", "AAATTTAAA")
        b = dna("b", "AAAAAA")
        expected = 6 * 2 + (-5 - 3 * 2)
        assert needleman_wunsch_score(a, b, AFFINE) == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            needleman_wunsch_score(dna("a", "A")[0:0], dna("b", "A"), AFFINE)

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(ValueError, match="alphabet"):
            needleman_wunsch_score(protein("p", "ARND"), dna("d", "ACGT"), AFFINE)

    def test_symmetric(self):
        a = dna("a", "ACGTTGCA")
        b = dna("b", "AGGTTTCA")
        assert needleman_wunsch_score(a, b, AFFINE) == needleman_wunsch_score(
            b, a, AFFINE
        )


class TestSmithWaterman:
    def test_perfect_substring(self):
        a = dna("a", "CCCC")
        b = dna("b", "TTTTCCCCTTTT")
        assert smith_waterman_score(a, b, AFFINE) == 8.0

    def test_no_similarity_scores_zero(self):
        scheme = dna_scheme(match=1, mismatch=-10, gap_open=-10, gap_extend=-10)
        a = dna("a", "AAAA")
        b = dna("b", "TTTT")
        assert smith_waterman_score(a, b, scheme) == 0.0

    def test_local_at_least_global(self):
        a = dna("a", "ACGTGGGG")
        b = dna("b", "TTTTACGT")
        assert smith_waterman_score(a, b, AFFINE) >= needleman_wunsch_score(
            a, b, AFFINE
        )

    def test_conserved_domain_detected(self):
        domain = "ACGTACGTGGCCAATT"
        a = dna("a", "TTGACA" + domain + "CAGTGA")
        b = dna("b", "GGGGGG" + domain + "AAAAAA")
        assert smith_waterman_score(a, b, AFFINE) >= 2 * len(domain)


class TestBanded:
    def test_wide_band_equals_full_nw(self):
        a = dna("a", "ACGTTGCAACGT")
        b = dna("b", "ACGATGCAACG")
        full = needleman_wunsch_score(a, b, AFFINE)
        assert banded_global_score(a, b, AFFINE, band=len(a)) == full

    def test_narrow_band_is_lower_bound(self):
        a = dna("a", "ACGT" + "T" * 20 + "ACGT")
        b = dna("b", "ACGT" + "ACGT")
        full = needleman_wunsch_score(a, b, AFFINE)
        banded = banded_global_score(a, b, AFFINE, band=2)
        assert banded <= full

    def test_band_auto_widens_for_length_difference(self):
        a = dna("a", "A" * 50)
        b = dna("b", "A" * 10)
        score = banded_global_score(a, b, AFFINE, band=0)
        assert score == 10 * 2 + (-5 - 40 * 2)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_global_score(dna("a", "AC"), dna("b", "AC"), AFFINE, band=-1)


class TestTraceback:
    def test_global_alignment_strings(self):
        a = dna("a", "ACGT")
        b = dna("b", "AGT")
        aln = global_align(a, b, AFFINE)
        assert aln.score == needleman_wunsch_score(a, b, AFFINE)
        assert aln.query_aligned.replace("-", "") == "ACGT"
        assert aln.subject_aligned.replace("-", "") == "AGT"
        assert len(aln.query_aligned) == len(aln.subject_aligned)

    def test_local_alignment_extracts_domain(self):
        domain = "ACGTACGTGG"
        a = dna("a", "TTTTTT" + domain)
        b = dna("b", domain + "CCCCCC")
        aln = local_align(a, b, AFFINE)
        assert aln.query_aligned == domain
        assert aln.subject_aligned == domain
        assert aln.identity == 1.0
        assert aln.query_start == 6
        assert aln.subject_start == 0

    def test_identity_and_gaps(self):
        aln = global_align(dna("a", "ACGT"), dna("b", "AC"), AFFINE)
        assert aln.gaps == 2

    def test_pretty_renders(self):
        aln = global_align(dna("a", "ACGTACGT"), dna("b", "ACGTACGT"), AFFINE)
        text = aln.pretty(width=4)
        assert "score=16.0" in text
        assert "||||" in text

    def test_mismatched_aligned_lengths_rejected(self):
        from repro.bio.align.traceback import Alignment

        with pytest.raises(ValueError):
            Alignment("q", "s", 0.0, "AC-", "AC")


@st.composite
def _dna_pair(draw):
    q = draw(st.text(alphabet="ACGT", min_size=1, max_size=30))
    s = draw(st.text(alphabet="ACGT", min_size=1, max_size=30))
    return dna("q", q), dna("s", s)


class TestKernelAgainstReference:
    """The vectorised kernel must agree with the pure-Python reference."""

    @settings(max_examples=60, deadline=None)
    @given(_dna_pair())
    def test_global_scores_match(self, pair):
        q, s = pair
        assert needleman_wunsch_score(q, s, AFFINE) == pytest.approx(
            global_align(q, s, AFFINE).score
        )

    @settings(max_examples=60, deadline=None)
    @given(_dna_pair())
    def test_local_scores_match(self, pair):
        q, s = pair
        assert smith_waterman_score(q, s, AFFINE) == pytest.approx(
            local_align(q, s, AFFINE).score
        )

    @settings(max_examples=40, deadline=None)
    @given(_dna_pair())
    def test_local_dominates_global(self, pair):
        q, s = pair
        assert (
            smith_waterman_score(q, s, AFFINE)
            >= needleman_wunsch_score(q, s, AFFINE) - 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(_dna_pair())
    def test_score_symmetry(self, pair):
        q, s = pair
        assert needleman_wunsch_score(q, s, AFFINE) == pytest.approx(
            needleman_wunsch_score(s, q, AFFINE)
        )
        assert smith_waterman_score(q, s, AFFINE) == pytest.approx(
            smith_waterman_score(s, q, AFFINE)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=40))
    def test_self_alignment_is_max(self, text):
        seq = dna("x", text)
        self_score = needleman_wunsch_score(seq, seq, AFFINE)
        assert self_score == 2.0 * len(text)
        assert smith_waterman_score(seq, seq, AFFINE) == self_score


class TestHits:
    def h(self, subject, score):
        return Hit("q", subject, score)

    def test_topk_keeps_best(self):
        top = TopK(2)
        top.extend([self.h("a", 1.0), self.h("b", 5.0), self.h("c", 3.0)])
        assert [x.subject_id for x in top.best()] == ["b", "c"]

    def test_topk_tiebreak_by_subject_id(self):
        top = TopK(2)
        top.extend([self.h("z", 5.0), self.h("a", 5.0), self.h("m", 5.0)])
        assert [x.subject_id for x in top.best()] == ["a", "m"]

    def test_offer_returns_retention(self):
        top = TopK(1)
        assert top.offer(self.h("a", 1.0))
        assert top.offer(self.h("b", 2.0))
        assert not top.offer(self.h("c", 0.5))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_merge_topk_order_independent(self):
        hits = [self.h(f"s{i:02d}", float(i % 7)) for i in range(30)]
        merged_a = merge_topk(5, hits[:10], hits[10:20], hits[20:])
        merged_b = merge_topk(5, hits[20:], hits[:10], hits[10:20])
        assert merged_a == merged_b
        assert len(merged_a) == 5
        assert merged_a[0].score == 6.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 99), st.floats(0, 100)),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 10),
        st.integers(1, 5),
    )
    def test_merge_equals_global_sort(self, raw, k, splits):
        hits = [Hit("q", f"s{sid:03d}", score) for sid, score in raw]
        # duplicate subject ids are possible; keep them (TopK only orders)
        expected = sorted(hits, key=Hit.sort_key)[:k]
        chunk = max(1, len(hits) // splits)
        parts = [hits[i : i + chunk] for i in range(0, len(hits), chunk)]
        assert merge_topk(k, *parts) == expected
