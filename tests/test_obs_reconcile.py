"""End-of-run reconciliation: streaming meters == post-hoc metrics.

The meters are the live instrument panel; the event log is the flight
recorder.  They are updated at the same program points, so at the end
of any run — simulated or live, calm or churning — the counter totals
must equal the event-log-derived :func:`repro.core.metrics.run_metrics`
*exactly*, not approximately.
"""

from __future__ import annotations

import time

from repro.cluster.local import ThreadCluster
from repro.cluster.sim import SimCluster
from repro.cluster.sim.machines import MachineSpec
from repro.core.metrics import run_metrics
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity
from repro.core.server import TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import ManualClock, RangeSumAlgorithm, RangeSumDataManager


def assert_reconciles(server) -> None:
    """Meter totals must equal event-log totals, field for field."""
    counters = server.obs.meters.snapshot()["counters"]
    m = run_metrics(server.log)
    assert counters["farm.units.completed"] == m.total_units_completed
    assert counters["farm.items.completed"] == m.total_items_completed
    assert counters["farm.units.requeued"] == m.total_units_requeued
    assert counters["farm.bytes.in"] == m.total_bytes_in
    assert counters["farm.bytes.out"] == m.total_bytes_out
    assert counters["farm.units.issued"] == sum(
        p.units_issued for p in m.problems.values()
    )
    assert counters["farm.units.duplicate"] + counters["farm.units.stale"] == sum(
        p.duplicate_results for p in m.problems.values()
    )
    assert counters["farm.problems.submitted"] == len(m.problems)
    # And the per-unit histogram saw exactly the completed units.
    assert server.obs.meters.histogram("farm.unit.seconds").count == (
        m.total_units_completed
    )


class TestSimReconciliation:
    def test_calm_run(self):
        cluster = SimCluster(
            [MachineSpec(f"m{i}", speed=1.0 + 0.5 * i) for i in range(4)],
            policy=AdaptiveGranularity(target_seconds=10.0),
            seed=5,
        )
        cluster.submit(Problem("a", RangeSumDataManager(500), RangeSumAlgorithm()))
        cluster.submit(Problem("b", RangeSumDataManager(300), RangeSumAlgorithm()))
        assert cluster.run().completed
        assert_reconciles(cluster.server)

    def test_churning_run_with_requeues(self):
        """Machines leave mid-compute; leases expire; units reissue.
        The books must still balance to the cent."""
        machines = [
            MachineSpec("steady", speed=1.0),
            # Joins late, leaves early — abandons whatever it holds.
            MachineSpec("flaky1", speed=0.4, sessions=((5.0, 60.0), (200.0, 260.0))),
            MachineSpec("flaky2", speed=0.3, sessions=((0.0, 45.0),)),
        ]
        cluster = SimCluster(
            machines,
            policy=FixedGranularity(25),
            lease_timeout=30.0,
            seed=9,
        )
        cluster.submit(Problem("sum", RangeSumDataManager(600), RangeSumAlgorithm()))
        report = cluster.run()
        assert report.completed
        counters = cluster.server.obs.meters.snapshot()["counters"]
        assert counters["farm.units.requeued"] > 0, (
            "churn scenario produced no requeues; scenario needs retuning"
        )
        assert_reconciles(cluster.server)


class _SlowRangeSum(Algorithm):
    """RangeSum that outlives a short lease, forcing live requeues."""

    def __init__(self, delay: float):
        self.delay = delay

    def compute(self, payload):
        lo, hi = payload
        time.sleep(self.delay)
        return sum(range(lo, hi))

    def cost(self, payload) -> float:
        lo, hi = payload
        return float(hi - lo)


class TestLiveReconciliation:
    def test_threadcluster_with_expiring_leases(self):
        """A real wall-clock run where every unit overruns its lease:
        expiries, requeues and duplicate results all occur, and the
        meters still reconcile exactly."""
        cluster = ThreadCluster(
            workers=3,
            policy=FixedGranularity(10),
            lease_timeout=0.02,
            idle_sleep=0.001,
        )
        cluster.submit(Problem("slow", RangeSumDataManager(80), _SlowRangeSum(0.05)))
        cluster.run()
        counters = cluster.server.obs.meters.snapshot()["counters"]
        assert counters["farm.units.completed"] > 0
        assert counters["farm.units.requeued"] > 0, (
            "leases never expired; timing constants need retuning"
        )
        assert_reconciles(cluster.server)

    def test_manual_clock_donor_churn(self):
        """Deterministic churn: a donor takes a unit and deregisters
        without returning it; a second donor cleans up."""
        server = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=1e9)
        clock = ManualClock()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(40), RangeSumAlgorithm()), clock()
        )
        server.register_donor("quitter", clock())
        held = server.request_work("quitter", clock())
        assert held is not None
        clock.advance(1.0)
        server.deregister_donor("quitter", clock())  # requeues the held unit

        server.register_donor("steady", clock())
        while not server.all_complete():
            a = server.request_work("steady", clock())
            clock.advance(1.0)
            server.submit_result(
                WorkResult(
                    problem_id=pid,
                    unit_id=a.unit_id,
                    value=sum(range(*a.payload)),
                    donor_id="steady",
                    compute_seconds=1.0,
                    items=a.items,
                ),
                clock(),
            )
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.units.requeued"] == 1
        assert server.final_result(pid) == 40 * 39 // 2
        assert_reconciles(server)
