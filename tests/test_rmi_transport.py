"""Integration tests for the TCP transport, RMI server/proxy and the
bulk data channel — all over real localhost sockets."""

import threading

import pytest

from repro.rmi import (
    DataChannelServer,
    RemoteError,
    RMIError,
    RMIServer,
    connect,
    fetch_data,
    push_data,
)
from repro.rmi.transport import TransportServer, dial


class EchoHandler:
    """Transport handler echoing every object back."""

    def __call__(self, fsock):
        while True:
            fsock.send_obj(fsock.recv_obj())


class Calculator:
    """A remote object for the RMI tests."""

    def __init__(self):
        self.calls = 0

    def add(self, a, b):
        self.calls += 1
        return a + b

    def fail(self):
        raise ValueError("deliberate failure")

    def _secret(self):  # pragma: no cover - must never execute remotely
        raise AssertionError("private method invoked remotely")


class TestTransport:
    def test_echo_roundtrip(self):
        with TransportServer(EchoHandler()) as server:
            with dial(server.host, server.port) as fsock:
                for obj in [1, "two", {"three": 3}, list(range(100))]:
                    fsock.send_obj(obj)
                    assert fsock.recv_obj() == obj

    def test_many_sequential_connections(self):
        with TransportServer(EchoHandler()) as server:
            for i in range(10):
                with dial(server.host, server.port) as fsock:
                    fsock.send_obj(i)
                    assert fsock.recv_obj() == i

    def test_concurrent_connections(self):
        with TransportServer(EchoHandler()) as server:
            errors = []

            def worker(n):
                try:
                    with dial(server.host, server.port) as fsock:
                        for i in range(20):
                            fsock.send_obj((n, i))
                            assert fsock.recv_obj() == (n, i)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []

    def test_large_object(self):
        with TransportServer(EchoHandler()) as server:
            with dial(server.host, server.port) as fsock:
                blob = b"x" * (4 << 20)
                fsock.send_obj(blob)
                assert fsock.recv_obj() == blob


class TestRMI:
    def test_remote_call(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with connect(server.host, server.port, "calc") as calc:
                assert calc.add(2, 3) == 5
                assert calc.add("a", "b") == "ab"

    def test_remote_exception_propagates(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with connect(server.host, server.port, "calc") as calc:
                with pytest.raises(RemoteError, match="deliberate failure") as info:
                    calc.fail()
                assert info.value.exc_type == "ValueError"
                assert "fail" in info.value.remote_traceback

    def test_unknown_object(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with connect(server.host, server.port, "nope") as proxy:
                with pytest.raises(RemoteError, match="no remote object"):
                    proxy.add(1, 2)

    def test_unknown_method(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with connect(server.host, server.port, "calc") as calc:
                with pytest.raises(RemoteError, match="no remote method"):
                    calc.subtract(1, 2)

    def test_private_method_blocked(self):
        # Registry-level check: craft a request naming a private method.
        from repro.rmi.registry import CallRequest, RemoteObjectRegistry

        registry = RemoteObjectRegistry()
        registry.bind("calc", Calculator())
        response = registry.dispatch(CallRequest("calc", "_secret", (), {}))
        assert not response.ok
        assert response.exc_type == "AttributeError"

    def test_state_persists_across_calls(self):
        calc = Calculator()
        with RMIServer() as server:
            server.bind("calc", calc)
            with connect(server.host, server.port, "calc") as proxy:
                for _ in range(5):
                    proxy.add(1, 1)
        assert calc.calls == 5

    def test_kwargs_pass_through(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with connect(server.host, server.port, "calc") as calc:
                assert calc.add(a=10, b=20) == 30

    def test_registry_bind_conflict(self):
        with RMIServer() as server:
            server.bind("calc", Calculator())
            with pytest.raises(KeyError):
                server.bind("calc", Calculator())
            server.registry.rebind("calc", Calculator())  # rebind allowed


class TestDataChannel:
    def test_fetch(self):
        with DataChannelServer() as dcs:
            dcs.store("db", b"ACGT" * 1000)
            data = fetch_data(dcs.host, dcs.port, "db")
            assert data == b"ACGT" * 1000

    def test_push_then_fetch(self):
        with DataChannelServer() as dcs:
            payload = bytes(range(256)) * 512
            push_data(dcs.host, dcs.port, "results", payload)
            assert dcs.get("results") == payload
            assert fetch_data(dcs.host, dcs.port, "results") == payload

    def test_missing_key(self):
        with DataChannelServer() as dcs:
            with pytest.raises(RMIError, match="no blob"):
                fetch_data(dcs.host, dcs.port, "ghost")

    def test_large_transfer(self):
        with DataChannelServer() as dcs:
            blob = bytes(17) * (3 << 20)  # ~3 MiB, non-trivial chunk count
            dcs.store("big", blob)
            assert fetch_data(dcs.host, dcs.port, "big") == blob

    def test_empty_blob(self):
        with DataChannelServer() as dcs:
            dcs.store("empty", b"")
            assert fetch_data(dcs.host, dcs.port, "empty") == b""

    def test_keys_and_delete(self):
        with DataChannelServer() as dcs:
            dcs.store("a", b"1")
            dcs.store("b", b"2")
            assert dcs.keys() == ["a", "b"]
            dcs.delete("a")
            assert dcs.keys() == ["b"]
