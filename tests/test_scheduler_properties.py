"""Property-based tests for the adaptive granularity policy.

These pin the scheduler invariants the rest of the farm relies on:

* a unit is never smaller than the policy minimum (or larger than the
  maximum),
* a faster donor never receives a *smaller* unit than a slower one with
  the same history,
* the ramp cap bounds growth between consecutive units, and
* the server never hands out more items than remain in the problem.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Problem
from repro.core.scheduler import AdaptiveGranularity, DonorState
from repro.core.server import TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager

#: (items, seconds) observation pairs a donor might report.
observations = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    ),
    max_size=8,
)

policies = st.builds(
    AdaptiveGranularity,
    target_seconds=st.floats(min_value=0.1, max_value=600.0),
    probe_items=st.integers(min_value=1, max_value=100),
    min_items=st.integers(min_value=1, max_value=50),
    max_items=st.integers(min_value=1000, max_value=100_000),
    alpha=st.floats(min_value=0.05, max_value=1.0),
    max_growth=st.floats(min_value=1.1, max_value=16.0),
)


def _donor_with_history(policy: AdaptiveGranularity, history) -> DonorState:
    donor = DonorState("d", registered_at=0.0, last_seen=0.0)
    model = donor.perf_for(1, alpha=policy.alpha)
    for items, seconds in history:
        model.observe(items, seconds)
    return donor


class TestItemsForBounds:
    @given(policy=policies, history=observations)
    @settings(max_examples=200, deadline=None)
    def test_within_policy_bounds(self, policy, history):
        donor = _donor_with_history(policy, history)
        items = policy.items_for(donor, 1)
        assert items >= min(policy.min_items, policy.probe_items)
        assert items <= policy.max_items

    @given(policy=policies)
    @settings(max_examples=50, deadline=None)
    def test_uncalibrated_donor_gets_probe(self, policy):
        donor = DonorState("d", registered_at=0.0, last_seen=0.0)
        assert policy.items_for(donor, 1) == policy.probe_items

    @given(policy=policies, history=observations)
    @settings(max_examples=200, deadline=None)
    def test_ramp_cap_bounds_growth(self, policy, history):
        donor = _donor_with_history(policy, history)
        model = donor.perf_for(1, alpha=policy.alpha)
        items = policy.items_for(donor, 1)
        if model.calibrated:
            cap = max(policy.probe_items, model.last_items) * policy.max_growth
            assert items <= cap


class TestSpeedMonotonicity:
    @given(
        policy=policies,
        items=st.integers(min_value=1, max_value=10_000),
        fast_seconds=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
        slowdown=st.floats(min_value=1.0, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_faster_donor_never_gets_smaller_unit(
        self, policy, items, fast_seconds, slowdown
    ):
        """Same history shape, different speeds: the donor that did the
        same work in less time gets at least as many items next."""
        fast = _donor_with_history(policy, [(items, fast_seconds)])
        slow = _donor_with_history(policy, [(items, fast_seconds * slowdown)])
        assert policy.items_for(fast, 1) >= policy.items_for(slow, 1)

    @given(policy=policies, items=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_sizing_targets_duration(self, policy, items):
        """A calibrated unramped donor's unit approximates rate × target."""
        donor = _donor_with_history(policy, [(items, 1.0)])  # rate = items/s
        expected = math.ceil(items * policy.target_seconds)
        cap = max(policy.probe_items, items) * policy.max_growth
        want = int(min(policy.max_items, cap, max(policy.min_items, expected)))
        assert policy.items_for(donor, 1) == want


class TestNeverExceedsRemainingWork:
    @given(
        n=st.integers(min_value=1, max_value=400),
        target=st.floats(min_value=0.5, max_value=120.0),
        speed=st.floats(min_value=0.01, max_value=100.0),
        probe=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_issued_units_partition_the_problem(self, n, target, speed, probe):
        """Drive a whole farm: every issued unit fits in the remaining
        range, sizes follow the policy, and the final sum is exact."""
        server = TaskFarmServer(
            policy=AdaptiveGranularity(target_seconds=target, probe_items=probe)
        )
        pid = server.submit(
            Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm()), now=0.0
        )
        server.register_donor("d0", now=0.0)
        now, issued_items = 0.0, 0
        while not server.all_complete():
            assignment = server.request_work("d0", now)
            assert assignment is not None, "work remains but none was issued"
            lo, hi = assignment.payload
            assert 0 <= lo < hi <= n
            assert assignment.items == hi - lo
            issued_items += assignment.items
            assert issued_items <= n  # never hands out more than remains
            duration = assignment.items / speed
            now += duration
            server.submit_result(
                WorkResult(
                    problem_id=pid,
                    unit_id=assignment.unit_id,
                    value=sum(range(lo, hi)),
                    donor_id="d0",
                    compute_seconds=duration,
                    items=assignment.items,
                ),
                now,
            )
        assert issued_items == n
        assert server.final_result(pid) == n * (n - 1) // 2
