"""Tests for Algorithm-failure reporting and poison-unit handling."""

import pytest

from repro.cluster.local import ServerFacade, ThreadCluster
from repro.core.client import DonorClient, InProcessServerPort
from repro.core.problem import FunctionAlgorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from tests.helpers import ManualClock, RangeSumAlgorithm, RangeSumDataManager


def flaky_algorithm(fail_spans: set[tuple[int, int]], failures_left: dict):
    """Fails the given spans a limited number of times, then succeeds."""

    def compute(span):
        if tuple(span) in fail_spans and failures_left.get(tuple(span), 0) > 0:
            failures_left[tuple(span)] -= 1
            raise ValueError(f"transient failure on {span}")
        return sum(range(*span))

    return FunctionAlgorithm(compute)


class TestTransientFailures:
    def test_flaky_unit_recovers(self):
        clock = ManualClock()
        server = TaskFarmServer(
            policy=FixedGranularity(10), lease_timeout=1e6, max_unit_attempts=5
        )
        counters = {(0, 10): 2}  # first unit fails twice, then works
        pid = server.submit(
            Problem("flaky", RangeSumDataManager(30), flaky_algorithm({(0, 10)}, counters)),
            clock(),
        )
        port = InProcessServerPort(server, clock=clock)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run()
        assert server.final_result(pid) == sum(range(30))
        assert client.failures == 2
        assert len(server.log.of_kind("unit.failed")) == 2
        assert len(server.log.of_kind("unit.requeued")) == 2

    def test_failure_events_carry_error_text(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=1e6)
        counters = {(0, 10): 1}
        server.submit(
            Problem("f", RangeSumDataManager(10), flaky_algorithm({(0, 10)}, counters)),
            clock(),
        )
        port = InProcessServerPort(server, clock=clock)
        DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock).run()
        event = server.log.first("unit.failed")
        assert "transient failure" in event.data["error"]
        assert event.data["attempt"] == 1


def _poison_compute(span):
    """Module-level (picklable) Algorithm body with a deterministic bug."""
    if span[0] == 0:
        raise RuntimeError("deterministic bug in user code")
    return sum(range(*span))


class TestPoisonUnit:
    def poison_problem(self, n=30):
        return Problem(
            "poison", RangeSumDataManager(n), FunctionAlgorithm(_poison_compute)
        )

    def test_problem_fails_after_max_attempts(self):
        clock = ManualClock()
        server = TaskFarmServer(
            policy=FixedGranularity(10), lease_timeout=1e6, max_unit_attempts=3
        )
        pid = server.submit(self.poison_problem(), clock())
        port = InProcessServerPort(server, clock=clock)
        client = DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock)
        client.run()
        assert server.status(pid) is ProblemStatus.FAILED
        assert "deterministic bug" in server.failure_reason(pid)
        assert len(server.log.of_kind("unit.failed")) == 3
        with pytest.raises(RuntimeError, match="failed"):
            server.final_result(pid)

    def test_failed_problem_frees_the_pool(self):
        """Other problems keep running after one fails."""
        clock = ManualClock()
        server = TaskFarmServer(
            policy=FixedGranularity(10), lease_timeout=1e6, max_unit_attempts=2
        )
        bad = server.submit(self.poison_problem(10), clock())
        good = server.submit(
            Problem("good", RangeSumDataManager(40), RangeSumAlgorithm()), clock()
        )
        port = InProcessServerPort(server, clock=clock)
        DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock).run()
        assert server.status(bad) is ProblemStatus.FAILED
        assert server.final_result(good) == sum(range(40))

    def test_thread_cluster_surfaces_failure(self):
        cluster = ThreadCluster(workers=2, policy=FixedGranularity(10))
        pid = cluster.submit(self.poison_problem())
        cluster.run()  # donors drain and exit despite the failure
        with pytest.raises(RuntimeError, match="deterministic bug"):
            cluster.final_result(pid)

    def test_checkpoint_preserves_failure(self, tmp_path):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        clock = ManualClock()
        server = TaskFarmServer(
            policy=FixedGranularity(10), lease_timeout=1e6, max_unit_attempts=1
        )
        pid = server.submit(self.poison_problem(10), clock())
        port = InProcessServerPort(server, clock=clock)
        DonorClient("d0", port, sleep=lambda s: clock.advance(s), clock=clock).run()
        assert server.status(pid) is ProblemStatus.FAILED

        path = tmp_path / "failed.ckpt"
        save_checkpoint(server, path, now=clock())
        fresh = TaskFarmServer(policy=FixedGranularity(10))
        load_checkpoint(path, fresh, now=0.0)
        assert fresh.status(pid) is ProblemStatus.FAILED
        assert "deterministic bug" in fresh.failure_reason(pid)


class TestValidation:
    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            TaskFarmServer(max_unit_attempts=0)

    def test_stale_failure_report_ignored(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=1e6)
        pid = server.submit(
            Problem("p", RangeSumDataManager(10), RangeSumAlgorithm()), clock()
        )
        server.register_donor("d0", clock())
        a = server.request_work("d0", clock.advance(1.0))
        from repro.core.workunit import WorkResult

        server.submit_result(
            WorkResult(pid, a.unit_id, sum(range(*a.payload)), "d0", 1.0, a.items),
            clock.advance(1.0),
        )
        # Late failure report for an already-completed unit: a no-op.
        server.report_failure(pid, a.unit_id, "d0", "too late", clock.advance(1.0))
        assert server.status(pid) is ProblemStatus.COMPLETE


class TestQuorumExactlyOnce:
    """A quorum-accepted unit folds into the DataManager exactly once,
    no matter how many extra replicas straggle in afterwards."""

    class _CountingDataManager(RangeSumDataManager):
        def __init__(self, n):
            super().__init__(n)
            self.folds: dict[int, int] = {}

        def handle_result(self, result):
            self.folds[result.unit_id] = self.folds.get(result.unit_id, 0) + 1
            super().handle_result(result)

    def test_late_third_replica_not_folded_twice(self):
        from repro.core.integrity import IntegrityPolicy
        from repro.core.workunit import WorkResult

        clock = ManualClock()
        dm = self._CountingDataManager(20)
        server = TaskFarmServer(
            policy=FixedGranularity(10),
            lease_timeout=1e6,
            integrity=IntegrityPolicy(replication=3, quorum=2),
        )
        pid = server.submit(Problem("sum", dm, RangeSumAlgorithm()), clock())
        for donor_id in ("d0", "d1", "d2"):
            server.register_donor(donor_id, clock())
        # All three replicas of the first unit go out...
        assignments = {
            donor_id: server.request_work(donor_id, clock.advance(1.0))
            for donor_id in ("d0", "d1", "d2")
        }
        assert all(a is not None for a in assignments.values())
        assert len({a.unit_id for a in assignments.values()}) == 1
        first_unit = assignments["d0"].unit_id

        def result_from(donor_id, a=None):
            a = a or assignments[donor_id]
            return WorkResult(
                pid, a.unit_id, sum(range(*a.payload)), donor_id, 1.0, a.items
            )

        # ...two agreeing votes reach quorum and accept the unit...
        assert server.submit_result(result_from("d0"), clock.advance(1.0))
        assert server.submit_result(result_from("d1"), clock.advance(1.0))
        assert dm.folds == {first_unit: 1}
        # ...and the late third replica is a duplicate, not a re-fold.
        assert server.submit_result(result_from("d2"), clock.advance(1.0)) is False
        assert dm.folds == {first_unit: 1}
        assert len(server.log.of_kind("unit.duplicate")) == 1

        # Finish the second unit through its own quorum.
        second = {
            donor_id: server.request_work(donor_id, clock.advance(1.0))
            for donor_id in ("d0", "d1")
        }
        assert server.submit_result(
            result_from("d0", second["d0"]), clock.advance(1.0)
        )
        assert server.submit_result(
            result_from("d1", second["d1"]), clock.advance(1.0)
        )
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert server.final_result(pid) == sum(range(20))
        assert dm.folds == {first_unit: 1, second["d0"].unit_id: 1}
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.units.duplicate"] == 1
        assert counters["farm.units.completed"] == 2
