"""Tests for granularity policies, the per-donor performance model and
the multi-problem round-robin."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scheduler import (
    AdaptiveGranularity,
    DonorState,
    FixedGranularity,
    PerfModel,
    ProblemRoundRobin,
)


def donor(name="d0") -> DonorState:
    return DonorState(name, 0.0, 0.0)


class TestPerfModel:
    def test_first_sample_sets_rate(self):
        m = PerfModel()
        m.observe(10, 2.0)
        assert m.items_per_second == pytest.approx(5.0)
        assert m.calibrated

    def test_ewma_moves_toward_new_rate(self):
        m = PerfModel(alpha=0.5)
        m.observe(10, 1.0)  # 10/s
        m.observe(20, 1.0)  # 20/s
        assert m.items_per_second == pytest.approx(15.0)

    def test_zero_seconds_does_not_divide_by_zero(self):
        m = PerfModel()
        m.observe(5, 0.0)
        assert m.items_per_second > 0

    @given(st.lists(st.tuples(st.integers(1, 1000), st.floats(0.01, 100)), min_size=1))
    def test_rate_stays_within_observed_range(self, samples):
        m = PerfModel(alpha=0.5)
        rates = [items / secs for items, secs in samples]
        for items, secs in samples:
            m.observe(items, secs)
        assert min(rates) - 1e-9 <= m.items_per_second <= max(rates) + 1e-9


class TestFixedGranularity:
    def test_constant(self):
        policy = FixedGranularity(25)
        d = donor()
        assert policy.items_for(d, 1) == 25
        d.perf_for(1).observe(1000, 1.0)
        assert policy.items_for(d, 1) == 25

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedGranularity(0)


class TestAdaptiveGranularity:
    def test_uncalibrated_donor_gets_probe(self):
        policy = AdaptiveGranularity(target_seconds=60, probe_items=2)
        assert policy.items_for(donor(), 1) == 2

    def test_fast_donor_gets_bigger_units(self):
        policy = AdaptiveGranularity(target_seconds=10, max_growth=1000.0)
        fast, slow = donor("fast"), donor("slow")
        fast.perf_for(1).observe(100, 1.0)   # 100 items/s
        slow.perf_for(1).observe(100, 100.0)  # 1 item/s
        assert policy.items_for(fast, 1) == 1000
        assert policy.items_for(slow, 1) == 10

    def test_growth_is_ramped(self):
        """One lucky probe must not hand a donor a giant unit."""
        policy = AdaptiveGranularity(target_seconds=10, max_growth=4.0)
        d = donor()
        model = d.perf_for(1)
        model.observe(1, 0.001)  # freak probe: 1000 items/s measured
        assert policy.items_for(d, 1) == 4  # ramp: 4 x last unit, not 10000
        model.observe(4, 0.004)
        assert policy.items_for(d, 1) == 16

    def test_ramp_converges_to_target(self):
        policy = AdaptiveGranularity(target_seconds=10, max_growth=4.0)
        d = donor()
        model = d.perf_for(1)
        items = 1
        for _ in range(12):
            model.observe(items, items / 100.0)  # true rate: 100 items/s
            items = policy.items_for(d, 1)
        assert items == 1000  # 100 items/s * 10 s target

    def test_max_growth_validation(self):
        with pytest.raises(ValueError, match="max_growth"):
            AdaptiveGranularity(max_growth=1.0)

    def test_clamping(self):
        policy = AdaptiveGranularity(target_seconds=10, min_items=5, max_items=50)
        turbo, glacial = donor("t"), donor("g")
        turbo.perf_for(1).observe(10_000, 1.0)
        glacial.perf_for(1).observe(1, 1000.0)
        assert policy.items_for(turbo, 1) == 50
        assert policy.items_for(glacial, 1) == 5

    def test_per_problem_calibration_is_independent(self):
        policy = AdaptiveGranularity(
            target_seconds=10, probe_items=3, max_growth=100.0, warm_start=False
        )
        d = donor()
        d.perf_for(1).observe(100, 1.0)
        # Problem 2 has no samples: back to probing.
        assert policy.items_for(d, 1) == 1000
        assert policy.items_for(d, 2) == 3

    def test_warm_start_seeds_new_problem_from_capacity(self):
        # The default: a calibrated donor's first unit on a *new* problem
        # is sized from its cross-problem rate, capped at the ramp bound.
        policy = AdaptiveGranularity(target_seconds=10, probe_items=3, max_growth=100.0)
        d = donor()
        d.perf_for(1).observe(100, 1.0)
        assert policy.items_for(d, 1) == 1000
        # 100 items/s * 10 s = 1000, capped at probe_items * max_growth.
        assert policy.items_for(d, 2) == 300

    def test_recalibrates_when_donor_slows(self):
        """A donor whose owner starts using the machine gets smaller units."""
        policy = AdaptiveGranularity(target_seconds=10, alpha=0.5)
        d = donor()
        m = d.perf_for(1)
        m.observe(100, 1.0)
        big = policy.items_for(d, 1)
        for _ in range(6):
            m.observe(10, 10.0)  # now only 1 item/s
        small = policy.items_for(d, 1)
        assert small < big / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveGranularity(target_seconds=0)
        with pytest.raises(ValueError):
            AdaptiveGranularity(min_items=10, max_items=5)

    @given(
        st.floats(0.1, 1000),
        st.integers(1, 100),
        st.floats(0.001, 1e6),
    )
    def test_result_always_within_bounds(self, target, items, secs):
        policy = AdaptiveGranularity(
            target_seconds=target, min_items=2, max_items=500
        )
        d = donor()
        d.perf_for(7).observe(items, secs)
        result = policy.items_for(d, 7)
        assert 2 <= result <= 500


class TestProblemRoundRobin:
    def test_single_problem(self):
        rr = ProblemRoundRobin()
        assert rr.order([(1, 0)]) == [1]

    def test_rotation(self):
        rr = ProblemRoundRobin()
        probs = [(1, 0), (2, 0), (3, 0)]
        assert rr.order(probs)[0] == 1
        rr.served(1)
        assert rr.order(probs)[0] == 2
        rr.served(2)
        assert rr.order(probs)[0] == 3
        rr.served(3)
        assert rr.order(probs)[0] == 1

    def test_priority_beats_rotation(self):
        rr = ProblemRoundRobin()
        rr.served(2)
        # problem 9 has a better (lower) priority: always first.
        assert rr.order([(1, 1), (2, 1), (9, 0)])[0] == 9

    def test_empty(self):
        assert ProblemRoundRobin().order([]) == []

    def test_vanished_problem_resets_gracefully(self):
        rr = ProblemRoundRobin()
        rr.served(42)  # problem 42 completes and disappears
        assert rr.order([(1, 0), (2, 0)]) == [1, 2]

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=10, unique=True))
    def test_all_problems_always_present(self, pids):
        rr = ProblemRoundRobin()
        probs = [(pid, 0) for pid in pids]
        for pid in pids:
            rr.served(pid)
            assert sorted(rr.order(probs)) == sorted(pids)
