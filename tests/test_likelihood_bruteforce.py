"""Brute-force oracle for the pruning likelihood.

For tiny trees the likelihood can be computed by explicitly summing
over every assignment of states to internal nodes:

    L(site) = sum_{internal states} pi(root) * prod_edges P_edge(parent -> child)

This is exponential in internal nodes but exact, independent of the
pruning code, and uses only the model's transition matrices — making
it the strongest oracle available.  We compare against
:class:`TreeLikelihood` across models, rate mixtures and random data.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GTR, GammaRates, HKY85, JC69, K80, N_STATES
from repro.bio.phylo.simulate import simulate_alignment
from repro.bio.phylo.tree import Tree, parse_newick

FREQS = np.array([0.35, 0.15, 0.2, 0.3])


def brute_force_loglik(tree: Tree, alignment: SiteAlignment, model, rates=None) -> float:
    """Exact likelihood by explicit state enumeration."""
    rates = rates or GammaRates.uniform()
    nodes = list(tree.postorder())
    internals = [n for n in nodes if not n.is_leaf]
    leaves = [n for n in nodes if n.is_leaf]
    leaf_rows = {n.name: alignment.row(n.name) for n in leaves}

    total = 0.0
    for p in range(alignment.n_patterns):
        site_lik = 0.0
        for k, rate in enumerate(rates.rates):
            P = {
                id(n): model.transition_matrix(n.branch_length, float(rate))
                for n in nodes
                if n.parent is not None
            }
            lik_k = 0.0
            for assignment in itertools.product(range(N_STATES), repeat=len(internals)):
                states = {id(n): s for n, s in zip(internals, assignment)}
                for leaf in leaves:
                    code = int(leaf_rows[leaf.name][p])
                    states[id(leaf)] = code
                term = model.freqs[states[id(tree.root)]]
                ok = True
                for node in nodes:
                    if node.parent is None:
                        continue
                    child_state = states[id(node)]
                    if node.is_leaf and child_state >= N_STATES:
                        # unknown leaf: sum over its states = multiply by
                        # row sum = 1, i.e. skip the factor
                        continue
                    term *= P[id(node)][states[id(node.parent)], child_state]
                    if term == 0.0:
                        ok = False
                        break
                if ok:
                    lik_k += term
            site_lik += rates.weights[k] * lik_k
        total += alignment.weights[p] * math.log(site_lik)
    return total


MODELS = [JC69(), K80(3.0), HKY85(2.5, FREQS), GTR([1, 2, 0.5, 1.5, 3, 0.8], FREQS)]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
class TestAgainstBruteForce:
    def test_three_taxa(self, model):
        tree = parse_newick("(a:0.2,b:0.35,c:0.1);")
        aln = simulate_alignment(tree, model, 12, seed=3)
        expected = brute_force_loglik(tree, aln, model)
        actual = TreeLikelihood(tree, aln, model).log_likelihood()
        assert actual == pytest.approx(expected, rel=1e-10)

    def test_four_taxa_with_internal_edge(self, model):
        tree = parse_newick("((a:0.1,b:0.3):0.25,c:0.15,d:0.4);")
        aln = simulate_alignment(tree, model, 10, seed=4)
        expected = brute_force_loglik(tree, aln, model)
        actual = TreeLikelihood(tree, aln, model).log_likelihood()
        assert actual == pytest.approx(expected, rel=1e-10)

    def test_with_gamma_rates(self, model):
        tree = parse_newick("((a:0.1,b:0.3):0.25,c:0.15,d:0.4);")
        rates = GammaRates(0.6, 3)
        aln = simulate_alignment(tree, model, 8, seed=5, rates=rates)
        expected = brute_force_loglik(tree, aln, model, rates)
        actual = TreeLikelihood(tree, aln, model, rates).log_likelihood()
        assert actual == pytest.approx(expected, rel=1e-10)


class TestWithUnknowns:
    def test_gaps_handled_identically(self):
        from repro.bio.seq.sequence import dna

        aln = SiteAlignment.from_sequences(
            [dna("a", "ACGTN"), dna("b", "ANGTA"), dna("c", "TCGNA")]
        )
        tree = parse_newick("(a:0.2,b:0.3,c:0.15);")
        model = HKY85(2.0, FREQS)
        expected = brute_force_loglik(tree, aln, model)
        actual = TreeLikelihood(tree, aln, model).log_likelihood()
        assert actual == pytest.approx(expected, rel=1e-10)


@settings(max_examples=15, deadline=None)
@given(
    bl=st.lists(st.floats(0.01, 2.0), min_size=5, max_size=5),
    seed=st.integers(0, 100),
)
def test_random_branch_lengths_property(bl, seed):
    tree = parse_newick(
        f"((a:{bl[0]},b:{bl[1]}):{bl[2]},c:{bl[3]},d:{bl[4]});"
    )
    model = HKY85(2.0, FREQS)
    aln = simulate_alignment(tree, model, 6, seed=seed)
    expected = brute_force_loglik(tree, aln, model)
    actual = TreeLikelihood(tree, aln, model).log_likelihood()
    assert actual == pytest.approx(expected, rel=1e-9)
