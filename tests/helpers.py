"""Shared test fixtures: simple DataManagers/Algorithms and a manual clock."""

from __future__ import annotations

from typing import Any

from repro.core.problem import Algorithm, DataManager
from repro.core.workunit import UnitPayload, WorkResult


class ManualClock:
    """A clock the test advances explicitly."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


class RangeSumDataManager(DataManager):
    """Sum the integers 0..n-1: the canonical trivially parallel problem.

    Units are contiguous slices of the range; the final result is the
    grand total.  Used throughout the framework tests because every
    intermediate value is checkable in closed form.
    """

    def __init__(self, n: int):
        self.n = n
        self._next = 0
        self._outstanding = 0
        self._total = 0
        self._done_items = 0

    def total_items(self) -> int:
        return self.n

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self._next >= self.n:
            return None
        lo = self._next
        hi = min(self.n, lo + max_items)
        self._next = hi
        self._outstanding += 1
        return UnitPayload(payload=(lo, hi), items=hi - lo, input_bytes=16)

    def handle_result(self, result: WorkResult) -> None:
        self._total += result.value
        self._done_items += result.items
        self._outstanding -= 1

    def is_complete(self) -> bool:
        return self._done_items >= self.n

    def final_result(self) -> int:
        return self._total


class RangeSumAlgorithm(Algorithm):
    def compute(self, payload: Any) -> int:
        lo, hi = payload
        return sum(range(lo, hi))

    def cost(self, payload: Any) -> float:
        lo, hi = payload
        return float(hi - lo)


class SlowRangeSumAlgorithm(RangeSumAlgorithm):
    """RangeSum with a real per-unit wall-clock cost, so live crash
    tests can kill a server while units are genuinely in flight."""

    def __init__(self, delay: float = 0.05):
        self.delay = delay

    def compute(self, payload: Any) -> int:
        import time

        time.sleep(self.delay)
        return super().compute(payload)


class StagedDataManager(DataManager):
    """A two-phase computation exercising stage barriers.

    Stage 1: square each of ``n`` integers (n units).
    Stage 2 (only after *all* squares are in): sum pairs of squares.
    Mirrors DPRml's structure where a stage must fully complete before
    the next stage's units exist.
    """

    def __init__(self, n: int = 8):
        assert n % 2 == 0
        self.n = n
        self.stage = 1
        self._pending = list(range(n))
        self._stage1_results: dict[int, int] = {}
        self._stage2_pending: list[tuple[int, int]] = []
        self._stage2_expected = 0
        self._total = 0
        self._stage2_done = 0

    def next_unit(self, max_items: int) -> UnitPayload | None:
        if self.stage == 1:
            if not self._pending:
                return None  # barrier: wait for stage-1 results
            x = self._pending.pop()
            return UnitPayload(payload=("square", x), items=1)
        if self._stage2_pending:
            pair = self._stage2_pending.pop()
            return UnitPayload(payload=("addpair", pair), items=1)
        return None

    def handle_result(self, result: WorkResult) -> None:
        kind, value = result.value
        if kind == "square":
            x, squared = value
            self._stage1_results[x] = squared
            if len(self._stage1_results) == self.n:
                squares = [self._stage1_results[i] for i in range(self.n)]
                self._stage2_pending = [
                    (squares[i], squares[i + 1]) for i in range(0, self.n, 2)
                ]
                self._stage2_expected = len(self._stage2_pending)
                self.stage = 2
        else:
            self._total += value
            self._stage2_done += 1

    def is_complete(self) -> bool:
        return self.stage == 2 and self._stage2_done == self._stage2_expected

    def final_result(self) -> int:
        return self._total


class StagedAlgorithm(Algorithm):
    def compute(self, payload: Any) -> Any:
        op, arg = payload
        if op == "square":
            return ("square", (arg, arg * arg))
        a, b = arg
        return ("addpair", a + b)
