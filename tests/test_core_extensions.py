"""Tests for the live-system extensions: donor heartbeats, the
reconnecting port, and the farm status report."""

import threading
import time

import pytest

from repro.cluster.local import ServerFacade
from repro.core.client import DonorClient, InProcessServerPort
from repro.core.problem import FunctionAlgorithm, Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.core.status import render_status, snapshot
from repro.rmi import RMIServer
from repro.rmi.errors import RMIError
from repro.rmi.reconnect import ReconnectingPort
from tests.helpers import ManualClock, RangeSumAlgorithm, RangeSumDataManager


class TestHeartbeat:
    def test_heartbeat_keeps_long_unit_alive(self):
        """A unit longer than the lease survives when heartbeats flow."""
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=0.3)
        facade = ServerFacade(server)
        pid = facade.submit(
            Problem(
                "slow",
                RangeSumDataManager(10),
                FunctionAlgorithm(lambda span: (time.sleep(1.0), sum(range(*span)))[1]),
            )
        )
        client = DonorClient("d0", facade, heartbeat_interval=0.1, idle_sleep=0.01)
        client.run()
        assert client.heartbeats_sent >= 2
        assert facade.final_result(pid) == sum(range(10))
        # No requeue happened: the lease was renewed throughout.
        assert server.log.of_kind("unit.requeued") == []

    def test_without_heartbeat_long_unit_expires(self):
        """Without heartbeats, a unit outliving its lease is reissued
        to the next donor that asks."""
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=0.2)
        facade = ServerFacade(server)
        facade.submit(
            Problem("slow", RangeSumDataManager(10), RangeSumAlgorithm())
        )
        facade.register_donor("d0")
        a = facade.request_work("d0")
        assert a is not None
        time.sleep(0.3)  # d0 is "stuck"; lease lapses
        facade.register_donor("d1")
        b = facade.request_work("d1")
        assert b is not None and b.unit_id == a.unit_id
        assert server.log.of_kind("unit.requeued")

    def test_bad_interval_rejected(self):
        server = TaskFarmServer()
        port = InProcessServerPort(server)
        with pytest.raises(ValueError):
            DonorClient("d0", port, heartbeat_interval=0.0)


class TestReconnectingPort:
    def _fresh_farm(self, n=100):
        server = TaskFarmServer(policy=FixedGranularity(20), lease_timeout=30.0)
        facade = ServerFacade(server)
        pid = facade.submit(
            Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm())
        )
        rmi = RMIServer()
        rmi.bind("taskfarm", facade)
        return server, facade, rmi, pid

    def test_normal_operation_passthrough(self):
        _server, facade, rmi, pid = self._fresh_farm()
        port = ReconnectingPort(rmi.host, rmi.port)
        try:
            client = DonorClient("d0", port, idle_sleep=0.01)
            client.run()
            assert facade.final_result(pid) == sum(range(100))
            assert port.reconnects == 0
        finally:
            port.close()
            rmi.close()

    def test_survives_server_restart(self):
        """Kill the RMI endpoint mid-run; the donor redials a new one
        bound to the same farm and finishes the job."""
        server, facade, rmi1, pid = self._fresh_farm(200)
        host, port_num = rmi1.host, rmi1.port

        registered = []

        def on_reconnect(proxy):
            registered.append(1)
            proxy.register_donor("d0")

        port = ReconnectingPort(
            host, port_num, on_reconnect=on_reconnect,
            base_backoff=0.05, max_attempts=40, sleep=time.sleep,
        )
        port.register_donor("d0")
        done = 0
        # Work a few units, then "crash" the endpoint.
        for _ in range(2):
            a = port.request_work("d0")
            client = DonorClient("d0", port)
            port.submit_result(client.execute(a))
            done += 1
        rmi1.close()

        # Restart on the same address shortly after, same farm state.
        def restart():
            time.sleep(0.3)
            rmi2 = RMIServer(host=host, port=port_num)
            rmi2.bind("taskfarm", facade)
            restart.server = rmi2  # type: ignore[attr-defined]

        thread = threading.Thread(target=restart)
        thread.start()
        try:
            client = DonorClient("d0", port, idle_sleep=0.01)
            client.run()
            assert facade.final_result(pid) == sum(range(200))
            assert port.reconnects >= 1
        finally:
            thread.join()
            restart.server.close()  # type: ignore[attr-defined]
            port.close()

    def test_gives_up_after_max_attempts(self):
        port = ReconnectingPort(
            "127.0.0.1", 1, max_attempts=2, base_backoff=0.01, sleep=lambda _s: None
        )
        with pytest.raises(RMIError, match="gave up"):
            port.all_complete()

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconnectingPort("h", 1, max_attempts=0)


class TestStatusReport:
    def test_snapshot_and_render(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(25), lease_timeout=100.0)
        pid = server.submit(
            Problem("sum-job", RangeSumDataManager(100), RangeSumAlgorithm()),
            clock(),
        )
        server.register_donor("lab-pc-01", clock())
        a = server.request_work("lab-pc-01", clock.advance(1.0))
        from repro.core.workunit import WorkResult

        server.submit_result(
            WorkResult(pid, a.unit_id, sum(range(*a.payload)), "lab-pc-01", 2.0, a.items),
            clock.advance(2.0),
        )
        b = server.request_work("lab-pc-01", clock.advance(1.0))  # in flight
        status = snapshot(server, clock())
        assert status.running_problems == 1
        assert status.active_donors == 1
        line = status.problems[0]
        assert line.units_completed == 1
        assert line.units_in_flight == 1
        assert 0 < line.progress < 1

        text = render_status(server, clock())
        assert "sum-job" in text
        assert "lab-pc-01" in text
        assert "running" in text

    def test_completed_problem_shows_full_progress(self):
        clock = ManualClock()
        server = TaskFarmServer(policy=FixedGranularity(100), lease_timeout=100.0)
        pid = server.submit(
            Problem("done", RangeSumDataManager(10), RangeSumAlgorithm()), clock()
        )
        server.register_donor("d0", clock())
        a = server.request_work("d0", clock.advance(1.0))
        from repro.core.workunit import WorkResult

        server.submit_result(
            WorkResult(pid, a.unit_id, sum(range(*a.payload)), "d0", 1.0, a.items),
            clock.advance(1.0),
        )
        status = snapshot(server, clock())
        assert status.problems[0].status == "complete"
        assert status.problems[0].progress == 1.0
        assert status.active_donors == 0

    def test_facade_status_report(self):
        server = TaskFarmServer(policy=FixedGranularity(5))
        facade = ServerFacade(server)
        facade.submit(Problem("j", RangeSumDataManager(10), RangeSumAlgorithm()))
        text = facade.status_report()
        assert "task farm status" in text
