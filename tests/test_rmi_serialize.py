"""Tests for the framed pickle codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rmi import serialize
from repro.rmi.errors import ProtocolError, SerializationError


class TestFraming:
    def test_roundtrip_simple(self):
        for obj in [None, 0, 3.14, "text", b"bytes", [1, 2], {"k": (1, 2)}]:
            assert serialize.loads(serialize.dumps(obj)) == obj

    def test_roundtrip_numpy(self):
        arr = np.arange(100, dtype=np.float64).reshape(10, 10)
        out = serialize.loads(serialize.dumps(arr))
        assert np.array_equal(out, arr)

    def test_header_carries_payload_length(self):
        frame = serialize.dumps("hello")
        length = serialize.parse_header(frame[: serialize.HEADER_SIZE])
        assert length == len(frame) - serialize.HEADER_SIZE

    def test_bad_magic_rejected(self):
        frame = bytearray(serialize.dumps(1))
        frame[0] = 0xFF
        with pytest.raises(ProtocolError, match="bad magic"):
            serialize.loads(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(serialize.dumps(1))
        frame[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            serialize.loads(bytes(frame))

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="short header"):
            serialize.parse_header(b"JR")

    def test_truncated_payload_rejected(self):
        frame = serialize.dumps([1, 2, 3])
        with pytest.raises(ProtocolError, match="length mismatch"):
            serialize.loads(frame[:-1])

    def test_unpicklable_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            serialize.dumps(lambda x: x)  # lambdas cannot be pickled

    def test_corrupt_payload_raises_serialization_error(self):
        frame = bytearray(serialize.dumps({"a": 1}))
        frame[serialize.HEADER_SIZE] ^= 0xFF
        with pytest.raises(SerializationError):
            serialize.loads(bytes(frame))


_JSONISH = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(_JSONISH)
def test_roundtrip_property(obj):
    assert serialize.loads(serialize.dumps(obj)) == obj


@given(st.binary(max_size=200))
def test_arbitrary_bytes_never_crash_parser(data):
    """Garbage input raises a protocol/serialization error, never others."""
    try:
        serialize.loads(data)
    except (ProtocolError, SerializationError):
        pass
