"""Tests for server checkpoint/restore."""

import pytest

from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.integrity import IntegrityPolicy
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


def make_server():
    return TaskFarmServer(policy=FixedGranularity(10), lease_timeout=100.0)


def compute(a, donor="d0"):
    lo, hi = a.payload
    return WorkResult(a.problem_id, a.unit_id, sum(range(lo, hi)), donor, 1.0, a.items)


class TestCheckpointRoundtrip:
    def test_mid_run_restore_completes_correctly(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        # Complete 4 of 10 units; leave one leased (in flight).
        t = 0.0
        for _ in range(4):
            a = server.request_work("d0", t := t + 0.1)
            server.submit_result(compute(a), t := t + 0.1)
        in_flight = server.request_work("d0", 3.0)
        assert in_flight is not None

        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=4.0)

        # "Server restart": a fresh instance restores the state.
        fresh = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=100.0)
        restored = load_checkpoint(path, fresh, now=5.0)
        assert restored == [pid]
        assert fresh.status(pid) is ProblemStatus.RUNNING

        fresh.register_donor("d1", 6.0)
        t = 6.0
        while fresh.status(pid) is ProblemStatus.RUNNING:
            a = fresh.request_work("d1", t := t + 0.1)
            assert a is not None, "restored server ran out of units early"
            fresh.submit_result(compute(a, "d1"), t := t + 0.1)
        assert fresh.final_result(pid) == sum(range(100))

    def test_leased_unit_is_requeued_not_lost(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(10), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)  # whole problem leased
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=2.0)

        fresh = make_server()
        load_checkpoint(path, fresh, now=3.0)
        fresh.register_donor("d1", 4.0)
        b = fresh.request_work("d1", 5.0)
        assert b is not None and b.unit_id == a.unit_id

    def test_completed_problem_survives(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(10), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)
        server.submit_result(compute(a), 2.0)
        assert server.status(pid) is ProblemStatus.COMPLETE
        path = tmp_path / "done.ckpt"
        save_checkpoint(server, path, now=3.0)

        fresh = make_server()
        load_checkpoint(path, fresh, now=4.0)
        assert fresh.status(pid) is ProblemStatus.COMPLETE
        assert fresh.final_result(pid) == sum(range(10))

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        server = make_server()
        server.submit(Problem("s", RangeSumDataManager(5), RangeSumAlgorithm()), 0.0)
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=1.0)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestCheckpointUnderIntegrity:
    def test_mid_chaos_checkpoint_preserves_votes_and_quarantine(self, tmp_path):
        """Save while quorum votes are pending, redundant leases are out
        and a byzantine donor sits in quarantine; the restored server
        must finish with the correct result and an intact blacklist."""
        policy = IntegrityPolicy(replication=2)

        def make_integrity_server():
            return TaskFarmServer(
                policy=FixedGranularity(10),
                lease_timeout=1e6,
                integrity=policy,
            )

        server = make_integrity_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        donors = ["liar", "d1", "d2"]
        for donor in donors:
            server.register_donor(donor, 0.0)

        # Drive until the liar's disagreements quarantine it, then stop
        # mid-problem so votes and redundant leases are still in flight.
        t = 1.0
        for _ in range(10_000):
            rep = server.reputation.get("liar")
            if rep is not None and rep.distrusted:
                break
            for donor in donors:
                a = server.request_work(donor, (t := t + 0.1))
                if a is None:
                    continue
                lo, hi = a.payload
                value = (
                    ("lie", a.unit_id)
                    if donor == "liar"
                    else sum(range(lo, hi))
                )
                server.submit_result(
                    WorkResult(a.problem_id, a.unit_id, value, donor, 1.0, a.items),
                    (t := t + 0.1),
                )
        else:
            raise AssertionError("liar never quarantined")
        assert server.status(pid) is ProblemStatus.RUNNING

        # At least one replicated unit stays mid-vote: leased, unresolved.
        assert server.request_work("d1", (t := t + 0.1)) is not None

        path = tmp_path / "chaos.ckpt"
        save_checkpoint(server, path, now=t)

        fresh = make_integrity_server()
        assert load_checkpoint(path, fresh, now=t + 1.0) == [pid]

        # The quarantine survived the restart: the liar gets no work.
        assert "liar" in fresh.reputation.quarantined_ids()
        fresh.register_donor("liar", (t := t + 1.0))
        assert fresh.request_work("liar", (t := t + 1.0)) is None

        for donor in ("d1", "d2"):
            fresh.register_donor(donor, t)
        for _ in range(10_000):
            if fresh.status(pid) is not ProblemStatus.RUNNING:
                break
            for donor in ("d1", "d2"):
                a = fresh.request_work(donor, (t := t + 0.1))
                if a is None:
                    continue
                lo, hi = a.payload
                fresh.submit_result(
                    WorkResult(
                        a.problem_id, a.unit_id, sum(range(lo, hi)), donor, 1.0, a.items
                    ),
                    (t := t + 0.1),
                )
        assert fresh.status(pid) is ProblemStatus.COMPLETE
        assert fresh.final_result(pid) == sum(range(100))


class TestCheckpointErrors:
    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"this is not a checkpoint")
        with pytest.raises(CheckpointError, match="not a task-farm checkpoint"):
            load_checkpoint(path, make_server(), now=0.0)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"TFCK" + b"\x00\x01garbage")
        with pytest.raises(CheckpointError, match="cannot decode"):
            load_checkpoint(path, make_server(), now=0.0)

    def test_conflicting_problem_rejected(self, tmp_path):
        server = make_server()
        problem = Problem("s", RangeSumDataManager(5), RangeSumAlgorithm())
        server.submit(problem, 0.0)
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=1.0)
        with pytest.raises(CheckpointError, match="already present"):
            load_checkpoint(path, server, now=2.0)
