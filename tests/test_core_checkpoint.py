"""Tests for server checkpoint/restore."""

import pytest

from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


def make_server():
    return TaskFarmServer(policy=FixedGranularity(10), lease_timeout=100.0)


def compute(a, donor="d0"):
    lo, hi = a.payload
    return WorkResult(a.problem_id, a.unit_id, sum(range(lo, hi)), donor, 1.0, a.items)


class TestCheckpointRoundtrip:
    def test_mid_run_restore_completes_correctly(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        # Complete 4 of 10 units; leave one leased (in flight).
        t = 0.0
        for _ in range(4):
            a = server.request_work("d0", t := t + 0.1)
            server.submit_result(compute(a), t := t + 0.1)
        in_flight = server.request_work("d0", 3.0)
        assert in_flight is not None

        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=4.0)

        # "Server restart": a fresh instance restores the state.
        fresh = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=100.0)
        restored = load_checkpoint(path, fresh, now=5.0)
        assert restored == [pid]
        assert fresh.status(pid) is ProblemStatus.RUNNING

        fresh.register_donor("d1", 6.0)
        t = 6.0
        while fresh.status(pid) is ProblemStatus.RUNNING:
            a = fresh.request_work("d1", t := t + 0.1)
            assert a is not None, "restored server ran out of units early"
            fresh.submit_result(compute(a, "d1"), t := t + 0.1)
        assert fresh.final_result(pid) == sum(range(100))

    def test_leased_unit_is_requeued_not_lost(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(10), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)  # whole problem leased
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=2.0)

        fresh = make_server()
        load_checkpoint(path, fresh, now=3.0)
        fresh.register_donor("d1", 4.0)
        b = fresh.request_work("d1", 5.0)
        assert b is not None and b.unit_id == a.unit_id

    def test_completed_problem_survives(self, tmp_path):
        server = make_server()
        pid = server.submit(
            Problem("sum", RangeSumDataManager(10), RangeSumAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)
        server.submit_result(compute(a), 2.0)
        assert server.status(pid) is ProblemStatus.COMPLETE
        path = tmp_path / "done.ckpt"
        save_checkpoint(server, path, now=3.0)

        fresh = make_server()
        load_checkpoint(path, fresh, now=4.0)
        assert fresh.status(pid) is ProblemStatus.COMPLETE
        assert fresh.final_result(pid) == sum(range(10))

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        server = make_server()
        server.submit(Problem("s", RangeSumDataManager(5), RangeSumAlgorithm()), 0.0)
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=1.0)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestCheckpointErrors:
    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"this is not a checkpoint")
        with pytest.raises(CheckpointError, match="not a task-farm checkpoint"):
            load_checkpoint(path, make_server(), now=0.0)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"TFCK" + b"\x00\x01garbage")
        with pytest.raises(CheckpointError, match="cannot decode"):
            load_checkpoint(path, make_server(), now=0.0)

    def test_conflicting_problem_rejected(self, tmp_path):
        server = make_server()
        problem = Problem("s", RangeSumDataManager(5), RangeSumAlgorithm())
        server.submit(problem, 0.0)
        path = tmp_path / "farm.ckpt"
        save_checkpoint(server, path, now=1.0)
        with pytest.raises(CheckpointError, match="already present"):
            load_checkpoint(path, server, now=2.0)
