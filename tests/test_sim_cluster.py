"""Tests for machine models, the network model, trace workloads and the
simulated cluster end to end."""

import math

import numpy as np
import pytest

from repro.cluster.sim import (
    MachineSpec,
    NetworkModel,
    SimCluster,
    Simulator,
    heterogeneous_pool,
    homogeneous_pool,
)
from repro.cluster.sim.machines import churn_sessions, with_churn
from repro.cluster.sim.network import NetworkConfig
from repro.cluster.sim.trace import (
    TraceAlgorithm,
    TraceDataManager,
    TraceStage,
    WorkloadTrace,
    trace_problem,
)
from repro.core.problem import Problem
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("m", speed=0)
        with pytest.raises(ValueError):
            MachineSpec("m", availability=0)
        with pytest.raises(ValueError):
            MachineSpec("m", availability=1.5)
        with pytest.raises(ValueError):
            MachineSpec("m", sessions=((5.0, 5.0),))

    def test_effective_rate_without_jitter(self):
        spec = MachineSpec("m", speed=2.0, availability=0.5)
        rng = np.random.default_rng(0)
        assert spec.effective_rate(rng) == pytest.approx(1.0)

    def test_effective_rate_with_jitter_bounded(self):
        spec = MachineSpec("m", speed=1.0, availability=0.8, availability_jitter=0.2)
        rng = np.random.default_rng(0)
        rates = [spec.effective_rate(rng) for _ in range(200)]
        assert all(0.8 * 0.8 - 1e-9 <= r <= 0.8 * 1.2 + 1e-9 for r in rates)
        assert max(rates) <= 1.0  # availability never exceeds 100%

    def test_present_at(self):
        spec = MachineSpec("m", sessions=((0.0, 10.0), (20.0, 30.0)))
        assert spec.present_at(5.0)
        assert not spec.present_at(15.0)
        assert spec.present_at(25.0)
        always = MachineSpec("m2")
        assert always.present_at(1e9)

    def test_pools(self):
        homo = homogeneous_pool(5, speed=2.0)
        assert len(homo) == 5
        assert all(m.speed == 2.0 for m in homo)
        assert len({m.machine_id for m in homo}) == 5

        hetero = heterogeneous_pool(20, seed=1, speed_range=(0.25, 2.0))
        speeds = [m.speed for m in hetero]
        assert min(speeds) >= 0.25 and max(speeds) <= 2.0
        assert max(speeds) / min(speeds) > 2  # genuinely heterogeneous

    def test_heterogeneous_pool_deterministic(self):
        a = heterogeneous_pool(5, seed=7)
        b = heterogeneous_pool(5, seed=7)
        assert [m.speed for m in a] == [m.speed for m in b]

    def test_churn_sessions(self):
        rng = np.random.default_rng(0)
        sessions = churn_sessions(1000.0, 100.0, 50.0, rng)
        assert sessions
        for (s1, e1), (s2, _e2) in zip(sessions, sessions[1:]):
            assert e1 > s1
            assert s2 > e1  # non-overlapping, ordered
        assert all(e <= 1000.0 for _s, e in sessions)

    def test_with_churn_preserves_specs(self):
        pool = with_churn(homogeneous_pool(3), 1000.0, 100.0, 10.0, seed=3)
        assert all(m.sessions for m in pool)
        assert [m.speed for m in pool] == [1.0, 1.0, 1.0]


class TestNetworkModel:
    def test_transfer_time(self):
        sim = Simulator()
        net = NetworkModel(sim, NetworkConfig(bandwidth=1e6, latency=0.0))
        assert net.transfer_seconds(1_000_000) == pytest.approx(1.0)

    def test_shared_link_serializes(self):
        sim = Simulator()
        net = NetworkModel(sim, NetworkConfig(bandwidth=1e6, latency=0.0))
        ends = []

        def sender():
            yield from net.transmit(1_000_000)
            ends.append(sim.now)

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]
        assert net.bytes_transferred == 2_000_000

    def test_latency_not_on_link(self):
        # Two zero-byte messages with latency don't queue behind each other.
        sim = Simulator()
        net = NetworkModel(sim, NetworkConfig(bandwidth=1e6, latency=0.5))
        ends = []

        def sender():
            yield from net.transmit(0)
            ends.append(sim.now)

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        assert ends == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency=-1)


class TestWorkloadTrace:
    def test_totals(self):
        trace = WorkloadTrace(
            (TraceStage((1.0, 2.0, 3.0)), TraceStage((4.0, 5.0)))
        )
        assert trace.total_cost == pytest.approx(15.0)
        assert trace.total_items == 5
        assert trace.critical_path == pytest.approx(3.0 + 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTrace(())
        with pytest.raises(ValueError):
            TraceStage(())
        with pytest.raises(ValueError):
            TraceStage((1.0, -2.0))

    def test_single_stage_helper(self):
        trace = WorkloadTrace.single_stage([1, 2, 3], name="t")
        assert len(trace.stages) == 1
        assert trace.total_cost == 6.0

    def test_datamanager_partitions_and_barriers(self):
        trace = WorkloadTrace((TraceStage((1.0,) * 6), TraceStage((2.0,) * 2)))
        dm = TraceDataManager(trace)
        first = dm.next_unit(4)
        assert first.items == 4
        second = dm.next_unit(4)
        assert second.items == 2
        assert dm.next_unit(4) is None  # barrier: stage 1 outstanding
        from repro.core.workunit import WorkResult

        dm.handle_result(WorkResult(0, 0, None, items=4))
        assert dm.next_unit(4) is None  # still one unit outstanding
        dm.handle_result(WorkResult(0, 1, None, items=2))
        third = dm.next_unit(10)  # stage 2 unlocked
        assert third.items == 2
        assert third.cost_hint == pytest.approx(4.0)
        dm.handle_result(WorkResult(0, 2, None, items=2))
        assert dm.is_complete()

    def test_algorithm_cost(self):
        assert TraceAlgorithm().cost((1.0, 2.5)) == pytest.approx(3.5)


class TestSimCluster:
    def test_real_execution_produces_correct_result(self):
        cluster = SimCluster(
            homogeneous_pool(4),
            policy=FixedGranularity(10),
            seed=1,
        )
        pid = cluster.submit(
            Problem("sum", RangeSumDataManager(100), RangeSumAlgorithm())
        )
        report = cluster.run()
        assert report.completed
        assert report.results[pid] == sum(range(100))
        assert report.makespans[pid] > 0

    def test_more_machines_finish_faster(self):
        def runtime(n_machines):
            cluster = SimCluster(
                homogeneous_pool(n_machines),
                policy=FixedGranularity(5),
                seed=1,
                execute=False,
            )
            pid = cluster.submit(
                trace_problem(WorkloadTrace.single_stage([10.0] * 100))
            )
            return cluster.run().makespans[pid]

        t1, t4, t16 = runtime(1), runtime(4), runtime(16)
        assert t1 > t4 > t16
        assert t1 / t4 == pytest.approx(4.0, rel=0.15)

    def test_fast_machine_does_more_work(self):
        machines = [
            MachineSpec("fast", speed=4.0),
            MachineSpec("slow", speed=1.0),
        ]
        cluster = SimCluster(
            machines, policy=AdaptiveGranularity(target_seconds=20.0), seed=1,
            execute=False,
        )
        cluster.submit(trace_problem(WorkloadTrace.single_stage([1.0] * 400)))
        report = cluster.run()
        assert report.completed
        assert report.machine_units["fast"] >= report.machine_units["slow"]
        fast_items = report.machine_busy["fast"]
        slow_items = report.machine_busy["slow"]
        assert fast_items > 0 and slow_items > 0

    def test_determinism(self):
        def run_once():
            cluster = SimCluster(
                heterogeneous_pool(8, seed=3),
                policy=AdaptiveGranularity(target_seconds=10.0),
                seed=42,
                execute=False,
            )
            pid = cluster.submit(
                trace_problem(WorkloadTrace.single_stage([2.0] * 200))
            )
            return cluster.run().makespans[pid]

        assert run_once() == run_once()

    def test_churned_machine_work_is_reissued(self):
        # One machine leaves after 5s holding a huge unit; the stable one
        # must eventually complete everything.
        machines = [
            MachineSpec("flaky", speed=1.0, sessions=((0.0, 5.0),)),
            MachineSpec("stable", speed=1.0),
        ]
        cluster = SimCluster(
            machines,
            policy=FixedGranularity(50),
            lease_timeout=30.0,
            seed=1,
            execute=False,
        )
        pid = cluster.submit(trace_problem(WorkloadTrace.single_stage([1.0] * 100)))
        report = cluster.run()
        assert report.completed
        assert report.results[pid]["items"] == 100
        requeues = report.log.of_kind("unit.requeued")
        assert requeues  # the flaky machine's unit came back

    def test_staged_trace_respects_barrier(self):
        # Stage 2 items cannot start before every stage 1 item ends.
        trace = WorkloadTrace(
            (TraceStage((10.0,) * 8), TraceStage((10.0,) * 8)), name="staged"
        )
        cluster = SimCluster(
            homogeneous_pool(8),
            policy=FixedGranularity(1),
            seed=1,
            execute=False,
        )
        pid = cluster.submit(trace_problem(trace))
        report = cluster.run()
        assert report.completed
        # With 8 machines and a barrier the makespan is ~2 stage-lengths,
        # strictly more than the no-barrier bound of 160/8 = 20.
        assert report.makespans[pid] >= 20.0

    def test_multiple_problems_share_pool(self):
        cluster = SimCluster(
            homogeneous_pool(4),
            policy=FixedGranularity(10),
            seed=1,
            execute=False,
        )
        p1 = cluster.submit(trace_problem(WorkloadTrace.single_stage([1.0] * 50)))
        p2 = cluster.submit(trace_problem(WorkloadTrace.single_stage([1.0] * 50)))
        report = cluster.run()
        assert report.completed
        assert set(report.makespans) == {p1, p2}

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one machine"):
            SimCluster([])
        with pytest.raises(ValueError, match="unique"):
            SimCluster([MachineSpec("x"), MachineSpec("x")])

    def test_run_until_horizon_incomplete(self):
        cluster = SimCluster(
            homogeneous_pool(1),
            policy=FixedGranularity(1),
            seed=1,
            execute=False,
        )
        cluster.submit(trace_problem(WorkloadTrace.single_stage([100.0] * 10)))
        report = cluster.run(until=50.0)
        assert not report.completed
        assert report.makespans == {}
