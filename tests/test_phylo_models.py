"""Tests for substitution models: stochasticity, reversibility,
stationarity, known closed forms, and Gamma rate categories."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.phylo.models import (
    GTR,
    HKY85,
    JC69,
    K80,
    F81,
    F84,
    TN93,
    GammaRates,
    model_by_name,
)

FREQS = np.array([0.35, 0.15, 0.20, 0.30])

ALL_MODELS = [
    JC69(),
    K80(2.5),
    F81(FREQS),
    F84(1.5, FREQS),
    HKY85(3.0, FREQS),
    TN93(3.0, 1.5, FREQS),
    GTR([1.0, 2.0, 0.7, 1.2, 3.1, 0.9], FREQS),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
class TestModelInvariants:
    def test_q_rows_sum_to_zero(self, model):
        assert np.allclose(model.Q.sum(axis=1), 0.0, atol=1e-12)

    def test_mean_rate_is_one(self, model):
        assert -np.dot(model.freqs, np.diag(model.Q)) == pytest.approx(1.0)

    def test_p_zero_is_identity(self, model):
        assert np.allclose(model.transition_matrix(0.0), np.eye(4), atol=1e-12)

    def test_p_rows_are_distributions(self, model):
        for t in (0.01, 0.1, 1.0, 10.0):
            P = model.transition_matrix(t)
            assert (P >= 0).all()
            assert np.allclose(P.sum(axis=1), 1.0)

    def test_chapman_kolmogorov(self, model):
        # P(s+t) = P(s) P(t)
        Ps = model.transition_matrix(0.3)
        Pt = model.transition_matrix(0.7)
        Pst = model.transition_matrix(1.0)
        assert np.allclose(Ps @ Pt, Pst, atol=1e-10)

    def test_detailed_balance(self, model):
        # Reversibility: pi_i P_ij(t) = pi_j P_ji(t)
        P = model.transition_matrix(0.5)
        flux = model.freqs[:, None] * P
        assert np.allclose(flux, flux.T, atol=1e-10)

    def test_stationary_distribution(self, model):
        P = model.transition_matrix(100.0)
        for row in P:
            assert np.allclose(row, model.freqs, atol=1e-6)

    def test_negative_time_rejected(self, model):
        with pytest.raises(ValueError):
            model.transition_matrix(-0.1)


class TestJC69ClosedForm:
    def test_matches_analytic(self):
        model = JC69()
        for t in (0.05, 0.2, 1.0, 3.0):
            P = model.transition_matrix(t)
            same = 0.25 + 0.75 * math.exp(-4.0 * t / 3.0)
            diff = 0.25 - 0.25 * math.exp(-4.0 * t / 3.0)
            assert P[0, 0] == pytest.approx(same, rel=1e-10)
            assert P[0, 1] == pytest.approx(diff, rel=1e-10)

    def test_uniform_frequencies(self):
        assert np.allclose(JC69().freqs, 0.25)


class TestK80:
    def test_transitions_faster_than_transversions(self):
        P = K80(5.0).transition_matrix(0.2)
        assert P[0, 2] > P[0, 1]  # A->G (transition) > A->C (transversion)
        assert P[1, 3] > P[1, 0]  # C->T > C->A

    def test_kappa_one_is_jc(self):
        assert np.allclose(
            K80(1.0).transition_matrix(0.7), JC69().transition_matrix(0.7)
        )

    def test_bad_kappa(self):
        with pytest.raises(ValueError):
            K80(0.0)


class TestParameterValidation:
    def test_bad_frequencies(self):
        with pytest.raises(ValueError):
            F81([0.5, 0.5, 0.0, 0.0])
        with pytest.raises(ValueError):
            F81([0.3, 0.3, 0.3, 0.3])  # doesn't sum to 1

    def test_gtr_validation(self):
        with pytest.raises(ValueError, match="six"):
            GTR([1, 2, 3], FREQS)
        with pytest.raises(ValueError, match="positive"):
            GTR([1, 2, 3, 4, 5, -1], FREQS)

    def test_tn93_validation(self):
        with pytest.raises(ValueError):
            TN93(0, 1, FREQS)

    def test_hky_with_uniform_freqs_equals_k80(self):
        uniform = np.full(4, 0.25)
        assert np.allclose(
            HKY85(2.0, uniform).transition_matrix(0.4),
            K80(2.0).transition_matrix(0.4),
        )


class TestModelByName:
    def test_all_names_resolve(self):
        for name in ("jc69", "k80", "f81", "f84", "hky85", "tn93", "gtr"):
            model = model_by_name(name, freqs=FREQS, kappa=2.0)
            assert model.Q.shape == (4, 4)

    def test_case_insensitive(self):
        assert model_by_name("HKY85").name.startswith("HKY85")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown substitution model"):
            model_by_name("jc1970")


class TestGammaRates:
    def test_single_category_is_unit(self):
        assert np.allclose(GammaRates(1.0, 1).rates, [1.0])
        assert np.allclose(GammaRates.uniform().rates, [1.0])

    def test_mean_rate_is_one(self):
        for alpha in (0.2, 0.5, 1.0, 2.0, 10.0):
            for k in (2, 4, 8):
                g = GammaRates(alpha, k)
                assert float(np.dot(g.weights, g.rates)) == pytest.approx(1.0)

    def test_rates_increase(self):
        g = GammaRates(0.5, 4)
        assert (np.diff(g.rates) > 0).all()

    def test_low_alpha_is_more_heterogeneous(self):
        spread_low = np.ptp(GammaRates(0.3, 4).rates)
        spread_high = np.ptp(GammaRates(5.0, 4).rates)
        assert spread_low > spread_high

    def test_high_alpha_approaches_uniform(self):
        g = GammaRates(1000.0, 4)
        assert np.allclose(g.rates, 1.0, atol=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            GammaRates(0.0)
        with pytest.raises(ValueError):
            GammaRates(1.0, 0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.1, 20.0), st.integers(1, 10))
    def test_mean_one_property(self, alpha, k):
        g = GammaRates(alpha, k)
        assert float(np.dot(g.weights, g.rates)) == pytest.approx(1.0, abs=1e-6)
        assert (g.rates >= 0).all()
