"""Live crash-recovery drills: real threads, real files, real SIGKILL.

Two layers above the simulated drills in ``test_chaos.py``:

* **Threaded-live differentials** — donors are real ``DonorClient``
  threads hammering one ``TaskFarmServer`` journaling to a ``DirStore``
  on disk.  A kill switch drops the server mid-run at a chosen fold
  count; a fresh server recovers from the journal directory alone and
  new donor threads finish the job.  The final digest must be
  bit-identical to a never-crashed threaded run — for both target
  applications, including a torn-tail corruption case that must recover
  only after loudly truncating the tear.

* **SIGKILL e2e** — a real ``repro-server`` subprocess with
  ``--journal`` is killed with SIGKILL while an RMI donor is mid-run;
  a second subprocess recovers from the same directory, the donor's
  ``ReconnectingPort`` redials and re-registers, and the run completes
  with the exact closed-form answer.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.dprml import DPRmlConfig
from repro.apps.dprml import build_problem as build_dprml_problem
from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch import build_problem as build_dsearch_problem
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.core.client import DonorClient, InProcessServerPort
from repro.core.integrity import canonical_digest
from repro.core.journal import DirStore, JournalWriter, recover
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.rmi.proxy import connect
from repro.rmi.reconnect import ReconnectingPort
from tests.helpers import RangeSumDataManager, SlowRangeSumAlgorithm

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def dsearch_factory():
    rng = np.random.default_rng(7)
    query = random_sequence("q0", 60, DNA, rng)
    database, _ = seeded_database(
        query, decoy_count=14, homolog_count=2, seed=11, substitution_rate=0.1
    )

    def build():
        return build_dsearch_problem(database, [query], DSearchConfig(top_hits=4))

    return build


@pytest.fixture(scope="module")
def dprml_factory():
    true = random_yule_tree(5, seed=33, mean_branch=0.2)
    alignment = simulate_alignment(true, JC69(), 120, seed=34)

    def build():
        return build_dprml_problem(alignment, DPRmlConfig(model="jc69"))

    return build


class _KillPort(InProcessServerPort):
    """Thread-safe port that trips a kill switch after N accepted folds."""

    def __init__(self, server, lock, kill=None, kill_after=None):
        super().__init__(server)
        self._lock = lock
        self._kill = kill
        self._kill_after = kill_after
        self.accepted = 0

    def register_donor(self, donor_id, slots=1):
        with self._lock:
            super().register_donor(donor_id, slots)

    def deregister_donor(self, donor_id):
        with self._lock:
            super().deregister_donor(donor_id)

    def request_work(self, donor_id):
        with self._lock:
            return super().request_work(donor_id)

    def submit_result(self, result):
        with self._lock:
            accepted = super().submit_result(result)
            if accepted:
                self.accepted += 1
                if self._kill is not None and self.accepted >= self._kill_after:
                    self._kill.set()
            return accepted

    def report_failure(self, problem_id, unit_id, donor_id, error):
        with self._lock:
            super().report_failure(problem_id, unit_id, donor_id, error)

    def heartbeat(self, donor_id):
        with self._lock:
            super().heartbeat(donor_id)

    def get_algorithm(self, problem_id):
        with self._lock:
            return super().get_algorithm(problem_id)

    def all_complete(self):
        with self._lock:
            return super().all_complete()


def _donor_swarm(port, count, should_stop, prefix):
    threads = []
    for i in range(count):
        client = DonorClient(f"{prefix}{i}", port, idle_sleep=0.001)
        t = threading.Thread(
            target=client.run,
            kwargs={"should_stop": should_stop},
            daemon=True,
        )
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "donor thread hung"


def run_threaded(build_problem, journal_dir=None, kill_after=None, torn=0):
    """One threaded-live run; crash at *kill_after* folds and recover.

    Returns ``(digest, recovered_server, recovery_report_or_None)``.
    """
    problem = build_problem()
    store = DirStore(journal_dir) if journal_dir is not None else None
    server = TaskFarmServer(
        policy=FixedGranularity(4),
        lease_timeout=30.0,
        journal=JournalWriter(store) if store is not None else None,
    )
    pid = server.submit(problem, time.monotonic())

    lock = threading.RLock()
    kill = threading.Event() if kill_after is not None else None
    port = _KillPort(server, lock, kill, kill_after)
    _donor_swarm(port, 3, kill.is_set if kill is not None else None, "live")

    if kill is None:
        assert server.all_complete()
        return canonical_digest(server.final_result(pid)), server, None

    assert kill.is_set(), "problem finished before the kill point"
    # The "crash": drop the wrecked server on the floor.  Only the
    # journal directory survives into the next phase.
    del server, port
    if torn:
        # A torn write: garbage bytes on the end of the newest segment,
        # too short to even be a frame header.
        tail = sorted(store.names())[-1]
        store.append(tail, b"\xde\xad\xbe"[:torn])
        store.sync(tail)

    fresh = TaskFarmServer(policy=FixedGranularity(4), lease_timeout=30.0)
    report = recover(fresh, store, now=time.monotonic())
    port2 = _KillPort(fresh, threading.RLock())
    _donor_swarm(port2, 3, None, "heir")
    assert fresh.all_complete()
    return canonical_digest(fresh.final_result(pid)), fresh, report


@pytest.fixture(scope="module")
def dsearch_threaded_digest(dsearch_factory):
    digest, _server, _report = run_threaded(dsearch_factory)
    return digest


@pytest.fixture(scope="module")
def dprml_threaded_digest(dprml_factory):
    digest, _server, _report = run_threaded(dprml_factory)
    return digest


KILL_POINTS = [1, 2, 3]


@pytest.mark.slow
class TestThreadedRecoveryDifferential:
    """Crash/recover digest == never-crashed digest, live threads."""

    @pytest.mark.parametrize("kill_after", KILL_POINTS)
    def test_dsearch(self, kill_after, tmp_path, dsearch_factory, dsearch_threaded_digest):
        digest, fresh, report = run_threaded(
            dsearch_factory, journal_dir=tmp_path, kill_after=kill_after
        )
        assert digest == dsearch_threaded_digest
        counters = fresh.obs.meters.snapshot()["counters"]
        assert counters["farm.recovery.seconds"] > 0
        assert report.next_lsn > 1
        assert fresh.log.of_kind("server.recovered")

    @pytest.mark.parametrize("kill_after", KILL_POINTS)
    def test_dprml(self, kill_after, tmp_path, dprml_factory, dprml_threaded_digest):
        digest, fresh, _report = run_threaded(
            dprml_factory, journal_dir=tmp_path, kill_after=kill_after
        )
        assert digest == dprml_threaded_digest
        assert fresh.log.of_kind("server.recovered")

    def test_dsearch_torn_tail(self, tmp_path, dsearch_factory, dsearch_threaded_digest):
        digest, fresh, report = run_threaded(
            dsearch_factory, journal_dir=tmp_path, kill_after=2, torn=3
        )
        assert digest == dsearch_threaded_digest
        assert report.torn_bytes == 3
        counters = fresh.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] == 1

    def test_dprml_torn_tail(self, tmp_path, dprml_factory, dprml_threaded_digest):
        digest, fresh, report = run_threaded(
            dprml_factory, journal_dir=tmp_path, kill_after=2, torn=3
        )
        assert digest == dprml_threaded_digest
        assert report.torn_bytes == 3
        counters = fresh.obs.meters.snapshot()["counters"]
        assert counters["farm.journal.torn.truncated"] == 1


# ---------------------------------------------------------------------------
# SIGKILL e2e: a real server process, killed for real.
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_server(journal_dir: Path, port: int, log_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    # The submitted Problem pickles classes from tests.helpers, so the
    # server process needs the repo root importable alongside src/.
    env["PYTHONPATH"] = os.pathsep.join([str(REPO_ROOT / "src"), str(REPO_ROOT)])
    code = (
        "import sys; from repro.cli.farm import server_main; "
        "sys.exit(server_main(sys.argv[1:]))"
    )
    log = open(log_path, "ab")
    try:
        return subprocess.Popen(
            [
                sys.executable, "-c", code,
                "--host", "127.0.0.1",
                "--port", str(port),
                "--journal", str(journal_dir),
                "--checkpoint-interval", "1",
                "--lease-timeout", "5",
                "--unit-target-seconds", "0.1",
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(REPO_ROOT),
        )
    finally:
        log.close()


def _wait_listening(port: int, proc: subprocess.Popen, deadline: float = 20.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            raise AssertionError(f"server exited early with {proc.returncode}")
        try:
            proxy = connect("127.0.0.1", port, "taskfarm", timeout=1.0)
        except OSError:
            time.sleep(0.05)
            continue
        try:
            proxy.all_complete()
            return
        finally:
            proxy.close()
    raise AssertionError("server never started listening")


@pytest.mark.slow
def test_sigkill_server_recovers_and_donor_reconnects(tmp_path):
    port = _free_port()
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir()
    n = 240
    procs = []
    try:
        proc1 = _spawn_server(journal_dir, port, tmp_path / "server1.log")
        procs.append(proc1)
        _wait_listening(port, proc1)

        with connect("127.0.0.1", port, "taskfarm") as proxy:
            pid = proxy.submit(
                Problem("sum", RangeSumDataManager(n), SlowRangeSumAlgorithm(0.05))
            )

        donor_port = ReconnectingPort(
            "127.0.0.1",
            port,
            "taskfarm",
            max_attempts=80,
            base_backoff=0.05,
            max_backoff=0.5,
            on_reconnect=lambda p: p.register_donor("e2e-donor", 1),
        )
        client = DonorClient("e2e-donor", donor_port, idle_sleep=0.05)
        donor = threading.Thread(target=client.run, daemon=True)
        donor.start()

        # Let the donor chew through a few journaled units (and at
        # least one 1-second checkpoint tick), then kill -9 the server.
        deadline = time.monotonic() + 30
        while client.units_done < 4 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert client.units_done >= 4, "donor never got going"
        os.kill(proc1.pid, signal.SIGKILL)
        proc1.wait(timeout=10)

        proc2 = _spawn_server(journal_dir, port, tmp_path / "server2.log")
        procs.append(proc2)

        # The donor's ReconnectingPort redials, re-registers, and
        # run() returns once the recovered server reports completion.
        donor.join(timeout=90)
        assert not donor.is_alive(), "donor never finished after recovery"
        donor_port.close()

        with connect("127.0.0.1", port, "taskfarm") as proxy:
            assert proxy.all_complete()
            assert proxy.final_result(pid) == sum(range(n))
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    log2 = (tmp_path / "server2.log").read_text()
    assert "recovered" in log2, log2
