"""Tests for the event log, RNG helpers and statistics utilities."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.events import EventLog
from repro.util.rng import spawn_rng, stable_seed
from repro.util.stats import RunningStat, mean_confidence, speedup_curve


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(0.0, "a", x=1)
        log.record(1.0, "b")
        log.record(2.0, "a", x=2)
        assert len(log) == 3
        assert [e.data["x"] for e in log.of_kind("a")] == [1, 2]
        assert log.first("a").time == 0.0
        assert log.last("a").time == 2.0
        assert log.first("missing") is None

    def test_span(self):
        log = EventLog()
        assert log.span() == 0.0
        log.record(1.5, "x")
        assert log.span() == 0.0
        log.record(4.0, "y")
        assert log.span() == pytest.approx(2.5)

    def test_out_of_order_rejected(self):
        log = EventLog()
        log.record(5.0, "x")
        with pytest.raises(ValueError, match="recorded after"):
            log.record(1.0, "y")

    def test_where(self):
        log = EventLog()
        for t in range(5):
            log.record(float(t), "tick", n=t)
        assert len(log.where(lambda e: e.data["n"] % 2 == 0)) == 3

    def test_extend_preserves_data(self):
        src = EventLog()
        src.record(0.0, "a", k=1)
        dst = EventLog()
        dst.extend(src)
        assert dst[0].data == {"k": 1}


class TestRng:
    def test_stable_seed_is_deterministic(self):
        assert stable_seed("x", 1) == stable_seed("x", 1)
        assert stable_seed("x", 1) != stable_seed("x", 2)

    def test_spawn_rng_independent_streams(self):
        a = spawn_rng(42, "machine", 0)
        b = spawn_rng(42, "machine", 1)
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)

    def test_spawn_rng_reproducible(self):
        a = spawn_rng(7, "gen")
        b = spawn_rng(7, "gen")
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(3.0, 2.0, size=100)
        stat = RunningStat()
        for x in xs:
            stat.add(float(x))
        assert stat.count == 100
        assert stat.mean == pytest.approx(float(np.mean(xs)))
        assert stat.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert stat.min == pytest.approx(float(xs.min()))
        assert stat.max == pytest.approx(float(xs.max()))

    def test_empty(self):
        stat = RunningStat()
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
    )
    def test_merge_equals_sequential(self, left, right):
        merged_direct = RunningStat()
        for x in left + right:
            merged_direct.add(x)
        a, b = RunningStat(), RunningStat()
        for x in left:
            a.add(x)
        for x in right:
            b.add(x)
        merged = a.merge(b)
        assert merged.count == merged_direct.count
        assert merged.mean == pytest.approx(merged_direct.mean, abs=1e-6)
        assert merged.variance == pytest.approx(merged_direct.variance, rel=1e-6, abs=1e-6)


class TestStats:
    def test_mean_confidence(self):
        mean, half = mean_confidence([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half > 0

    def test_mean_confidence_degenerate(self):
        assert mean_confidence([]) == (0.0, 0.0)
        assert mean_confidence([5.0]) == (5.0, 0.0)

    def test_speedup_curve_ideal(self):
        curve = speedup_curve([1, 2, 4], [100.0, 50.0, 25.0])
        assert [pt.speedup for pt in curve] == pytest.approx([1.0, 2.0, 4.0])
        assert [pt.efficiency for pt in curve] == pytest.approx([1.0, 1.0, 1.0])

    def test_speedup_curve_without_p1(self):
        # Baseline scales the smallest-p runtime up to p=1.
        curve = speedup_curve([2, 4], [50.0, 30.0])
        assert curve[0].speedup == pytest.approx(2.0)
        assert curve[1].speedup == pytest.approx(100.0 / 30.0)

    def test_speedup_curve_sorts_input(self):
        curve = speedup_curve([4, 1], [25.0, 100.0])
        assert [pt.processors for pt in curve] == [1, 4]

    def test_speedup_curve_empty(self):
        assert speedup_curve([], []) == []

    def test_speedup_rejects_nonpositive_processors(self):
        with pytest.raises(ValueError):
            speedup_curve([0, 1], [1.0, 1.0])

    def test_zero_runtime_gives_inf(self):
        curve = speedup_curve([1, 2], [10.0, 0.0])
        assert math.isinf(curve[1].speedup)
