"""Tests for the DPRml application: config, staged DataManager protocol,
distributed-vs-sequential agreement, multi-instance runs."""

import pytest

from repro.apps.dprml import (
    DPRmlAlgorithm,
    DPRmlConfig,
    DPRmlDataManager,
    build_problem,
    run_dprml,
    run_many_dprml,
)
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.phylo.stepwise import StepwiseSearch
from repro.bio.phylo.tree import parse_newick, rf_distance
from repro.core.client import run_to_completion
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from repro.util.config import ConfigFile


@pytest.fixture(scope="module")
def dataset():
    true = random_yule_tree(7, seed=101, mean_branch=0.15)
    alignment = simulate_alignment(true, JC69(), 400, seed=102)
    return true, alignment


JC_CONFIG = DPRmlConfig(model="jc69")


class TestConfig:
    def test_defaults(self):
        cfg = DPRmlConfig()
        assert cfg.model == "hky85"
        assert cfg.rates().categories == 1  # alpha=0 disables gamma

    def test_gamma_enabled(self):
        cfg = DPRmlConfig(gamma_alpha=0.5, gamma_categories=4)
        assert cfg.rates().categories == 4

    def test_from_config_file(self):
        cfg = DPRmlConfig.from_config(
            ConfigFile.from_text(
                "model = gtr\nkappa = 3\ngamma_alpha = 0.7\nlocal_passes = 2\n"
            )
        )
        assert cfg.model == "gtr"
        assert cfg.local_passes == 2
        assert cfg.substitution_model().name == "GTR"

    def test_validation(self):
        with pytest.raises(ValueError):
            DPRmlConfig(model="parsimony")
        with pytest.raises(ValueError):
            DPRmlConfig(kappa=0)
        with pytest.raises(ValueError):
            DPRmlConfig(freqs=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            DPRmlConfig(gamma_alpha=-1)

    def test_model_frequencies_passed_through(self):
        cfg = DPRmlConfig(model="hky85", freqs=(0.4, 0.1, 0.1, 0.4))
        model = cfg.substitution_model()
        assert model.freqs[0] == pytest.approx(0.4)


class TestDataManagerProtocol:
    @staticmethod
    def _settle_init(dm):
        """Drive the INIT polish barrier with a pass-through result."""
        from repro.core.workunit import WorkResult

        unit = dm.next_unit(100)
        assert unit.payload[0] == "polish"
        newick = unit.payload[1]
        dm.handle_result(WorkResult(0, 0, ("polish", (newick, -1.0)), items=1))

    def test_stage_sizes(self, dataset):
        _true, alignment = dataset
        dm = DPRmlDataManager(alignment, JC_CONFIG)
        # 7 taxa: init polish + stages of 3,5,7,9 placements + final polish
        assert dm.total_items() == 2 + 3 + 5 + 7 + 9

    def test_init_polish_is_a_barrier(self, dataset):
        _true, alignment = dataset
        dm = DPRmlDataManager(alignment, JC_CONFIG)
        first = dm.next_unit(100)
        assert first.payload[0] == "polish"
        assert dm.next_unit(100) is None  # nothing until the polish returns

    def test_barrier_blocks_next_stage(self, dataset):
        _true, alignment = dataset
        dm = DPRmlDataManager(alignment, JC_CONFIG)
        self._settle_init(dm)
        first = dm.next_unit(100)  # grabs the whole first stage
        assert first.payload[0] == "place"
        assert first.items == 3
        assert dm.next_unit(100) is None  # barrier until results return

    def test_batching_respects_max_items(self, dataset):
        _true, alignment = dataset
        dm = DPRmlDataManager(alignment, JC_CONFIG)
        self._settle_init(dm)
        unit = dm.next_unit(2)
        assert unit.items == 2
        unit2 = dm.next_unit(2)
        assert unit2.items == 1  # stage had 3 placements

    def test_too_few_taxa(self, dataset):
        _true, alignment = dataset
        with pytest.raises(ValueError, match="four"):
            DPRmlDataManager(alignment.subset(alignment.names[:3]), JC_CONFIG)

    def test_order_seed_changes_order(self, dataset):
        _true, alignment = dataset
        a = DPRmlDataManager(alignment, DPRmlConfig(model="jc69", order_seed=1))
        b = DPRmlDataManager(alignment, DPRmlConfig(model="jc69", order_seed=2))
        c = DPRmlDataManager(alignment, DPRmlConfig(model="jc69", order_seed=1))
        assert a.order == c.order
        assert a.order != b.order


class TestEndToEnd:
    def test_distributed_matches_sequential(self, dataset):
        """The distributed staged search must produce exactly the tree
        the sequential StepwiseSearch finds for the same order."""
        _true, alignment = dataset
        sequential = StepwiseSearch(alignment, JC69()).run()

        server = TaskFarmServer(policy=FixedGranularity(2), lease_timeout=1e9)
        pid = server.submit(build_problem(alignment, JC_CONFIG), 0.0)
        run_to_completion(server, donors=3)
        report = server.final_result(pid)

        distributed_tree = parse_newick(report.newick)
        assert rf_distance(distributed_tree, sequential.tree) == 0
        assert report.log_likelihood == pytest.approx(
            sequential.log_likelihood, abs=0.5
        )
        assert report.evaluations == sequential.total_evaluations

    def test_recovers_true_topology(self, dataset):
        true, alignment = dataset
        report = run_dprml(alignment, JC_CONFIG, workers=3)
        inferred = parse_newick(report.newick)
        assert rf_distance(true, inferred) <= 2

    def test_loglik_matches_reevaluation(self, dataset):
        _true, alignment = dataset
        report = run_dprml(alignment, JC_CONFIG, workers=2)
        tree = parse_newick(report.newick)
        tl = TreeLikelihood(tree, alignment.subset(tree.leaf_names()), JC69())
        assert tl.log_likelihood() == pytest.approx(report.log_likelihood, rel=1e-9)

    def test_multiple_instances(self, dataset):
        _true, alignment = dataset
        reports = run_many_dprml(alignment, instances=3, config=JC_CONFIG, workers=3)
        assert len(reports) == 3
        orders = {tuple(r.addition_order) for r in reports}
        assert len(orders) == 3  # different stochastic orders
        for report in reports:
            assert report.log_likelihood < 0
            assert sorted(parse_newick(report.newick).leaf_names()) == sorted(
                alignment.names
            )

    def test_run_many_validation(self, dataset):
        _true, alignment = dataset
        with pytest.raises(ValueError):
            run_many_dprml(alignment, instances=0)


class TestAlgorithmTasks:
    def test_polish_task(self, dataset):
        _true, alignment = dataset
        algo = DPRmlAlgorithm(JC_CONFIG, alignment)
        tree = random_yule_tree(7, seed=101, mean_branch=0.15)
        for node, name in zip(tree.leaves(), alignment.names):
            node.name = name
        kind, (newick, loglik) = algo.compute(("polish", tree.newick(), 1))
        assert kind == "polish"
        before = TreeLikelihood(
            parse_newick(tree.newick()), alignment, JC69()
        ).log_likelihood()
        assert loglik >= before

    def test_unknown_task_kind(self, dataset):
        _true, alignment = dataset
        algo = DPRmlAlgorithm(JC_CONFIG, alignment)
        with pytest.raises(ValueError, match="unknown DPRml task"):
            algo.compute(("bogus",))

    def test_cost_positive_and_scales(self, dataset):
        _true, alignment = dataset
        algo = DPRmlAlgorithm(JC_CONFIG, alignment)
        tree = random_yule_tree(7, seed=1)
        nw = tree.newick()
        one = algo.cost(("place", nw, "t", (0,)))
        three = algo.cost(("place", nw, "t", (0, 1, 2)))
        assert three == pytest.approx(3 * one)
        assert algo.cost(("polish", nw, 2)) > 0
