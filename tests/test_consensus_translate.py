"""Tests for consensus trees and genetic-code translation."""

import pytest

from repro.bio.phylo.consensus import (
    majority_consensus,
    majority_splits,
    strict_consensus,
)
from repro.bio.phylo.tree import Tree, TreeError, parse_newick
from repro.bio.seq import PROTEIN
from repro.bio.seq.sequence import dna
from repro.bio.seq.translate import (
    GENETIC_CODE,
    open_reading_frames,
    six_frame_translations,
    translate,
    translate_codon,
)

T_AB = "((a:1,b:1):1,(c:1,d:1):1,e:1);"       # splits: {ab}, {cd}
T_AB2 = "((a:1,b:1):1,(c:1,e:1):1,d:1);"      # splits: {ab}, {ce}
T_AC = "((a:1,c:1):1,(b:1,d:1):1,e:1);"       # splits: {ac}, {bd}


class TestMajoritySplits:
    def test_counts(self):
        trees = [parse_newick(t) for t in (T_AB, T_AB, T_AB2)]
        splits = majority_splits(trees)
        freq = {tuple(sorted(s.split)): s.frequency for s in splits}
        assert freq[("a", "b")] == pytest.approx(1.0)
        assert freq[("c", "d")] == pytest.approx(2 / 3)
        assert ("c", "e") not in freq  # only 1/3

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_splits([])
        with pytest.raises(TreeError, match="common leaf set"):
            majority_splits([parse_newick(T_AB), Tree.star(["x", "y", "z"])])
        with pytest.raises(ValueError):
            majority_splits([parse_newick(T_AB)], threshold=0.3)


class TestMajorityConsensus:
    def test_unanimous_trees_reproduce_topology(self):
        trees = [parse_newick(T_AB) for _ in range(5)]
        consensus, splits = majority_consensus(trees)
        assert consensus.splits() == trees[0].splits()
        assert all(s.frequency == 1.0 for s in splits)

    def test_minority_split_collapses(self):
        trees = [parse_newick(t) for t in (T_AB, T_AB2, T_AC)]
        consensus, splits = majority_consensus(trees)
        # {ab} appears 2/3 -> kept; everything else 1/3 -> polytomy.
        assert consensus.splits() == {frozenset({"a", "b"})}
        assert len(splits) == 1

    def test_support_labels_on_internal_nodes(self):
        trees = [parse_newick(t) for t in (T_AB, T_AB, T_AB2)]
        consensus, _splits = majority_consensus(trees)
        labels = {
            n.name for n in consensus.nodes() if not n.is_leaf and n.name
        }
        assert "100" in labels  # the {a,b} clade
        assert "67" in labels   # the {c,d} clade

    def test_leafset_preserved(self):
        trees = [parse_newick(t) for t in (T_AB, T_AB2, T_AC)]
        consensus, _ = majority_consensus(trees)
        assert sorted(consensus.leaf_names()) == ["a", "b", "c", "d", "e"]

    def test_strict_consensus(self):
        trees = [parse_newick(t) for t in (T_AB, T_AB2)]
        consensus, splits = strict_consensus(trees)
        # only {a,b} is in *every* tree
        assert consensus.splits() == {frozenset({"a", "b"})}
        assert len(splits) == 1


class TestGeneticCode:
    def test_code_is_complete(self):
        assert len(GENETIC_CODE) == 64
        counts = {}
        for aa in GENETIC_CODE.values():
            counts[aa] = counts.get(aa, 0) + 1
        assert counts["*"] == 3       # three stops
        assert counts["M"] == 1       # one start/Met
        assert counts["W"] == 1
        assert counts["L"] == 6
        assert counts["R"] == 6
        assert counts["S"] == 6

    def test_translate_codon(self):
        assert translate_codon("ATG") == "M"
        assert translate_codon("TAA") == "*"
        assert translate_codon("GCN") == "X"  # ambiguous base
        with pytest.raises(ValueError):
            translate_codon("AT")

    def test_every_amino_acid_is_protein_letter(self):
        for aa in set(GENETIC_CODE.values()) - {"*"}:
            assert aa in PROTEIN.letters


class TestTranslate:
    def test_simple(self):
        seq = dna("gene", "ATGGCCTAA")  # Met-Ala-Stop
        assert str(translate(seq)) == "MAX"  # stop -> X by default
        assert str(translate(seq, to_stop=True)) == "MA"

    def test_frames(self):
        seq = dna("s", "AATGGCC")
        assert str(translate(seq, frame=1)) == "MA"

    def test_validation(self):
        from repro.bio.seq.sequence import protein

        with pytest.raises(ValueError, match="DNA"):
            translate(protein("p", "MA"))
        with pytest.raises(ValueError, match="frame"):
            translate(dna("s", "ATGGCC"), frame=3)
        with pytest.raises(ValueError, match="no complete codon"):
            translate(dna("s", "AT"))

    def test_six_frames(self):
        seq = dna("s", "ATGGCCGATTGA")
        frames = six_frame_translations(seq)
        assert len(frames) == 6
        assert all(f.alphabet == PROTEIN for f in frames)
        names = {f.seq_id for f in frames}
        assert "s_f0" in names and "s_rc2" in names


class TestORFs:
    def test_finds_planted_orf(self):
        # ATG + 5 codons + stop, embedded in junk.
        orf_dna = "ATG" + "GCC" * 5 + "TAA"
        seq = dna("s", "TTTT" + orf_dna + "CCCC")
        orfs = open_reading_frames(seq, min_codons=5)
        assert any(str(o) == "M" + "A" * 5 for o in orfs)

    def test_min_codons_filter(self):
        seq = dna("s", "TTTTATGGCCTAACCCC")  # 2-codon ORF
        assert open_reading_frames(seq, min_codons=5) == []
        assert open_reading_frames(seq, min_codons=2)

    def test_reverse_strand_orf(self):
        orf_dna = "ATG" + "GAT" * 6 + "TGA"
        seq = dna("s", "ACGT" + orf_dna + "ACGT").reverse_complement()
        orfs = open_reading_frames(seq, min_codons=6)
        assert any(o.seq_id.startswith("s_orf-") for o in orfs)

    def test_validation(self):
        with pytest.raises(ValueError):
            open_reading_frames(dna("s", "ATG"), min_codons=0)
