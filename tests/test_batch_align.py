"""Batched multi-subject alignment: bit-exactness against the scalar
kernels, bucketing invariants, deterministic top-k, cost-model/meter
consistency, and the donor→server unit-stat plumbing."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dsearch import DSearchAlgorithm, DSearchConfig, build_problem
from repro.apps.dsearch.translated import build_translated_problem
from repro.bio.align.banded import banded_global_score
from repro.bio.align.batch import (
    BucketPlan,
    SubjectBucket,
    banded_model_cells,
    batched_scores,
    plan_buckets,
    use_batched,
)
from repro.bio.align.hits import Hit, TopK
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.scoring import blosum62, dna_scheme
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq import DNA, PROTEIN
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.bio.seq.sequence import Sequence
from repro.core.client import run_to_completion
from repro.core.server import TaskFarmServer
from repro.core.workunit import WorkResult
from repro.obs import unitstats


def _make_seqs(seed, m, lengths, alphabet):
    rng = np.random.default_rng(seed)
    query = random_sequence("q0", m, alphabet, rng)
    subjects = [
        random_sequence(f"s{i:03d}", length, alphabet, rng)
        for i, length in enumerate(lengths)
    ]
    return query, subjects


def _full_plan(lengths):
    """One ragged bucket holding every subject (worst-case padding)."""
    return BucketPlan(tuple(range(len(lengths))), tuple(lengths), max(lengths))


def _scalar(query, subject, scheme, mode, band):
    if mode == "sw":
        return smith_waterman_score(query, subject, scheme)
    if mode == "nw":
        return needleman_wunsch_score(query, subject, scheme)
    return banded_global_score(query, subject, scheme, band=band)


class TestBatchedExactness:
    """batched_scores must equal the scalar kernels *bit for bit*."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 40),
        lengths=st.lists(st.integers(1, 60), min_size=1, max_size=10),
        mode=st.sampled_from(["sw", "nw", "banded"]),
        protein=st.booleans(),
        both=st.booleans(),
        band=st.integers(0, 8),
    )
    def test_matches_scalar(self, seed, m, lengths, mode, protein, both, band):
        alphabet = PROTEIN if protein else DNA
        scheme = blosum62() if protein else dna_scheme()
        both = both and not protein
        query, subjects = _make_seqs(seed, m, lengths, alphabet)
        variants = [query] + ([query.reverse_complement()] if both else [])
        bucket = SubjectBucket(_full_plan(lengths), subjects)
        band_arg = band if mode == "banded" else None
        got = batched_scores(
            variants, bucket, scheme, local=(mode == "sw"), band=band_arg
        )
        assert got.shape == (len(variants), len(subjects))
        for vi, variant in enumerate(variants):
            for si, subject in enumerate(subjects):
                assert got[vi, si] == _scalar(variant, subject, scheme, mode, band)

    def test_single_subject_and_uniform_lengths(self):
        scheme = dna_scheme()
        query, subjects = _make_seqs(5, 24, [17], DNA)
        bucket = SubjectBucket(_full_plan([17]), subjects)
        got = batched_scores([query], bucket, scheme, local=True)
        assert got[0, 0] == smith_waterman_score(query, subjects[0], scheme)

        query, subjects = _make_seqs(6, 24, [30] * 8, DNA)
        bucket = SubjectBucket(_full_plan([30] * 8), subjects)
        got = batched_scores([query], bucket, scheme, local=False)
        for si, subject in enumerate(subjects):
            assert got[0, si] == needleman_wunsch_score(query, subject, scheme)

    def test_input_validation(self):
        scheme = dna_scheme()
        query, subjects = _make_seqs(7, 12, [10, 20], DNA)
        bucket = SubjectBucket(_full_plan([10, 20]), subjects)
        with pytest.raises(ValueError, match="at least one"):
            batched_scores([], bucket, scheme, local=True)
        with pytest.raises(ValueError, match="global"):
            batched_scores([query], bucket, scheme, local=True, band=4)
        short = random_sequence("short", 5, DNA, np.random.default_rng(0))
        with pytest.raises(ValueError, match="share one length"):
            batched_scores([query, short], bucket, scheme, local=False)
        protein_query = random_sequence("p", 12, PROTEIN, np.random.default_rng(0))
        with pytest.raises(ValueError, match="alphabet"):
            batched_scores([protein_query], bucket, scheme, local=False)
        with pytest.raises(ValueError, match="alphabet"):
            batched_scores([query], bucket, blosum62(), local=False)
        empty = Sequence("e", np.empty(0, dtype=np.uint8), DNA)
        with pytest.raises(ValueError, match="empty"):
            SubjectBucket(BucketPlan((0,), (0,), 0), [empty])
        with pytest.raises(ValueError, match="alphabet"):
            SubjectBucket(_full_plan([10, 12]), [subjects[0], protein_query])


class TestPlanBuckets:
    @settings(max_examples=60, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, 5000), min_size=0, max_size=150),
        waste_cap=st.floats(0.0, 0.9),
        max_bucket=st.integers(1, 64),
    )
    def test_partition_and_waste_invariants(self, lengths, waste_cap, max_bucket):
        plans = plan_buckets(lengths, waste_cap, max_bucket)
        covered = sorted(i for plan in plans for i in plan.indices)
        assert covered == list(range(len(lengths)))
        for plan in plans:
            assert 1 <= plan.size <= max_bucket
            assert plan.width == max(plan.lengths)
            assert all(
                lengths[i] == length
                for i, length in zip(plan.indices, plan.lengths)
            )
            if plan.size > 1:
                padded = plan.padded_cells(1)
                waste = padded - plan.effective_cells(1)
                assert waste <= waste_cap * padded + 1e-9

    def test_deterministic_and_empty(self):
        lengths = [300, 40, 41, 44, 2000, 39, 300]
        assert plan_buckets(lengths) == plan_buckets(lengths)
        assert plan_buckets([]) == []

    def test_outlier_isolated(self):
        lengths = [50] * 100 + [10_000]
        plans = plan_buckets(lengths, waste_cap=0.25)
        outlier = [p for p in plans if 10_000 in p.lengths]
        assert len(outlier) == 1 and outlier[0].size == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_buckets([10], waste_cap=1.0)
        with pytest.raises(ValueError):
            plan_buckets([10], max_bucket=0)

    def test_use_batched_rules(self):
        pair = _full_plan([100, 100])
        single = _full_plan([100])
        assert use_batched(pair, 100, "sw", 0)
        assert not use_batched(single, 100, "sw", 0)
        # Narrow band over long similar-length subjects: full-width
        # sweeping costs far more than the band — stay scalar.
        assert not use_batched(_full_plan([1000] * 8), 1000, "banded", 8)
        # Band wide relative to the matrix: batch.
        assert use_batched(_full_plan([60] * 8), 60, "banded", 40)


class TestTopKDeterminism:
    def _hits(self):
        # Deliberate score ties across distinct subjects.
        return [
            Hit("q", f"s{i:02d}", score)
            for i, score in enumerate([5.0, 3.0, 5.0, 1.0, 3.0, 3.0, 7.0, 5.0])
        ]

    def test_order_independent(self):
        hits = self._hits()
        expected = None
        rng = random.Random(11)
        for _ in range(20):
            shuffled = hits[:]
            rng.shuffle(shuffled)
            top = TopK(4)
            top.extend(shuffled)
            best = top.best()
            if expected is None:
                expected = best
            assert best == expected

    def test_tie_prefers_smaller_subject_id(self):
        for order in ([0, 1], [1, 0]):
            top = TopK(1)
            candidates = [Hit("q", "s_b", 9.0), Hit("q", "s_a", 9.0)]
            for i in order:
                top.offer(candidates[i])
            assert top.best()[0].subject_id == "s_a"

    def test_identical_hits_do_not_crash(self):
        # Fully equal keys force the heap to its final tiebreaker; it
        # must never compare Hit objects themselves.
        top = TopK(3)
        for _ in range(10):
            top.offer(Hit("q", "s", 1.0))
        assert len(top.best()) == 3


class TestCostModel:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(21)
        queries = [
            random_sequence("qa", 90, DNA, rng),
            random_sequence("qb", 140, DNA, rng),
        ]
        database = [
            random_sequence(f"d{i:03d}", int(length), DNA, rng)
            for i, length in enumerate(rng.integers(20, 400, size=50))
        ]
        return queries, database

    @pytest.mark.parametrize("algorithm", ["sw", "nw", "banded"])
    @pytest.mark.parametrize("both_strands", [False, True])
    def test_cost_equals_cells_charged_to_meters(
        self, workload, algorithm, both_strands
    ):
        """cost() must charge exactly the cells compute() reports filling."""
        queries, database = workload
        cfg = DSearchConfig(
            algorithm=algorithm, both_strands=both_strands, band=16, top_hits=5
        )
        algo = DSearchAlgorithm(cfg)
        payload = (queries, database)
        with unitstats.collect() as stats:
            algo.compute(payload)
        assert stats["farm.align.cells.padded"] == algo.cost(payload)
        assert stats["farm.align.cells.effective"] <= stats["farm.align.cells.padded"]

    def test_banded_cost_widens_per_pair_without_batching(self, workload):
        """Length-mismatched pairs widen the band; a band wider than the
        matrix degenerates to the full sweep (the scalar kernels'
        actual behaviour, which cost() must mirror)."""
        _, database = workload
        query = random_sequence("q", 100, DNA, np.random.default_rng(3))
        subject = random_sequence("s", 10, DNA, np.random.default_rng(4))
        cfg = DSearchConfig(algorithm="banded", band=2, batch=False)
        cost = DSearchAlgorithm(cfg).cost(([query], [subject]))
        # band widens to |100-10|=90 > matrix: full 100×10 sweep.
        assert cost == 100 * 10
        assert banded_model_cells(100, [10], 2) == 100 * 10


class TestSearchEquivalence:
    """Whole-application check: batch on/off give identical hit lists."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(7)
        query = random_sequence("query0", 120, DNA, rng)
        database, homolog_ids = seeded_database(
            query, decoy_count=60, homolog_count=3, seed=13
        )
        extra_query = random_sequence("query1", 75, DNA, rng)
        return [query, extra_query], database, homolog_ids

    @pytest.mark.parametrize("algorithm", ["sw", "nw", "banded"])
    @pytest.mark.parametrize("both_strands", [False, True])
    def test_identical_hit_lists(self, workload, algorithm, both_strands):
        queries, database, homolog_ids = workload
        kwargs = dict(
            algorithm=algorithm, both_strands=both_strands, band=12, top_hits=8
        )
        batched = DSearchAlgorithm(DSearchConfig(batch=True, **kwargs))
        scalar = DSearchAlgorithm(DSearchConfig(batch=False, **kwargs))
        payload = (queries, database)
        got, want = batched.compute(payload), scalar.compute(payload)
        assert got == want
        if algorithm == "sw":
            top = {h.subject_id for h in got["query0"][: len(homolog_ids)]}
            assert top == set(homolog_ids)

    def test_translated_search_identical(self):
        rng = np.random.default_rng(31)
        protein_db = [
            random_sequence(f"p{i:02d}", int(length), PROTEIN, rng)
            for i, length in enumerate(rng.integers(25, 90, size=20))
        ]
        dna_queries = [
            random_sequence("dq0", 60, DNA, rng),
            random_sequence("dq1", 45, DNA, rng),
        ]
        reports = {}
        for batch in (True, False):
            config = DSearchConfig(scoring="blosum62", batch=batch, top_hits=4)
            server = TaskFarmServer()
            pid = server.submit(
                build_translated_problem(protein_db, dna_queries, config)
            )
            run_to_completion(server, donors=2)
            reports[batch] = server.final_result(pid)
        assert reports[True].hits == reports[False].hits


class TestMeterPlumbing:
    def test_record_is_noop_outside_collect(self):
        unitstats.record("farm.align.cells.effective", 5.0)  # must not raise

    def test_collect_nests(self):
        with unitstats.collect() as outer:
            unitstats.record("a", 1.0)
            with unitstats.collect() as inner:
                unitstats.record("a", 2.0)
            unitstats.record("a", 4.0)
        assert inner == {"a": 2.0}
        assert outer == {"a": 5.0}

    def test_server_folds_only_align_counters(self):
        server = TaskFarmServer()
        server._fold_unit_meters(
            WorkResult(
                problem_id=0,
                unit_id=0,
                value=None,
                extra={
                    "meters": {
                        "farm.align.cells.effective": 10.0,
                        "farm.align.cells.padded": 12.5,
                        "farm.units.completed": 100.0,  # forged: ignored
                        "farm.align.bogus.negative": -5.0,
                        "farm.align.bogus.nan": float("nan"),
                        "farm.align.bogus.inf": math.inf,
                        42: 1.0,
                    }
                },
            )
        )
        counters = server.obs.meters.snapshot()["counters"]
        assert counters["farm.align.cells.effective"] == 10.0
        assert counters["farm.align.cells.padded"] == 12.5
        assert counters.get("farm.units.completed", 0.0) == 0.0
        assert "farm.align.bogus.negative" not in counters
        assert "farm.align.bogus.nan" not in counters
        assert "farm.align.bogus.inf" not in counters

    def test_end_to_end_through_donor_client(self):
        rng = np.random.default_rng(17)
        query = random_sequence("query0", 80, DNA, rng)
        database, _ = seeded_database(query, decoy_count=30, homolog_count=2, seed=5)
        server = TaskFarmServer()
        server.submit(build_problem(database, [query], DSearchConfig(top_hits=3)))
        run_to_completion(server, donors=3)
        counters = server.obs.meters.snapshot()["counters"]
        effective = counters["farm.align.cells.effective"]
        padded = counters["farm.align.cells.padded"]
        assert 0 < effective <= padded
        assert counters["farm.align.buckets.batched"] >= 1

    def test_sim_cluster_folds_meters(self):
        from repro.cluster.sim import SimCluster, homogeneous_pool

        rng = np.random.default_rng(19)
        query = random_sequence("query0", 60, DNA, rng)
        database, _ = seeded_database(query, decoy_count=20, homolog_count=2, seed=3)
        cluster = SimCluster(homogeneous_pool(3), seed=1, execute=True)
        cluster.submit(build_problem(database, [query], DSearchConfig(top_hits=3)))
        report = cluster.run()
        assert report.completed
        counters = cluster.server.obs.meters.snapshot()["counters"]
        assert counters["farm.align.cells.effective"] > 0
        assert (
            counters["farm.align.cells.effective"]
            <= counters["farm.align.cells.padded"]
        )
