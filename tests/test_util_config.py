"""Tests for the key=value configuration file format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.config import ConfigError, ConfigFile, required


class TestParsing:
    def test_basic_pairs(self):
        cfg = ConfigFile.from_text("a = 1\nb = two\n")
        assert cfg["a"] == "1"
        assert cfg["b"] == "two"
        assert len(cfg) == 2

    def test_comments_and_blanks_ignored(self):
        cfg = ConfigFile.from_text("# header\n\na = 1  # trailing\n   \n")
        assert dict(cfg) == {"a": "1"}

    def test_whitespace_stripped(self):
        cfg = ConfigFile.from_text("  key   =   some value  \n")
        assert cfg["key"] == "some value"

    def test_value_may_contain_equals(self):
        cfg = ConfigFile.from_text("expr = a=b\n")
        assert cfg["expr"] == "a=b"

    def test_missing_equals_is_error(self):
        with pytest.raises(ConfigError, match="expected 'key = value'"):
            ConfigFile.from_text("just a line\n")

    def test_empty_key_is_error(self):
        with pytest.raises(ConfigError, match="empty key"):
            ConfigFile.from_text("= value\n")

    def test_duplicate_key_is_error(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ConfigFile.from_text("a = 1\na = 2\n")

    def test_error_names_line_number(self):
        with pytest.raises(ConfigError, match=":3:"):
            ConfigFile.from_text("a = 1\nb = 2\nbroken\n")

    def test_from_path(self, tmp_path):
        path = tmp_path / "app.conf"
        path.write_text("x = 9\n")
        cfg = ConfigFile.from_path(path)
        assert cfg.get_int("x") == 9


class TestTypedAccessors:
    def setup_method(self):
        self.cfg = ConfigFile.from_text(
            "n = 42\nratio = 2.5\nflag = yes\noff = 0\nalgo = sw\n"
        )

    def test_get_int(self):
        assert self.cfg.get_int("n") == 42

    def test_get_int_bad_value(self):
        with pytest.raises(ConfigError, match="expects an integer"):
            self.cfg.get_int("algo")

    def test_get_float(self):
        assert self.cfg.get_float("ratio") == pytest.approx(2.5)
        assert self.cfg.get_float("n") == pytest.approx(42.0)

    def test_get_bool_variants(self):
        assert self.cfg.get_bool("flag") is True
        assert self.cfg.get_bool("off") is False

    def test_get_bool_bad_value(self):
        with pytest.raises(ConfigError, match="expects a boolean"):
            self.cfg.get_bool("algo")

    def test_get_choice(self):
        assert self.cfg.get_choice("algo", ("nw", "sw")) == "sw"

    def test_get_choice_rejects_unknown(self):
        with pytest.raises(ConfigError, match="must be one of"):
            self.cfg.get_choice("algo", ("nw", "banded"))

    def test_defaults_used_when_absent(self):
        assert self.cfg.get_int("missing", 7) == 7
        assert self.cfg.get_str("missing", "d") == "d"
        assert self.cfg.get_bool("missing", True) is True

    def test_required_sentinel_raises(self):
        with pytest.raises(ConfigError, match="missing required key"):
            self.cfg.get_int("absent", required())

    def test_require_lists_all_missing(self):
        with pytest.raises(ConfigError, match="alpha, beta"):
            self.cfg.require("n", "alpha", "beta")


_KEY = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=12,
)
_VALUE = st.text(
    alphabet=st.characters(blacklist_characters="#\n\r=", blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=30,
).map(str.strip).filter(bool)


@given(st.dictionaries(_KEY, _VALUE, min_size=1, max_size=12))
def test_roundtrip_through_text(pairs):
    """to_text() output parses back to the same mapping."""
    cfg = ConfigFile(pairs)
    reparsed = ConfigFile.from_text(cfg.to_text())
    assert dict(reparsed) == pairs
