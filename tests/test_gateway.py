"""The multi-tenant job gateway: admission control, the job lifecycle,
cancel cleanup, weighted fair-share dispatch, and durability.

The headline properties:

- **Equivalence**: per-problem results assembled through the gateway are
  bit-identical to direct ``server.submit`` runs (the fair-share policy
  reorders dispatch, never results) — for both target applications,
  across seeds.
- **Fairness**: while every tenant has eligible work, delivered work
  items split in proportion to tenant weights (and, as a regression
  test, a sustained stream of high-priority submissions can no longer
  starve a low-priority problem the way the old strict priority-class
  round robin did).
- **Durability**: a crashed gateway rebuilt from journal replay (or
  checkpoint + tail) restores its queue and tenant accounting exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.dprml import DPRmlConfig
from repro.apps.dprml import build_problem as build_dprml_problem
from repro.apps.dsearch import DSearchConfig
from repro.apps.dsearch import build_problem as build_dsearch_problem
from repro.bio.phylo.models import JC69
from repro.bio.phylo.simulate import random_yule_tree, simulate_alignment
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.local import ServerFacade
from repro.cluster.sim import SimCluster, heterogeneous_pool, homogeneous_pool
from repro.core.gateway import (
    AdmissionError,
    JobGateway,
    JobStatus,
    TenantConfig,
    WeightedFairShare,
    parse_tenants,
)
from repro.core.integrity import IntegrityPolicy, canonical_digest
from repro.core.journal import JournalError, JournalWriter, MemoryStore, recover
from repro.core.checkpoint import dumps_checkpoint
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity, ProblemRoundRobin
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from repro.rmi.datachannel import DataChannelServer
from repro.util.config import ConfigError, ConfigFile
from tests.helpers import RangeSumAlgorithm, RangeSumDataManager


def make_server(**kwargs) -> TaskFarmServer:
    kwargs.setdefault("policy", FixedGranularity(10))
    kwargs.setdefault("lease_timeout", 100.0)
    return TaskFarmServer(**kwargs)


def sum_problem(n=100, name="sum") -> Problem:
    return Problem(name, RangeSumDataManager(n), RangeSumAlgorithm())


def compute(assignment, donor="d0") -> WorkResult:
    lo, hi = assignment.payload
    return WorkResult(
        problem_id=assignment.problem_id,
        unit_id=assignment.unit_id,
        value=sum(range(lo, hi)),
        donor_id=donor,
        compute_seconds=1.0,
        items=assignment.items,
    )


def counters(server) -> dict:
    return server.obs.meters.snapshot()["counters"]


def gauges(server) -> dict:
    return server.obs.meters.snapshot()["gauges"]


def drive_jobs_to_completion(server, gateway, donor="driver", t=100.0):
    """Pull and fold units until no job is queued or running."""
    server.register_donor(donor, t)
    for _ in range(10_000):
        if not gateway.has_open_jobs():
            return t
        a = server.request_work(donor, (t := t + 0.1))
        if a is None:
            server.expire_leases((t := t + server.leases.timeout))
            gateway.pump(t)
            continue
        server.submit_result(compute(a, donor), (t := t + 0.1))
        gateway.pump(t)
    raise AssertionError("jobs did not finish")


# ---------------------------------------------------------------------------
# Tenant config parsing


class TestParseTenants:
    def test_parses_weights_and_quotas(self, tmp_path):
        path = tmp_path / "tenants.conf"
        path.write_text(
            "tenant.alice.weight = 1\n"
            "tenant.bob.weight = 2\n"
            "tenant.bob.max_running = 3\n"
            "tenant.carol.weight = 4\n"
            "tenant.carol.max_inflight_items = 500\n"
            "lease.timeout = 300\n"  # non-tenant keys are ignored
        )
        tenants = {t.tenant_id: t for t in parse_tenants(ConfigFile.from_path(path))}
        assert set(tenants) == {"alice", "bob", "carol"}
        assert tenants["alice"] == TenantConfig("alice", weight=1.0)
        assert tenants["bob"].weight == 2.0 and tenants["bob"].max_running == 3
        assert tenants["carol"].max_inflight_items == 500

    def test_unknown_tenant_field_fails_loudly(self, tmp_path):
        path = tmp_path / "tenants.conf"
        path.write_text("tenant.alice.wieght = 1\n")
        with pytest.raises(ConfigError, match="bad tenant key"):
            parse_tenants(ConfigFile.from_path(path))

    def test_invalid_value_is_a_config_error(self, tmp_path):
        path = tmp_path / "tenants.conf"
        path.write_text("tenant.alice.weight = -2\n")
        with pytest.raises(ConfigError, match="weight must be > 0"):
            parse_tenants(ConfigFile.from_path(path))

    def test_tenant_config_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TenantConfig("a", weight=0.0)
        with pytest.raises(ValueError, match="max_running"):
            TenantConfig("a", max_running=0)
        with pytest.raises(ValueError, match="max_inflight_items"):
            TenantConfig("a", max_inflight_items=0)
        with pytest.raises(ValueError, match="tenant_id"):
            TenantConfig("")


# ---------------------------------------------------------------------------
# Admission control


class TestAdmission:
    def test_unknown_tenant_rejected(self):
        gateway = JobGateway(make_server(), [TenantConfig("a")])
        with pytest.raises(KeyError, match="unknown tenant"):
            gateway.submit_job("ghost", sum_problem(10), now=0.0)

    def test_queue_full_rejects_with_retry_after(self):
        server = make_server()
        gateway = JobGateway(
            server,
            [TenantConfig("a", max_running=1, max_pending=2)],
            retry_after=7.5,
        )
        gateway.submit_job("a", sum_problem(10), now=0.0)  # runs
        gateway.submit_job("a", sum_problem(10), now=0.0)  # queued
        gateway.submit_job("a", sum_problem(10), now=0.0)  # queued (full)
        with pytest.raises(AdmissionError, match="admission queue full") as exc:
            gateway.submit_job("a", sum_problem(10), now=1.0)
        assert exc.value.retry_after == 7.5
        assert counters(server)["farm.gateway.jobs.rejected"] == 1
        snap = gateway.snapshot()["tenants"][0]
        assert snap["rejected"] == 1 and snap["pending"] == 2
        assert server.log.of_kind("job.rejected")

    def test_rejected_submit_does_not_burn_a_job_id(self):
        gateway = JobGateway(
            make_server(), [TenantConfig("a", max_running=1, max_pending=0)]
        )
        j1 = gateway.submit_job("a", sum_problem(10), now=0.0)
        with pytest.raises(AdmissionError):
            gateway.submit_job("a", sum_problem(10), now=0.0)
        j2_problem = sum_problem(10)
        gateway.cancel_job(j1, now=1.0)
        j2 = gateway.submit_job("a", j2_problem, now=2.0)
        assert j2 == j1 + 1

    def test_facade_rekeys_colliding_submitter_ids(self):
        # Problem ids come from a per-process counter on the submitter,
        # so two independent repro-jobs processes both ship "problem 1".
        # The RMI facade re-keys each incoming job instead of bouncing
        # the second scientist with "already submitted".
        server = make_server()
        gateway = JobGateway(server, [TenantConfig("a"), TenantConfig("b")])
        facade = ServerFacade(server, gateway=gateway)
        first = sum_problem(20, name="first")
        second = sum_problem(30, name="second")
        second.problem_id = first.problem_id  # simulate the collision
        r1 = facade.submit_job("a", first)
        r2 = facade.submit_job("b", second)
        assert r1["accepted"] and r2["accepted"]
        assert first.problem_id != second.problem_id
        assert len(server._problems) == 2
        names = {
            facade.job_status(r["job_id"])["problem_id"] for r in (r1, r2)
        }
        assert names == {first.problem_id, second.problem_id}

    def test_duplicate_problem_rejected(self):
        gateway = JobGateway(make_server(), [TenantConfig("a"), TenantConfig("b")])
        problem = sum_problem(10)
        gateway.submit_job("a", problem, now=0.0)
        with pytest.raises(ValueError, match="already submitted"):
            gateway.submit_job("b", problem, now=0.0)

    def test_gateway_and_direct_submission_share_the_id_space(self):
        server = make_server()
        gateway = JobGateway(server, [TenantConfig("a")])
        problem = sum_problem(10)
        server.submit(problem, 0.0)
        with pytest.raises(ValueError, match="already submitted"):
            gateway.submit_job("a", problem, now=0.0)

    def test_max_running_holds_jobs_queued(self):
        server = make_server()
        gateway = JobGateway(
            server, [TenantConfig("a", max_running=2, max_pending=8)]
        )
        jobs = [gateway.submit_job("a", sum_problem(10), now=0.0) for _ in range(4)]
        statuses = [gateway.job_status(j)["status"] for j in jobs]
        assert statuses == ["running", "running", "queued", "queued"]
        assert gauges(server)["farm.gateway.jobs.running"] == 2
        assert gauges(server)["farm.gateway.jobs.queued"] == 2
        # Only the two running problems exist on the server so far.
        assert len(server.active_problem_ids()) == 2


# ---------------------------------------------------------------------------
# Job lifecycle


class TestJobLifecycle:
    def test_submit_run_complete(self):
        server = make_server()
        gateway = JobGateway(server, [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(25), now=0.0)
        assert gateway.job_status(job_id)["status"] == "running"
        drive_jobs_to_completion(server, gateway)
        info = gateway.job_status(job_id)
        assert info["status"] == "done" and info["progress"] == 1.0
        assert gateway.job_result(job_id) == sum(range(25))
        assert counters(server)["farm.gateway.jobs.done"] == 1
        assert server.log.of_kind("job.started") and server.log.of_kind("job.done")

    def test_queued_job_starts_when_slot_frees(self):
        server = make_server()
        gateway = JobGateway(
            server, [TenantConfig("a", max_running=1, max_pending=8)]
        )
        first = gateway.submit_job("a", sum_problem(10), now=0.0)
        second = gateway.submit_job("a", sum_problem(10), now=1.0)
        assert gateway.job_status(second)["status"] == "queued"
        server.register_donor("d0", 2.0)
        a = server.request_work("d0", 2.0)
        server.submit_result(compute(a), 5.0)
        gateway.pump(5.0)
        assert gateway.job_status(first)["status"] == "done"
        info = gateway.job_status(second)
        assert info["status"] == "running" and info["started_at"] == 5.0
        # Queue-wait accounting: second waited from t=1 to t=5.
        snap = gateway.snapshot()["tenants"][0]
        assert snap["queue_wait_max"] == pytest.approx(4.0)
        assert snap["queue_wait_count"] == 2

    def test_failed_problem_marks_job_failed(self):
        server = make_server(max_unit_attempts=2)
        gateway = JobGateway(server, [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(10), now=0.0)
        pid = gateway.job_status(job_id)["problem_id"]
        server.register_donor("d0", 0.0)
        for t in (1.0, 2.0):
            a = server.request_work("d0", t)
            server.report_failure(pid, a.unit_id, "d0", "poison unit", t + 0.5)
        gateway.pump(3.0)
        info = gateway.job_status(job_id)
        assert info["status"] == "failed" and "poison" in info["failure"]
        assert counters(server)["farm.gateway.jobs.failed"] == 1
        with pytest.raises(RuntimeError, match="failed, not done"):
            gateway.job_result(job_id)

    def test_result_of_unfinished_job_raises(self):
        gateway = JobGateway(make_server(), [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(10), now=0.0)
        with pytest.raises(RuntimeError, match="running, not done"):
            gateway.job_result(job_id)
        with pytest.raises(KeyError, match="unknown job"):
            gateway.job_status(999)

    def test_snapshot_counts_jobs_by_status(self):
        server = make_server()
        gateway = JobGateway(
            server, [TenantConfig("a", max_running=1, max_pending=8)]
        )
        gateway.submit_job("a", sum_problem(10), now=0.0)
        gateway.submit_job("a", sum_problem(10), now=0.0)
        third = gateway.submit_job("a", sum_problem(10), now=0.0)
        gateway.cancel_job(third, now=1.0)
        snap = gateway.snapshot()
        assert snap["jobs"] == {
            "queued": 1, "running": 1, "done": 0, "failed": 0, "cancelled": 1,
        }


# ---------------------------------------------------------------------------
# Cancellation: no leaked leases, votes, gauges, or blobs


class TestCancelCleanup:
    def test_cancel_queued_job_never_reaches_server(self):
        server = make_server()
        gateway = JobGateway(
            server, [TenantConfig("a", max_running=1, max_pending=8)]
        )
        gateway.submit_job("a", sum_problem(10), now=0.0)
        queued = gateway.submit_job("a", sum_problem(10), now=0.0)
        pid = gateway.job_status(queued)["problem_id"]
        assert gateway.cancel_job(queued, now=1.0) is True
        assert gateway.job_status(queued)["status"] == "cancelled"
        assert pid not in server._problems
        assert counters(server)["farm.gateway.jobs.cancelled"] == 1

    def test_cancel_running_job_sweeps_leases_votes_and_gauges(self):
        server = make_server(
            integrity=IntegrityPolicy(replication=2, quorum=2)
        )
        gateway = JobGateway(server, [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(10), now=0.0)
        pid = gateway.job_status(job_id)["problem_id"]
        server.register_donor("d0", 0.0)
        server.register_donor("d1", 0.0)
        # One unit, two replicated copies: both donors hold a lease.
        a0 = server.request_work("d0", 1.0)
        a1 = server.request_work("d1", 1.0)
        assert a0.unit_id == a1.unit_id
        # First vote lands; the unit now sits in quorum-voting state.
        assert server.submit_result(compute(a0, "d0"), 2.0) is True
        state = server._problems[pid]
        assert state.voting
        assert gateway.cancel_job(job_id, now=3.0) is True
        assert server.status(pid) is ProblemStatus.CANCELLED
        # Leases released, voting/requeue/replica state dropped.
        assert server.leases.outstanding(pid) == []
        assert not state.voting and not state.replicas and not state.requeue
        # Donor slots freed: no leaked busy gauge, no held units.
        assert gauges(server)["farm.donors.busy"] == 0
        assert server._donors["d1"].active_units == []
        assert counters(server)["farm.problems.cancelled"] == 1
        # The straggler's late result is refused via the exactly-once
        # stale path — a clean False, not an exception.
        stale_before = counters(server).get("farm.units.stale", 0)
        assert server.submit_result(compute(a1, "d1"), 4.0) is False
        assert counters(server)["farm.units.stale"] == stale_before + 1
        # The freed slot immediately serves other tenants' work.
        other = gateway.submit_job("a", sum_problem(10), now=5.0)
        assert server.request_work("d1", 6.0) is not None
        assert gateway.job_status(other)["status"] == "running"

    def test_cancelled_problem_result_is_unreadable(self):
        server = make_server()
        gateway = JobGateway(server, [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(10), now=0.0)
        pid = gateway.job_status(job_id)["problem_id"]
        gateway.cancel_job(job_id, now=1.0)
        with pytest.raises(RuntimeError, match="cancelled"):
            server.final_result(pid)
        with pytest.raises(RuntimeError, match="cancelled, not done"):
            gateway.job_result(job_id)

    def test_cancel_terminal_job_returns_false(self):
        server = make_server()
        gateway = JobGateway(server, [TenantConfig("a")])
        job_id = gateway.submit_job("a", sum_problem(10), now=0.0)
        drive_jobs_to_completion(server, gateway)
        assert gateway.cancel_job(job_id, now=200.0) is False
        assert gateway.job_status(job_id)["status"] == "done"
        with pytest.raises(KeyError, match="unknown job"):
            gateway.cancel_job(999, now=200.0)

    def test_cancel_releases_published_data_channel_blobs(self):
        server = make_server(policy=FixedGranularity(3))
        gateway = JobGateway(server, [TenantConfig("a")])
        channel = DataChannelServer(meters=server.obs.meters)
        try:
            facade = ServerFacade(server, data_channel=channel, gateway=gateway)
            rng = np.random.default_rng(3)
            query = random_sequence("q0", 64, DNA, rng)
            database, _ = seeded_database(
                query, decoy_count=8, homolog_count=2, seed=4,
                substitution_rate=0.1,
            )
            problem = build_dsearch_problem(
                database, [query], DSearchConfig(top_hits=4, share_payloads=True)
            )
            reply = facade.submit_job("a", problem)
            assert reply["accepted"]
            facade.register_donor("d0")
            assignment = facade.request_work("d0")
            assert assignment is not None
            keys = set(facade._published[problem.problem_id])
            assert keys
            assert all(channel.refcount(key) == 1 for key in keys)
            assert facade.cancel_job(reply["job_id"]) == {"cancelled": True}
            # The facade sweep released every blob the problem pinned.
            assert problem.problem_id not in facade._published
            assert all(channel.refcount(key) == 0 for key in keys)
        finally:
            channel.close()


# ---------------------------------------------------------------------------
# Starvation regression: priority streams vs. the old round robin


def _serve_rounds(policy, rounds=64):
    """Count how often a low-priority problem wins the dispatch pass
    against three high-priority problems that always have work."""
    high = [1, 2, 3]
    low_pid = 99
    low_served = 0
    for _ in range(rounds):
        candidates = [(pid, 0) for pid in high] + [(low_pid, 1)]
        first = policy.order(candidates)[0]
        policy.served(first)
        policy.completed(first, 10)
        if first == low_pid:
            low_served += 1
    return low_served


class TestStarvationRegression:
    def test_old_round_robin_starves_low_priority(self):
        # The historical behaviour this PR fixes for gateway servers:
        # rotation stays inside the leading priority class, so a
        # sustained stream of priority-0 work starves priority 1 forever.
        assert _serve_rounds(ProblemRoundRobin()) == 0

    def test_fair_share_serves_low_priority_despite_stream(self):
        scheduler = WeightedFairShare()
        low_served = _serve_rounds(scheduler)
        # The within-tenant cycle visits every problem: the low-priority
        # problem gets its fair turn (1 in 4) instead of zero.
        assert low_served >= 64 // 4 - 1

    def test_priority_still_orders_within_a_turn(self):
        # Priority is not dead: within one dispatch pass the lower
        # priority number is offered first (when no rotation pivot).
        scheduler = WeightedFairShare()
        assert scheduler.order([(7, 1), (8, 0)]) == [8, 7]


# ---------------------------------------------------------------------------
# Fair-share properties (hypothesis)


VERDICT_SUPPRESS = [HealthCheck.too_slow]


class _StubLease:
    def __init__(self, problem_id, items):
        class _Unit:
            pass

        self.unit = _Unit()
        self.unit.problem_id = problem_id
        self.unit.items = items


class _StubLeases:
    def __init__(self, leases):
        self._leases = list(leases)

    def outstanding(self, problem_id=None):
        return list(self._leases)


class _StubObs:
    class _Meters:
        def counter(self, name):  # pragma: no cover - not exercised
            raise AssertionError("order() must not touch meters")

    meters = None


class _StubServer:
    def __init__(self, leases):
        self.leases = _StubLeases(leases)
        self.obs = _StubObs()


@st.composite
def _tenant_worlds(draw):
    n_tenants = draw(st.integers(min_value=1, max_value=4))
    tenants = [f"t{i}" for i in range(n_tenants)]
    weights = {
        t: draw(st.floats(min_value=0.25, max_value=8.0)) for t in tenants
    }
    completed = {
        t: float(draw(st.integers(min_value=0, max_value=500))) for t in tenants
    }
    problems = []
    pid = 1
    owners = {}
    for t in tenants:
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            problems.append((pid, draw(st.integers(min_value=0, max_value=2))))
            owners[pid] = t
            pid += 1
    return tenants, weights, completed, problems, owners


class TestFairShareProperties:
    @given(_tenant_worlds())
    @settings(max_examples=60, deadline=None)
    def test_work_conservation_order_is_a_permutation(self, world):
        """No caps -> every candidate problem is offered: an idle donor
        is never refused while any tenant has eligible work."""
        tenants, weights, completed, problems, owners = world
        scheduler = WeightedFairShare()
        for t in tenants:
            scheduler.set_tenant(t, weights[t])
        for pid, t in owners.items():
            scheduler.bind(pid, t)
        scheduler.rebuild(completed)
        out = scheduler.order(list(problems))
        assert sorted(out) == sorted(pid for pid, _prio in problems)

    @given(_tenant_worlds(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_inflight_cap_excludes_only_saturated_tenants(self, world, cap):
        tenants, weights, completed, problems, owners = world
        capped = tenants[0]
        scheduler = WeightedFairShare()
        for t in tenants:
            scheduler.set_tenant(
                t, weights[t], max_inflight_items=cap if t == capped else None
            )
        for pid, t in owners.items():
            scheduler.bind(pid, t)
        # Put the capped tenant exactly at its in-flight budget.
        first_pid = next(pid for pid, t in owners.items() if t == capped)
        scheduler.attach(_StubServer([_StubLease(first_pid, cap)]))
        out = scheduler.order(list(problems))
        expected = [pid for pid, _prio in problems if owners[pid] != capped]
        assert sorted(out) == sorted(expected)
        # Results landing (leases drained) lift the cap again.
        scheduler.attach(_StubServer([]))
        out = scheduler.order(list(problems))
        assert sorted(out) == sorted(pid for pid, _prio in problems)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=8), min_size=2, max_size=4
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_delivered_shares_track_weights(self, weights):
        """Serving the scheduler's first choice each round splits the
        delivered items in proportion to the weights."""
        scheduler = WeightedFairShare()
        tenants = [f"t{i}" for i in range(len(weights))]
        problems = []
        for i, t in enumerate(tenants):
            scheduler.set_tenant(t, float(weights[i]))
            scheduler.bind(i + 1, t)
            problems.append((i + 1, 0))
        rounds = 400
        for _ in range(rounds):
            pid = scheduler.order(list(problems))[0]
            scheduler.served(pid)
            scheduler.completed(pid, 1)
        total_weight = float(sum(weights))
        for i, t in enumerate(tenants):
            share = scheduler.delivered_items(t) / rounds
            target = weights[i] / total_weight
            # Virtual-time stride scheduling: per-tenant lag is O(1)
            # items, so 400 rounds land well within 5% of target.
            assert share == pytest.approx(target, abs=0.05)

    @given(
        st.lists(
            st.sampled_from(["submit_a", "submit_b", "work"]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=VERDICT_SUPPRESS)
    def test_admission_invariants_under_random_traffic(self, events):
        """Bounded queues, work-conserving promotion, FIFO starts."""
        server = make_server(policy=FixedGranularity(4))
        configs = {
            "a": TenantConfig("a", max_running=2, max_pending=2),
            "b": TenantConfig("b", weight=2.0, max_running=1, max_pending=1),
        }
        gateway = JobGateway(server, configs.values())
        server.register_donor("d0", 0.0)
        submitted = {"a": [], "b": []}
        started = {"a": [], "b": []}
        t = 0.0

        def check():
            for tid, config in configs.items():
                tenant = gateway._tenants[tid]
                assert len(tenant.pending) <= config.max_pending
                assert len(tenant.running) <= config.max_running
                if tenant.pending:
                    # Work conservation: a job never waits behind a free
                    # running slot.
                    assert len(tenant.running) == config.max_running
                # FIFO: the started jobs are exactly the first k
                # submitted and still-uncancelled ones, in order.
                newly = [
                    j for j in submitted[tid]
                    if gateway.job_status(j)["status"] != "queued"
                    and j not in started[tid]
                ]
                started[tid].extend(newly)
                assert started[tid] == submitted[tid][: len(started[tid])]

        for event in events:
            t += 1.0
            if event == "work":
                a = server.request_work("d0", t)
                if a is not None:
                    server.submit_result(compute(a), t + 0.5)
                gateway.pump(t + 0.5)
            else:
                tid = event.removeprefix("submit_")
                try:
                    job_id = gateway.submit_job(tid, sum_problem(4), now=t)
                    submitted[tid].append(job_id)
                except AdmissionError:
                    # Rejections happen exactly at the queue bound.
                    tenant = gateway._tenants[tid]
                    assert len(tenant.pending) == configs[tid].max_pending
            check()
        # Queue wait is bounded by the service of the jobs ahead: every
        # started job waited while its tenant's slots were all busy,
        # never longer than the full traffic history.
        for tid in configs:
            snap = next(
                s for s in gateway.snapshot()["tenants"] if s["tenant"] == tid
            )
            assert snap["queue_wait_max"] <= t


# ---------------------------------------------------------------------------
# Simulated 3-tenant acceptance: fair shares + bit-identical results


def _dsearch_problem(seed, **config):
    rng = np.random.default_rng(seed)
    query = random_sequence("q0", 60, DNA, rng)
    database, _ = seeded_database(
        query, decoy_count=12, homolog_count=2, seed=seed + 1,
        substitution_rate=0.1,
    )
    return build_dsearch_problem(
        database, [query], DSearchConfig(top_hits=4, **config)
    )


def _dprml_problem(seed):
    true = random_yule_tree(6, seed=seed, mean_branch=0.2)
    alignment = simulate_alignment(true, JC69(), 150, seed=seed + 1)
    return build_dprml_problem(alignment, DPRmlConfig(model="jc69"))


DIFF_SEEDS = [3, 17, 29]

THREE_TENANTS = [
    TenantConfig("alice", weight=1.0, max_running=4),
    TenantConfig("bob", weight=2.0, max_running=4),
    TenantConfig("carol", weight=4.0, max_running=4),
]


def _sim_cluster(tenants=None):
    return SimCluster(
        heterogeneous_pool(6, seed=2),
        policy=FixedGranularity(4),
        lease_timeout=60.0,
        seed=5,
        tenants=tenants,
    )


class TestGatewayEquivalence:
    """Gateway-vs-direct differential: same problems, same donors, same
    seeds — bit-identical per-problem results despite reordered
    dispatch."""

    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_three_tenant_run_matches_direct_submission(self, seed):
        def build():
            return [
                _dsearch_problem(seed),
                _dprml_problem(seed),
                _dsearch_problem(seed + 101),
            ]

        direct = _sim_cluster()
        direct_pids = [direct.submit(p) for p in build()]
        direct_report = direct.run()
        assert direct_report.completed

        gatewayed = _sim_cluster(tenants=list(THREE_TENANTS))
        tenant_ids = ["alice", "bob", "carol"]
        gw_pids = [
            gatewayed.submit_job(tid, p)
            for tid, p in zip(tenant_ids, build())
        ]
        gw_report = gatewayed.run()
        assert gw_report.completed

        for direct_pid, gw_pid in zip(direct_pids, gw_pids):
            assert canonical_digest(
                gw_report.results[gw_pid]
            ) == canonical_digest(direct_report.results[direct_pid])
        snap = gatewayed.gateway.snapshot()
        assert snap["jobs"]["done"] == 3 and not gatewayed.gateway.has_open_jobs()


class TestFairShareSim:
    def test_three_tenants_1_2_4_shares_within_ten_percent(self):
        """The acceptance drill: weights 1:2:4 under sustained
        contention split delivered items 1/7 : 2/7 : 4/7 (±10%)."""
        cluster = SimCluster(
            homogeneous_pool(8),
            policy=FixedGranularity(4),
            lease_timeout=120.0,
            seed=5,
            tenants=list(THREE_TENANTS),
        )
        for tenant in ("alice", "bob", "carol"):
            for _ in range(3):
                cluster.submit_job(tenant, sum_problem(4000, name=f"{tenant}-job"))
        cluster.run(until=600.0)
        gateway = cluster.gateway
        # Still contended: every tenant must have had eligible work the
        # whole way, or the share measurement is meaningless.
        assert gateway.has_open_jobs()
        for state in cluster.server._problems.values():
            assert state.status is ProblemStatus.RUNNING
        delivered = {
            t: gateway.scheduler.delivered_items(t)
            for t in ("alice", "bob", "carol")
        }
        total = sum(delivered.values())
        assert total > 500  # the farm actually ran
        targets = {"alice": 1 / 7, "bob": 2 / 7, "carol": 4 / 7}
        for tenant, target in targets.items():
            share = delivered[tenant] / total
            assert share == pytest.approx(target, rel=0.10), (
                f"{tenant}: share {share:.3f} vs target {target:.3f}"
            )

    def test_inflight_cap_throttles_a_tenant(self):
        cluster = SimCluster(
            homogeneous_pool(4),
            policy=FixedGranularity(4),
            lease_timeout=120.0,
            seed=5,
            tenants=[
                TenantConfig("greedy", weight=8.0, max_inflight_items=4),
                TenantConfig("meek", weight=1.0),
            ],
        )
        cluster.submit_job("greedy", sum_problem(2000, name="greedy-job"))
        cluster.submit_job("meek", sum_problem(2000, name="meek-job"))
        cluster.run(until=300.0)
        gateway = cluster.gateway
        # Despite 8x the weight, the cap (one unit in flight at a time)
        # keeps the greedy tenant from dominating delivery.
        assert gateway.scheduler.delivered_items(
            "meek"
        ) > gateway.scheduler.delivered_items("greedy")


# ---------------------------------------------------------------------------
# Durability: journal replay and checkpoint restore are exact


def _comparable(dump: dict) -> dict:
    """A dump with Problem objects reduced to identity-free facts (a
    recovered queued job holds an equal but distinct Problem object)."""
    out = dict(dump)
    out["jobs"] = [
        {**job, "problem": None if job["problem"] is None else job["problem_id"]}
        for job in dump["jobs"]
    ]
    return out


def _driven_gateway():
    """A journaled server + gateway with jobs in every state: running,
    queued, cancelled-while-running, cancelled-while-queued, plus a
    folded result and a lease still in flight."""
    store = MemoryStore()
    server = TaskFarmServer(
        policy=FixedGranularity(5),
        lease_timeout=100.0,
        journal=JournalWriter(store),
    )
    gateway = JobGateway(
        server,
        [
            TenantConfig("a", weight=1.0, max_running=1, max_pending=4),
            TenantConfig("b", weight=2.0, max_running=2, max_pending=4),
        ],
    )
    server.register_donor("d0", 0.0)
    gateway.submit_job("a", sum_problem(20), now=1.0)  # running
    gateway.submit_job("a", sum_problem(20), now=2.0)  # queued behind it
    gateway.submit_job("b", sum_problem(20), now=3.0)  # running
    j4 = gateway.submit_job("b", sum_problem(20), now=4.0)  # running
    a = server.request_work("d0", 5.0)
    server.submit_result(compute(a), 6.0)  # one fold on the books
    gateway.pump(6.0)
    server.request_work("d0", 7.0)  # a lease left in flight
    gateway.cancel_job(j4, now=8.0)  # cancelled while running
    j5 = gateway.submit_job("a", sum_problem(20), now=9.0)
    gateway.cancel_job(j5, now=10.0)  # cancelled while queued
    return store, server, gateway


def _assert_same_gateway(fresh, original):
    assert _comparable(fresh.dump()) == _comparable(original.dump())
    assert fresh.snapshot() == original.snapshot()
    for tenant in original.tenant_ids():
        assert fresh.scheduler.delivered_items(
            tenant
        ) == original.scheduler.delivered_items(tenant)


class TestGatewayDurability:
    def test_journal_replay_restores_queue_and_accounting_exactly(self):
        store, _server, gateway = _driven_gateway()
        fresh = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=100.0)
        fresh_gateway = JobGateway(fresh)
        report = recover(fresh, store, now=20.0, gateway=fresh_gateway)
        assert report.replayed > 0
        _assert_same_gateway(fresh_gateway, gateway)

    def test_checkpoint_plus_tail_restores_exactly(self):
        store, server, gateway = _driven_gateway()
        blob = dumps_checkpoint(
            server, 11.0, journal_lsn=server.journal.last_lsn, gateway=gateway
        )
        # Post-checkpoint tail: one more job + a cancel, both replayed
        # on top of the restored checkpoint.
        j6 = gateway.submit_job("b", sum_problem(20), now=12.0)
        gateway.cancel_job(j6, now=13.0)
        fresh = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=100.0)
        fresh_gateway = JobGateway(fresh)
        recover(fresh, store, checkpoint=blob, now=20.0, gateway=fresh_gateway)
        _assert_same_gateway(fresh_gateway, gateway)

    def test_recovered_gateway_drives_jobs_to_completion(self):
        store, _server, gateway = _driven_gateway()
        fresh = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=100.0)
        fresh_gateway = JobGateway(fresh)
        recover(fresh, store, now=20.0, gateway=fresh_gateway)
        drive_jobs_to_completion(fresh, fresh_gateway, t=30.0)
        snap = fresh_gateway.snapshot()
        assert snap["jobs"] == {
            "queued": 0, "running": 0, "done": 3, "failed": 0, "cancelled": 2,
        }
        for job_id in fresh_gateway.job_ids():
            if fresh_gateway.job_status(job_id)["status"] == "done":
                assert fresh_gateway.job_result(job_id) == sum(range(20))

    def test_gateway_journal_without_gateway_fails_loudly(self):
        store, _server, _gateway = _driven_gateway()
        fresh = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=100.0)
        with pytest.raises(JournalError, match="gateway"):
            recover(fresh, store, now=20.0)

    def test_gateway_checkpoint_without_gateway_fails_loudly(self):
        store, server, gateway = _driven_gateway()
        blob = dumps_checkpoint(
            server, 11.0, journal_lsn=server.journal.last_lsn, gateway=gateway
        )
        fresh = TaskFarmServer(policy=FixedGranularity(5), lease_timeout=100.0)
        with pytest.raises(JournalError, match="gateway"):
            recover(fresh, store, checkpoint=blob, now=20.0)
