"""Tests for trees, Newick I/O, edge editing and RF distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.phylo.tree import Node, Tree, TreeError, parse_newick, rf_distance
from repro.bio.phylo.simulate import random_yule_tree


class TestConstruction:
    def test_star(self):
        tree = Tree.star(["a", "b", "c"], branch_length=0.2)
        assert tree.n_leaves == 3
        assert sorted(tree.leaf_names()) == ["a", "b", "c"]
        assert all(c.branch_length == 0.2 for c in tree.root.children)

    def test_star_validation(self):
        with pytest.raises(TreeError):
            Tree.star(["only"])
        with pytest.raises(TreeError):
            Tree.star(["a", "a", "b"])

    def test_add_child_rejects_reparenting(self):
        a, b = Node("a"), Node("b")
        a.add_child(b)
        with pytest.raises(TreeError, match="already has a parent"):
            Node("c").add_child(b)

    def test_detach_root_rejected(self):
        tree = Tree.star(["a", "b", "c"])
        with pytest.raises(TreeError, match="root"):
            tree.root.detach()

    def test_copy_is_deep(self):
        tree = Tree.star(["a", "b", "c"])
        dup = tree.copy()
        dup.find("a").branch_length = 9.9
        assert tree.find("a").branch_length != 9.9
        assert dup.newick() != tree.newick()


class TestTraversal:
    def test_postorder_children_first(self):
        tree = parse_newick("((a:1,b:1):1,c:1);")
        order = [n.name or "*" for n in tree.postorder()]
        assert order == ["a", "b", "*", "c", "*"]

    def test_preorder_parent_first(self):
        tree = parse_newick("((a:1,b:1):1,c:1);")
        order = [n.name or "*" for n in tree.preorder()]
        assert order == ["*", "*", "a", "b", "c"]

    def test_edges_excludes_root(self):
        tree = parse_newick("((a:1,b:1):1,c:1);")
        assert len(tree.edges()) == 4
        assert all(e.parent is not None for e in tree.edges())

    def test_find(self):
        tree = Tree.star(["x", "y", "z"])
        assert tree.find("y").name == "y"
        with pytest.raises(TreeError):
            tree.find("missing")

    def test_total_branch_length(self):
        tree = parse_newick("((a:1,b:2):3,c:4);")
        assert tree.total_branch_length() == 10.0


class TestNewick:
    def test_parse_simple(self):
        tree = parse_newick("(a:0.1,b:0.2,c:0.3);")
        assert tree.n_leaves == 3
        assert tree.find("b").branch_length == pytest.approx(0.2)

    def test_parse_nested(self):
        tree = parse_newick("((a:1,b:1)ab:0.5,c:2);")
        internal = tree.find("ab")
        assert not internal.is_leaf
        assert internal.branch_length == pytest.approx(0.5)

    def test_quoted_names(self):
        tree = parse_newick("('taxon one':1,'it''s':2,c:3);")
        names = set(tree.leaf_names())
        assert "taxon one" in names
        assert "it's" in names

    def test_roundtrip(self):
        text = "((a:1,b:1):0.5,(c:2,d:2):0.25,e:3);"
        tree = parse_newick(text)
        again = parse_newick(tree.newick())
        assert again.newick() == tree.newick()

    def test_roundtrip_quoted(self):
        tree = Tree.star(["plain", "with space", "quo'te"])
        again = parse_newick(tree.newick())
        assert sorted(again.leaf_names()) == sorted(tree.leaf_names())

    def test_parse_errors(self):
        for bad in [
            "(a,b",          # unterminated
            "(a,b);x",       # trailing
            "(a,b)",         # missing semicolon
            "(a:1,b:bad);",  # bad branch length
            "(a:-1,b:1);",   # negative branch length
            "(a,a,b);",      # duplicate leaf names
        ]:
            with pytest.raises(TreeError):
                parse_newick(bad)

    def test_scientific_notation_lengths(self):
        tree = parse_newick("(a:1e-3,b:2.5E2,c:1);")
        assert tree.find("a").branch_length == pytest.approx(1e-3)
        assert tree.find("b").branch_length == pytest.approx(250.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(4, 24), st.integers(0, 1000))
    def test_roundtrip_random_trees(self, n, seed):
        tree = random_yule_tree(n, seed=seed)
        again = parse_newick(tree.newick())
        assert again.newick() == tree.newick()
        assert rf_distance(tree, again) == 0


class TestEdgeEditing:
    def test_insert_and_remove_is_identity(self):
        tree = parse_newick("((a:1,b:1):0.5,c:2,d:3);")
        before = tree.newick()
        edge = tree.find("b")
        v, leaf = tree.insert_on_edge(edge, "new", leaf_branch=0.7)
        assert leaf.name == "new"
        assert tree.n_leaves == 5
        assert edge.parent is v
        assert v.branch_length + edge.branch_length == pytest.approx(1.0)
        removed = tree.remove_insertion(v)
        assert removed is leaf
        assert tree.newick() == before

    def test_insert_split_fraction(self):
        tree = parse_newick("(a:1,b:2,c:3);")
        v, _leaf = tree.insert_on_edge(tree.find("c"), "x", split=0.25)
        assert tree.find("c").branch_length == pytest.approx(0.75)
        assert v.branch_length == pytest.approx(2.25)

    def test_insert_on_root_rejected(self):
        tree = Tree.star(["a", "b", "c"])
        with pytest.raises(TreeError, match="root"):
            tree.insert_on_edge(tree.root, "x")

    def test_insert_bad_split(self):
        tree = Tree.star(["a", "b", "c"])
        with pytest.raises(TreeError, match="split"):
            tree.insert_on_edge(tree.find("a"), "x", split=1.5)

    def test_remove_non_insertion_rejected(self):
        tree = Tree.star(["a", "b", "c"])
        with pytest.raises(TreeError):
            tree.remove_insertion(tree.find("a"))

    def test_sequential_insertions_grow_edges(self):
        # Unrooted tree with k leaves has 2k-3 edges.
        tree = Tree.star(["t0", "t1", "t2"])
        for k in range(3, 10):
            assert len(tree.edges()) == 2 * k - 3
            tree.insert_on_edge(tree.edges()[0], f"t{k}")
        assert tree.n_leaves == 10

    def test_edge_index_survives_newick_roundtrip(self):
        # The distributed protocol depends on this invariant.
        tree = random_yule_tree(12, seed=5)
        again = parse_newick(tree.newick())
        ours = [(e.name, round(e.branch_length, 9)) for e in tree.edges()]
        theirs = [(e.name, round(e.branch_length, 9)) for e in again.edges()]
        assert ours == theirs


class TestSplitsAndRF:
    def test_identical_trees_distance_zero(self):
        a = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        b = parse_newick(a.newick())
        assert rf_distance(a, b) == 0

    def test_different_topologies_positive(self):
        a = parse_newick("((a:1,b:1):1,c:1,d:1);")
        b = parse_newick("((a:1,c:1):1,b:1,d:1);")
        assert rf_distance(a, b) == 2

    def test_star_has_no_splits(self):
        assert Tree.star(["a", "b", "c", "d"]).splits() == set()

    def test_leaf_set_mismatch_rejected(self):
        a = Tree.star(["a", "b", "c"])
        b = Tree.star(["a", "b", "x"])
        with pytest.raises(TreeError, match="leaf set"):
            rf_distance(a, b)

    def test_splits_ignore_rooting_position(self):
        a = parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);")
        b = parse_newick("((c:1,d:1):1,(a:1,b:1):1,e:1);")
        assert a.splits() == b.splits()
