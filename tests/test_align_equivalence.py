"""Cross-validation of the alignment kernels against each other.

The three built-in aligners implement different algorithms with
different complexity, but on common ground they must agree exactly:

* Hirschberg (linear memory, divide & conquer) == Needleman-Wunsch
  (full DP) under any linear gap scheme.
* Banded global == full global whenever the band covers the matrix.
* Banded local (Smith-Waterman through the shared row kernel) == full
  local under a covering band.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.align.banded import banded_global_score
from repro.bio.align.hirschberg import hirschberg_align
from repro.bio.align.kernels import gotoh_rows
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.scoring import dna_scheme
from repro.bio.align.sw import smith_waterman_score
from repro.bio.seq import DNA
from repro.bio.seq.generate import mutate_sequence, random_sequence
from repro.bio.seq.sequence import dna

LINEAR = dna_scheme(match=2.0, mismatch=-1.0, gap_open=0.0, gap_extend=-2.0)
AFFINE = dna_scheme(match=2.0, mismatch=-1.0, gap_open=-5.0, gap_extend=-0.5)

dna_text = st.text(alphabet="ACGT", min_size=1, max_size=24)


def _banded_local_score(query, subject, scheme, band: int) -> float:
    """Smith-Waterman restricted to the band, via the shared kernel."""
    best = 0.0
    for _i, row in gotoh_rows(query, subject, scheme, local=True, band=band):
        best = max(best, float(row[np.isfinite(row)].max()))
    return best


class TestHirschbergVsNeedlemanWunsch:
    @given(q=dna_text, s=dna_text)
    @settings(max_examples=150, deadline=None)
    def test_scores_agree_on_random_pairs(self, q, s):
        query, subject = dna("q", q), dna("s", s)
        aln = hirschberg_align(query, subject, LINEAR)
        assert aln.score == pytest.approx(
            needleman_wunsch_score(query, subject, LINEAR)
        )

    def test_scores_agree_on_long_homologs(self):
        rng = np.random.default_rng(11)
        query = random_sequence("q", 300, DNA, rng)
        subject = mutate_sequence(query, rng, substitution_rate=0.1,
                                  insertion_rate=0.02, deletion_rate=0.02)
        aln = hirschberg_align(query, subject, LINEAR)
        assert aln.score == pytest.approx(
            needleman_wunsch_score(query, subject, LINEAR)
        )

    @given(q=dna_text, s=dna_text)
    @settings(max_examples=100, deadline=None)
    def test_alignment_renders_both_inputs(self, q, s):
        aln = hirschberg_align(dna("q", q), dna("s", s), LINEAR)
        assert aln.query_aligned.replace("-", "") == q
        assert aln.subject_aligned.replace("-", "") == s


class TestBandedVsFullGlobal:
    @given(q=dna_text, s=dna_text)
    @settings(max_examples=150, deadline=None)
    def test_covering_band_equals_full_nw(self, q, s):
        query, subject = dna("q", q), dna("s", s)
        band = max(len(q), len(s))  # band covers every DP cell
        assert banded_global_score(query, subject, AFFINE, band=band) == (
            pytest.approx(needleman_wunsch_score(query, subject, AFFINE))
        )

    @given(q=dna_text, s=dna_text, band=st.integers(min_value=0, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_narrow_band_is_a_lower_bound(self, q, s, band):
        query, subject = dna("q", q), dna("s", s)
        banded = banded_global_score(query, subject, AFFINE, band=band)
        full = needleman_wunsch_score(query, subject, AFFINE)
        assert banded <= full + 1e-9

    def test_wide_band_on_homologs(self):
        rng = np.random.default_rng(12)
        query = random_sequence("q", 200, DNA, rng)
        subject = mutate_sequence(query, rng, substitution_rate=0.15)
        band = max(len(query), len(subject))
        assert banded_global_score(query, subject, AFFINE, band=band) == (
            pytest.approx(needleman_wunsch_score(query, subject, AFFINE))
        )


class TestBandedVsFullLocal:
    @given(q=dna_text, s=dna_text)
    @settings(max_examples=150, deadline=None)
    def test_covering_band_equals_full_sw(self, q, s):
        query, subject = dna("q", q), dna("s", s)
        band = max(len(q), len(s))
        assert _banded_local_score(query, subject, AFFINE, band) == (
            pytest.approx(smith_waterman_score(query, subject, AFFINE))
        )

    @given(q=dna_text, s=dna_text, band=st.integers(min_value=0, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_narrow_band_never_beats_full_sw(self, q, s, band):
        query, subject = dna("q", q), dna("s", s)
        # Widen as banded_global_score does, so the band is well-formed.
        band = max(band, abs(len(q) - len(s)))
        banded = _banded_local_score(query, subject, AFFINE, band)
        assert banded <= smith_waterman_score(query, subject, AFFINE) + 1e-9
