"""Tests for the TaskFarmServer state machine: issue/collect, leases,
churn, duplicates, multi-problem fairness, completion."""

import pytest

from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.core.workunit import WorkResult
from tests.helpers import (
    RangeSumAlgorithm,
    RangeSumDataManager,
    StagedAlgorithm,
    StagedDataManager,
)


def make_server(**kwargs) -> TaskFarmServer:
    kwargs.setdefault("policy", FixedGranularity(10))
    kwargs.setdefault("lease_timeout", 100.0)
    return TaskFarmServer(**kwargs)


def sum_problem(n=100) -> Problem:
    return Problem("sum", RangeSumDataManager(n), RangeSumAlgorithm())


def compute(assignment) -> WorkResult:
    lo, hi = assignment.payload
    return WorkResult(
        problem_id=assignment.problem_id,
        unit_id=assignment.unit_id,
        value=sum(range(lo, hi)),
        donor_id="d0",
        compute_seconds=1.0,
        items=assignment.items,
    )


class TestBasicLifecycle:
    def test_submit_and_complete(self):
        server = make_server()
        pid = server.submit(sum_problem(25), now=0.0)
        server.register_donor("d0", 0.0)
        t = 1.0
        while server.status(pid) is ProblemStatus.RUNNING:
            a = server.request_work("d0", t)
            assert a is not None
            server.submit_result(compute(a), t + 0.5)
            t += 1.0
        assert server.final_result(pid) == sum(range(25))
        assert server.makespan(pid) > 0

    def test_unit_sizes_respect_fixed_policy(self):
        server = make_server(policy=FixedGranularity(7))
        server.submit(sum_problem(20), now=0.0)
        server.register_donor("d0", 0.0)
        sizes = []
        while True:
            a = server.request_work("d0", 1.0)
            if a is None:
                break
            sizes.append(a.items)
            # don't submit results; keep pulling until partition exhausted
        assert sizes == [7, 7, 6]

    def test_final_result_before_complete_raises(self):
        server = make_server()
        pid = server.submit(sum_problem(10), now=0.0)
        with pytest.raises(RuntimeError, match="not complete"):
            server.final_result(pid)

    def test_unknown_problem_raises(self):
        server = make_server()
        with pytest.raises(KeyError, match="unknown problem"):
            server.status(999)

    def test_duplicate_submit_rejected(self):
        server = make_server()
        p = sum_problem(10)
        server.submit(p, 0.0)
        with pytest.raises(ValueError, match="already submitted"):
            server.submit(p, 0.0)

    def test_unregistered_donor_cannot_request(self):
        server = make_server()
        server.submit(sum_problem(10), 0.0)
        with pytest.raises(KeyError, match="unregistered donor"):
            server.request_work("ghost", 1.0)

    def test_progress_tracks_items(self):
        server = make_server(policy=FixedGranularity(50))
        pid = server.submit(sum_problem(100), 0.0)
        server.register_donor("d0", 0.0)
        assert server.progress(pid) == 0.0
        a = server.request_work("d0", 1.0)
        server.submit_result(compute(a), 2.0)
        assert server.progress(pid) == pytest.approx(0.5)


class TestLeaseExpiry:
    def test_expired_unit_requeued_and_recomputed(self):
        server = make_server(lease_timeout=10.0)
        pid = server.submit(sum_problem(10), 0.0)
        server.register_donor("slow", 0.0)
        server.register_donor("fast", 0.0)
        a = server.request_work("slow", 1.0)  # whole problem in one unit
        assert a is not None
        # lease expires at t=11; "slow" never returns
        assert server.expire_leases(12.0) == 1
        b = server.request_work("fast", 13.0)
        assert b is not None
        assert b.unit_id == a.unit_id
        result = compute(b)
        server.submit_result(
            WorkResult(pid, b.unit_id, result.value, "fast", 1.0, b.items), 14.0
        )
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert server.final_result(pid) == sum(range(10))

    def test_late_result_after_expiry_still_counts(self):
        server = make_server(lease_timeout=10.0)
        pid = server.submit(sum_problem(10), 0.0)
        server.register_donor("slow", 0.0)
        a = server.request_work("slow", 1.0)
        server.expire_leases(20.0)  # requeued, not yet reissued
        ok = server.submit_result(compute(a), 21.0)
        assert ok
        assert server.status(pid) is ProblemStatus.COMPLETE
        # The ghost copy must not be reissued afterwards.
        server.register_donor("d1", 22.0)
        assert server.request_work("d1", 22.0) is None

    def test_duplicate_result_dropped(self):
        server = make_server(lease_timeout=10.0)
        pid = server.submit(sum_problem(30), 0.0)
        server.register_donor("a", 0.0)
        server.register_donor("b", 0.0)
        ua = server.request_work("a", 1.0)
        server.expire_leases(15.0)
        ub = server.request_work("b", 16.0)
        assert ub.unit_id == ua.unit_id
        r_b = WorkResult(pid, ub.unit_id, sum(range(*ub.payload)), "b", 1.0, ub.items)
        assert server.submit_result(r_b, 17.0)
        r_a = WorkResult(pid, ua.unit_id, sum(range(*ua.payload)), "a", 9.0, ua.items)
        assert not server.submit_result(r_a, 18.0)  # duplicate
        # exactly-once: total items applied equals one copy
        dm_total = server._state(pid).items_completed
        assert dm_total == ua.items

    def test_heartbeat_renews_lease(self):
        server = make_server(lease_timeout=10.0)
        server.submit(sum_problem(10), 0.0)
        server.register_donor("d0", 0.0)
        server.request_work("d0", 0.0)
        server.heartbeat("d0", 8.0)  # extends deadline to 18
        assert server.expire_leases(12.0) == 0
        assert server.expire_leases(19.0) == 1

    def test_result_for_completed_problem_is_stale(self):
        server = make_server()
        pid = server.submit(sum_problem(10), 0.0)
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)
        server.submit_result(compute(a), 2.0)
        assert server.status(pid) is ProblemStatus.COMPLETE
        assert not server.submit_result(compute(a), 3.0)
        assert server.log.last("unit.stale") is not None


class TestDonorChurn:
    def test_deregister_requeues_active_unit(self):
        server = make_server()
        pid = server.submit(sum_problem(10), 0.0)
        server.register_donor("d0", 0.0)
        a = server.request_work("d0", 1.0)
        server.deregister_donor("d0", 2.0)
        server.register_donor("d1", 3.0)
        b = server.request_work("d1", 4.0)
        assert b is not None and b.unit_id == a.unit_id
        server.submit_result(
            WorkResult(pid, b.unit_id, sum(range(*b.payload)), "d1", 1.0, b.items), 5.0
        )
        assert server.final_result(pid) == sum(range(10))

    def test_reregistration_is_clean_churn(self):
        server = make_server()
        server.submit(sum_problem(100), 0.0)
        server.register_donor("d0", 0.0)
        server.request_work("d0", 1.0)
        server.register_donor("d0", 2.0)  # reboot: implicit deregister
        requeues = server.log.of_kind("unit.requeued")
        assert len(requeues) == 1

    def test_deregister_unknown_donor_is_noop(self):
        server = make_server()
        server.deregister_donor("never-registered", 0.0)


class TestMultiProblem:
    def test_round_robin_across_problems(self):
        server = make_server(policy=FixedGranularity(1))
        p1 = server.submit(sum_problem(50), 0.0)
        p2 = server.submit(sum_problem(50), 0.0)
        server.register_donor("d0", 0.0)
        seen = [server.request_work("d0", float(i)).problem_id for i in range(6)]
        # alternates between the two problems
        assert seen.count(p1) == 3
        assert seen.count(p2) == 3
        assert seen[0] != seen[1]

    def test_priority_classes(self):
        server = make_server(policy=FixedGranularity(1))
        urgent = Problem("urgent", RangeSumDataManager(5), RangeSumAlgorithm(), priority=0)
        casual = Problem("casual", RangeSumDataManager(5), RangeSumAlgorithm(), priority=5)
        server.submit(casual, 0.0)
        server.submit(urgent, 0.0)
        server.register_donor("d0", 0.0)
        first = server.request_work("d0", 1.0)
        assert first.problem_id == urgent.problem_id

    def test_both_problems_complete(self):
        server = make_server(policy=FixedGranularity(25))
        p1 = server.submit(sum_problem(50), 0.0)
        p2 = server.submit(sum_problem(80), 0.0)
        server.register_donor("d0", 0.0)
        t = 1.0
        while not server.all_complete():
            a = server.request_work("d0", t)
            if a is None:
                break
            server.submit_result(compute(a), t)
            t += 1.0
        assert server.final_result(p1) == sum(range(50))
        assert server.final_result(p2) == sum(range(80))


class TestStagedComputation:
    def test_barrier_then_stage2(self):
        server = make_server(policy=FixedGranularity(1))
        pid = server.submit(
            Problem("staged", StagedDataManager(8), StagedAlgorithm()), 0.0
        )
        server.register_donor("d0", 0.0)
        algo = server.get_algorithm(pid)
        t = 1.0
        idle_seen = False
        stage1 = []
        # Issue all stage-1 units but hold results: server must go idle.
        for _ in range(8):
            a = server.request_work("d0", t)
            assert a is not None
            stage1.append(a)
        assert server.request_work("d0", t) is None  # barrier
        idle_seen = True
        for a in stage1:
            server.submit_result(
                WorkResult(pid, a.unit_id, algo.compute(a.payload), "d0", 1.0, 1), t
            )
            t += 1.0
        # Stage 2 units now exist.
        progressed = 0
        while server.status(pid) is ProblemStatus.RUNNING:
            a = server.request_work("d0", t)
            assert a is not None
            server.submit_result(
                WorkResult(pid, a.unit_id, algo.compute(a.payload), "d0", 1.0, 1), t
            )
            t += 1.0
            progressed += 1
        assert idle_seen
        assert progressed == 4  # n/2 pair-sums
        assert server.final_result(pid) == sum(x * x for x in range(8))
