"""Tests for the DSEARCH application: config, partitioning, merging,
sensitivity (planted homologs must surface), and cluster integration."""

import numpy as np
import pytest

from repro.apps.dsearch import (
    DSearchAlgorithm,
    DSearchConfig,
    DSearchDataManager,
    build_problem,
    run_dsearch,
)
from repro.bio.seq import DNA
from repro.bio.seq.generate import random_sequence, seeded_database
from repro.cluster.sim import SimCluster, homogeneous_pool
from repro.core.client import run_to_completion
from repro.core.scheduler import AdaptiveGranularity, FixedGranularity
from repro.core.server import TaskFarmServer
from repro.util.config import ConfigFile


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    query = random_sequence("query0", 80, DNA, rng)
    database, homolog_ids = seeded_database(
        query, decoy_count=40, homolog_count=3, seed=11, substitution_rate=0.1
    )
    return query, database, homolog_ids


class TestConfig:
    def test_defaults(self):
        cfg = DSearchConfig()
        assert cfg.algorithm == "sw"
        assert cfg.scheme().name == "dna"

    def test_from_config_file(self):
        cfg = DSearchConfig.from_config(
            ConfigFile.from_text(
                "algorithm = nw\nscoring = blosum62\ngap_open = -11\ntop_hits = 5\n"
            )
        )
        assert cfg.algorithm == "nw"
        assert cfg.top_hits == 5
        scheme = cfg.scheme()
        assert scheme.name == "blosum62"
        assert scheme.gap_open == -11

    def test_from_path(self, tmp_path):
        path = tmp_path / "dsearch.conf"
        path.write_text("algorithm = banded\nband = 16\n")
        cfg = DSearchConfig.from_path(path)
        assert cfg.algorithm == "banded"
        assert cfg.band == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DSearchConfig(algorithm="blast")  # heuristics not welcome here
        with pytest.raises(ValueError):
            DSearchConfig(top_hits=0)
        with pytest.raises(ValueError):
            DSearchConfig(unit_target_seconds=0)


class TestAlgorithm:
    def test_returns_topk_per_query(self, workload):
        query, database, _ = workload
        algo = DSearchAlgorithm(DSearchConfig(top_hits=4))
        result = algo.compute(([query], database[:10]))
        assert set(result) == {"query0"}
        assert len(result["query0"]) == 4
        scores = [h.score for h in result["query0"]]
        assert scores == sorted(scores, reverse=True)

    def test_each_algorithm_runs(self, workload):
        query, database, _ = workload
        for name in ("sw", "nw", "banded"):
            algo = DSearchAlgorithm(DSearchConfig(algorithm=name, top_hits=2))
            result = algo.compute(([query], database[:5]))
            assert len(result["query0"]) == 2

    def test_cost_scales_with_slice(self, workload):
        query, database, _ = workload
        algo = DSearchAlgorithm(DSearchConfig())
        small = algo.cost(([query], database[:5]))
        large = algo.cost(([query], database[:20]))
        assert large > small > 0

    def test_banded_cost_below_full(self, workload):
        query, database, _ = workload
        full = DSearchAlgorithm(DSearchConfig(algorithm="sw"))
        banded = DSearchAlgorithm(DSearchConfig(algorithm="banded", band=8))
        payload = ([query], database[:10])
        assert banded.cost(payload) < full.cost(payload)


class TestDataManager:
    def test_partitions_whole_database(self, workload):
        query, database, _ = workload
        dm = DSearchDataManager(database, [query], DSearchConfig())
        seen = 0
        while True:
            unit = dm.next_unit(7)
            if unit is None:
                break
            seen += unit.items
        assert seen == len(database)

    def test_validation(self, workload):
        query, database, _ = workload
        with pytest.raises(ValueError, match="empty database"):
            DSearchDataManager([], [query])
        with pytest.raises(ValueError, match="no query"):
            DSearchDataManager(database, [])

    def test_end_to_end_finds_homologs(self, workload):
        """The sensitivity claim: planted homologs must rank top."""
        query, database, homolog_ids = workload
        server = TaskFarmServer(policy=FixedGranularity(9), lease_timeout=1e6)
        problem = build_problem(database, [query], DSearchConfig(top_hits=5))
        pid = server.submit(problem, 0.0)
        run_to_completion(server, donors=3)
        report = server.final_result(pid)
        top_ids = [h.subject_id for h in report.hits["query0"][:3]]
        assert set(top_ids) == set(homolog_ids)
        assert report.database_size == len(database)

    def test_result_independent_of_unit_size(self, workload):
        query, database, homolog_ids = workload

        def run_with(items):
            server = TaskFarmServer(
                policy=FixedGranularity(items), lease_timeout=1e6
            )
            pid = server.submit(
                build_problem(database, [query], DSearchConfig(top_hits=6)), 0.0
            )
            run_to_completion(server, donors=2)
            return [
                (h.subject_id, round(h.score, 6))
                for h in server.final_result(pid).hits["query0"]
            ]

        assert run_with(3) == run_with(17) == run_with(100)

    def test_multiple_queries(self, workload):
        _query, database, _ = workload
        rng = np.random.default_rng(3)
        queries = [random_sequence(f"q{i}", 60, DNA, rng) for i in range(3)]
        report = run_dsearch(database, queries, DSearchConfig(top_hits=2), workers=2)
        assert set(report.hits) == {"q0", "q1", "q2"}
        assert all(len(hits) == 2 for hits in report.hits.values())

    def test_blobs_attached(self, workload):
        query, database, _ = workload
        problem = build_problem(database, [query])
        assert set(problem.blobs) == {"database.fasta", "queries.fasta"}
        assert problem.blobs["queries.fasta"].startswith(b">query0")


class TestOnSimCluster:
    def test_search_on_simulated_heterogeneous_pool(self, workload):
        query, database, homolog_ids = workload
        from repro.cluster.sim import heterogeneous_pool

        cluster = SimCluster(
            heterogeneous_pool(6, seed=2),
            policy=AdaptiveGranularity(target_seconds=5e5, probe_items=4),
            seed=3,
        )
        pid = cluster.submit(build_problem(database, [query], DSearchConfig(top_hits=3)))
        report = cluster.run()
        assert report.completed
        hits = report.results[pid].hits["query0"]
        assert {h.subject_id for h in hits} == set(homolog_ids)
        assert report.makespans[pid] > 0
