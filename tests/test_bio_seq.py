"""Tests for alphabets, sequences, FASTA I/O and synthetic generators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bio.seq import DNA, PROTEIN, Sequence, parse_fasta, read_fasta, write_fasta
from repro.bio.seq.fasta import FastaError, format_fasta
from repro.bio.seq.generate import (
    mutate_sequence,
    random_database,
    random_sequence,
    seeded_database,
)
from repro.bio.seq.sequence import dna, protein


class TestAlphabet:
    def test_dna_encoding(self):
        codes = DNA.encode("ACGT")
        assert list(codes) == [0, 1, 2, 3]

    def test_case_insensitive(self):
        assert np.array_equal(DNA.encode("acgt"), DNA.encode("ACGT"))

    def test_unknown_maps_to_unknown_code(self):
        codes = DNA.encode("AZN!")
        assert codes[0] == 0
        assert codes[1] == DNA.unknown_code
        assert codes[2] == DNA.unknown_code
        assert codes[3] == DNA.unknown_code

    def test_decode_roundtrip(self):
        text = "ACGTN"
        assert DNA.decode(DNA.encode(text)) == text

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside alphabet"):
            DNA.decode(np.array([9], dtype=np.uint8))

    def test_protein_size(self):
        assert len(PROTEIN) == 20
        assert PROTEIN.unknown == "X"

    def test_is_valid(self):
        assert DNA.is_valid("ACGT")
        assert not DNA.is_valid("ACGN")

    @given(st.text(alphabet="ACGTacgt", min_size=1, max_size=100))
    def test_roundtrip_property(self, text):
        assert DNA.decode(DNA.encode(text)) == text.upper()


class TestSequence:
    def test_basics(self):
        seq = dna("s1", "ACGT", "a test")
        assert len(seq) == 4
        assert str(seq) == "ACGT"
        assert seq.header() == "s1 a test"

    def test_equality_and_hash(self):
        a = dna("s1", "ACGT")
        b = dna("s1", "ACGT")
        c = dna("s1", "ACGA")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            dna("", "ACGT")

    def test_slicing(self):
        seq = dna("s1", "ACGTACGT")
        assert str(seq[2:6]) == "GTAC"
        with pytest.raises(TypeError):
            seq[0]

    def test_reverse_complement(self):
        assert str(dna("s", "AACGT").reverse_complement()) == "ACGTT"
        assert str(dna("s", "N").reverse_complement()) == "N"

    def test_reverse_complement_protein_rejected(self):
        with pytest.raises(ValueError):
            protein("p", "ARND").reverse_complement()

    def test_gc_content(self):
        assert dna("s", "GGCC").gc_content() == 1.0
        assert dna("s", "AATT").gc_content() == 0.0
        assert dna("s", "ACGT").gc_content() == 0.5
        assert dna("s", "NNNN").gc_content() == 0.0

    def test_code_validation(self):
        with pytest.raises(ValueError, match="outside alphabet"):
            Sequence("s", np.array([77], dtype=np.uint8), DNA)

    @given(st.text(alphabet="ACGT", min_size=1, max_size=60))
    def test_double_reverse_complement_is_identity(self, text):
        seq = dna("s", text)
        assert str(seq.reverse_complement().reverse_complement()) == text

    def test_icodes_cached_frozen_and_correct(self):
        seq = dna("s", "ACGTN")
        codes = seq.icodes
        assert codes.dtype == np.intp
        assert not codes.flags.writeable
        assert np.array_equal(codes, seq.codes.astype(np.intp))
        assert seq.icodes is codes  # memoised, one array forever

    def test_icodes_race_publishes_one_array(self):
        """Regression: concurrent cold reads (prefetch warmup + compute
        thread) must all see the *same* frozen array, never clobber the
        cache with a second copy mid-read."""
        import threading

        for _trial in range(20):
            seq = dna("s", "ACGT" * 500)
            start = threading.Barrier(8)
            seen: list = []

            def read() -> None:
                start.wait()
                seen.append(seq.icodes)

            threads = [threading.Thread(target=read) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            first = seen[0]
            assert all(arr is first for arr in seen)
            assert not first.flags.writeable


class TestFasta:
    SAMPLE = """>seq1 first sequence
ACGTACGT
ACGT
>seq2
TTTT
"""

    def test_parse(self):
        records = parse_fasta(self.SAMPLE, DNA)
        assert [r.seq_id for r in records] == ["seq1", "seq2"]
        assert str(records[0]) == "ACGTACGTACGT"
        assert records[0].description == "first sequence"
        assert records[1].description == ""

    def test_blank_lines_ignored(self):
        records = parse_fasta(">a\n\nACGT\n\n>b\nTTTT\n", DNA)
        assert len(records) == 2

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError, match="before any"):
            parse_fasta("ACGT\n", DNA)

    def test_empty_header_rejected(self):
        with pytest.raises(FastaError, match="empty FASTA header"):
            parse_fasta(">\nACGT\n", DNA)

    def test_duplicate_id_rejected(self):
        with pytest.raises(FastaError, match="duplicate id"):
            parse_fasta(">a\nACGT\n>a\nTTTT\n", DNA)

    def test_record_without_data_rejected(self):
        with pytest.raises(FastaError, match="no sequence data"):
            parse_fasta(">a\n>b\nACGT\n", DNA)

    def test_write_read_roundtrip(self, tmp_path):
        records = [dna("s1", "ACGT" * 40, "desc here"), dna("s2", "TTTT")]
        path = tmp_path / "test.fasta"
        write_fasta(path, records, width=50)
        back = read_fasta(path, DNA)
        assert back == records
        # line wrapping respected
        lines = path.read_text().splitlines()
        assert all(len(line) <= 50 for line in lines if not line.startswith(">"))

    def test_format_width_validation(self):
        with pytest.raises(ValueError):
            format_fasta([dna("s", "ACGT")], width=0)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.text(alphabet="ACGT", min_size=1, max_size=120),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    def test_roundtrip_property(self, items):
        records = [dna(f"id{i}", text) for i, text in items]
        assert parse_fasta(format_fasta(records), DNA) == records


class TestGenerate:
    def test_random_sequence_deterministic(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = random_sequence("a", 100, DNA, rng1)
        b = random_sequence("a", 100, DNA, rng2)
        assert a == b
        assert len(a) == 100

    def test_random_sequence_frequencies(self):
        rng = np.random.default_rng(0)
        seq = random_sequence("a", 5000, DNA, rng, frequencies=np.array([0.7, 0.1, 0.1, 0.1]))
        frac_a = float((seq.codes == 0).mean())
        assert 0.65 < frac_a < 0.75

    def test_random_sequence_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_sequence("a", 0, DNA, rng)
        with pytest.raises(ValueError):
            random_sequence("a", 5, DNA, rng, frequencies=np.array([1.0]))

    def test_mutate_rates_zero_is_identity(self):
        rng = np.random.default_rng(0)
        seq = dna("s", "ACGT" * 25)
        mut = mutate_sequence(seq, rng, 0.0, 0.0, 0.0)
        assert str(mut) == str(seq)
        assert mut.seq_id == "s_mut"

    def test_mutate_changes_sequence(self):
        rng = np.random.default_rng(0)
        seq = dna("s", "ACGT" * 50)
        mut = mutate_sequence(seq, rng, substitution_rate=0.3)
        assert str(mut) != str(seq)
        # Substitutions never produce the same residue: hamming distance > 0
        diffs = sum(a != b for a, b in zip(str(seq), str(mut)))
        assert diffs > 20

    def test_mutate_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mutate_sequence(dna("s", "ACGT"), rng, substitution_rate=1.5)

    def test_random_database_lengths(self):
        db = random_database(50, DNA, seed=3, mean_length=200, min_length=50)
        lengths = [len(s) for s in db]
        assert min(lengths) >= 50
        assert 100 < sum(lengths) / len(lengths) < 400
        assert len({s.seq_id for s in db}) == 50

    def test_random_database_deterministic(self):
        assert random_database(5, DNA, seed=9) == random_database(5, DNA, seed=9)

    def test_seeded_database_contains_homologs(self):
        rng = np.random.default_rng(1)
        query = random_sequence("query", 120, DNA, rng)
        db, homolog_ids = seeded_database(query, decoy_count=30, homolog_count=3, seed=2)
        assert len(db) == 33
        assert len(homolog_ids) == 3
        ids = {s.seq_id for s in db}
        assert set(homolog_ids) <= ids
