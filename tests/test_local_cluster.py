"""End-to-end tests of the live code path: threads, then real donor
processes over RMI on localhost."""

import pytest

from repro.cluster.local import LocalCluster, ServerFacade, ThreadCluster
from repro.core.problem import Problem
from repro.core.scheduler import FixedGranularity
from repro.core.server import TaskFarmServer
from tests.helpers import (
    RangeSumAlgorithm,
    RangeSumDataManager,
    StagedAlgorithm,
    StagedDataManager,
)


class TestServerFacade:
    def test_wall_clock_roundtrip(self):
        server = TaskFarmServer(policy=FixedGranularity(10), lease_timeout=60.0)
        facade = ServerFacade(server)
        pid = facade.submit(
            Problem("sum", RangeSumDataManager(20), RangeSumAlgorithm())
        )
        facade.register_donor("d0")
        a = facade.request_work("d0")
        assert a is not None
        from repro.core.workunit import WorkResult

        lo, hi = a.payload
        facade.submit_result(WorkResult(pid, a.unit_id, sum(range(lo, hi)), "d0", 0.1, a.items))
        b = facade.request_work("d0")
        lo, hi = b.payload
        facade.submit_result(WorkResult(pid, b.unit_id, sum(range(lo, hi)), "d0", 0.1, b.items))
        assert facade.status_name(pid) == "complete"
        assert facade.final_result(pid) == sum(range(20))
        assert facade.all_complete()


class TestThreadCluster:
    def test_parallel_sum(self):
        cluster = ThreadCluster(workers=4, policy=FixedGranularity(7))
        pid = cluster.submit(
            Problem("sum", RangeSumDataManager(200), RangeSumAlgorithm())
        )
        cluster.run()
        assert cluster.final_result(pid) == sum(range(200))

    def test_staged_problem(self):
        cluster = ThreadCluster(workers=3, policy=FixedGranularity(1))
        pid = cluster.submit(
            Problem("staged", StagedDataManager(8), StagedAlgorithm())
        )
        cluster.run()
        assert cluster.final_result(pid) == sum(x * x for x in range(8))

    def test_many_problems(self):
        cluster = ThreadCluster(workers=4, policy=FixedGranularity(10))
        pids = [
            cluster.submit(
                Problem(f"sum-{n}", RangeSumDataManager(n), RangeSumAlgorithm())
            )
            for n in (30, 60, 90)
        ]
        cluster.run()
        for pid, n in zip(pids, (30, 60, 90)):
            assert cluster.final_result(pid) == sum(range(n))


@pytest.mark.slow
class TestLocalCluster:
    def test_process_donors_over_rmi(self):
        with LocalCluster(workers=2, policy=FixedGranularity(25)) as cluster:
            pid = cluster.submit(
                Problem("sum", RangeSumDataManager(500), RangeSumAlgorithm())
            )
            cluster.start()
            assert cluster.wait(pid, timeout=60.0) == sum(range(500))

    def test_two_problems_two_processes(self):
        with LocalCluster(workers=2, policy=FixedGranularity(50)) as cluster:
            p1 = cluster.submit(
                Problem("s1", RangeSumDataManager(300), RangeSumAlgorithm())
            )
            p2 = cluster.submit(
                Problem("s2", RangeSumDataManager(400), RangeSumAlgorithm())
            )
            cluster.start()
            assert cluster.wait(p1, timeout=60.0) == sum(range(300))
            assert cluster.wait(p2, timeout=60.0) == sum(range(400))
