"""Nonparametric bootstrap for phylogenies (Felsenstein 1985).

Resample alignment columns with replacement, rebuild a tree per
replicate, and report for each internal edge of a reference tree the
fraction of replicates containing the same bipartition — the standard
measure of clade support.  Replicates are independent, which makes the
bootstrap the textbook task-farm workload; the distributed version
lives in :mod:`repro.apps.dboot`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.distances import jc_distance_matrix, neighbor_joining
from repro.bio.phylo.tree import Tree


def bootstrap_alignment(
    alignment: SiteAlignment, rng: np.random.Generator
) -> SiteAlignment:
    """One bootstrap replicate: resample sites with replacement.

    Operates in pattern space: resampling sites is equivalent to
    drawing a multinomial over patterns with the original weights,
    which avoids materialising the expanded alignment.
    """
    total = int(alignment.weights.sum())
    probabilities = alignment.weights / alignment.weights.sum()
    new_weights = rng.multinomial(total, probabilities)
    keep = new_weights > 0
    replicate = SiteAlignment.__new__(SiteAlignment)
    replicate.names = list(alignment.names)
    replicate.n_sites = total
    replicate.patterns = alignment.patterns[:, keep].copy()
    replicate.weights = new_weights[keep].astype(np.float64)
    return replicate


def nj_replicate_tree(alignment: SiteAlignment) -> Tree:
    """The standard fast replicate builder: JC distances + NJ."""
    return neighbor_joining(alignment.names, jc_distance_matrix(alignment))


@dataclass(frozen=True, slots=True)
class SupportedSplit:
    """One reference bipartition with its bootstrap support."""

    split: frozenset[str]
    support: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.support <= 1.0):
            raise ValueError("support must be in [0, 1]")


def split_support(
    reference: Tree, replicate_splits: list[set[frozenset[str]]]
) -> list[SupportedSplit]:
    """Support of each reference split across replicate split sets."""
    if not replicate_splits:
        raise ValueError("need at least one replicate")
    n = len(replicate_splits)
    supported = []
    for split in sorted(reference.splits(), key=lambda s: (len(s), sorted(s))):
        count = sum(1 for splits in replicate_splits if split in splits)
        supported.append(SupportedSplit(split=split, support=count / n))
    return supported


def run_bootstrap(
    alignment: SiteAlignment,
    replicates: int = 100,
    seed: int = 0,
    reference: Tree | None = None,
) -> tuple[Tree, list[SupportedSplit]]:
    """Sequential bootstrap (the in-process reference implementation)."""
    if replicates < 1:
        raise ValueError("need at least one replicate")
    rng = np.random.default_rng(seed)
    if reference is None:
        reference = nj_replicate_tree(alignment)
    all_splits = []
    for _ in range(replicates):
        replicate = bootstrap_alignment(alignment, rng)
        all_splits.append(nj_replicate_tree(replicate).splits())
    return reference, split_support(reference, all_splits)
