"""Sequence evolution simulation.

Generates alignments with *known* history: sample root states from the
model's stationary distribution and push them down the tree through
each branch's transition matrix.  Used to build the 50-taxon benchmark
dataset (the paper's Fig. 2 workload) and to validate inference — a
tree estimated from simulated data should match the generating topology
on clean, long alignments.
"""

from __future__ import annotations

import numpy as np

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.models import GammaRates, N_STATES, SubstitutionModel
from repro.bio.phylo.tree import Tree
from repro.bio.seq.alphabet import DNA
from repro.bio.seq.sequence import Sequence
from repro.util.rng import spawn_rng


def _sample_children(
    parent_states: np.ndarray,
    categories: np.ndarray,
    P_stack: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorised per-site sampling of child states.

    Sites are grouped by (rate category, parent state); each group draws
    from one categorical distribution.
    """
    child = np.empty_like(parent_states)
    for k in range(P_stack.shape[0]):
        for s in range(N_STATES):
            mask = (categories == k) & (parent_states == s)
            count = int(mask.sum())
            if count:
                child[mask] = rng.choice(N_STATES, size=count, p=P_stack[k, s])
    return child


def simulate_alignment(
    tree: Tree,
    model: SubstitutionModel,
    sites: int,
    seed: int = 0,
    rates: GammaRates | None = None,
) -> SiteAlignment:
    """Evolve *sites* positions along *tree* under *model*.

    With *rates*, each site draws one Gamma category for its whole
    history (rates are heritable per site, the standard model).
    """
    if sites < 1:
        raise ValueError("need at least one site")
    rates = rates or GammaRates.uniform()
    rng = spawn_rng(seed, "simulate_alignment")
    categories = rng.integers(0, rates.categories, size=sites)

    states: dict[int, np.ndarray] = {}
    root_states = rng.choice(N_STATES, size=sites, p=model.freqs)
    states[id(tree.root)] = root_states

    leaf_rows: dict[str, np.ndarray] = {}
    for node in tree.preorder():
        if node.parent is not None:
            P_stack = np.stack(
                [
                    model.transition_matrix(node.branch_length, float(r))
                    for r in rates.rates
                ]
            )
            states[id(node)] = _sample_children(
                states[id(node.parent)], categories, P_stack, rng
            )
        if node.is_leaf:
            leaf_rows[node.name] = states[id(node)]

    names = tree.leaf_names()
    matrix = np.stack([leaf_rows[name] for name in names]).astype(np.uint8)
    return SiteAlignment(names, matrix)


def alignment_to_sequences(alignment: SiteAlignment) -> list[Sequence]:
    """Expand a pattern-compressed alignment back to Sequence records
    (pattern order, not original site order — fine for round trips)."""
    expanded = np.repeat(
        alignment.patterns, alignment.weights.astype(int), axis=1
    )
    return [
        Sequence(name, expanded[i].astype(np.uint8), DNA)
        for i, name in enumerate(alignment.names)
    ]


def random_yule_tree(
    n_leaves: int,
    seed: int = 0,
    mean_branch: float = 0.1,
    prefix: str = "taxon",
) -> Tree:
    """A random topology via the Yule (random-joins) process.

    Branch lengths are exponential with mean *mean_branch* — realistic
    enough for benchmark workloads and inference tests.
    """
    if n_leaves < 2:
        raise ValueError("need at least two leaves")
    rng = spawn_rng(seed, "yule_tree")
    from repro.bio.phylo.tree import Node

    nodes = [
        Node(f"{prefix}{i:02d}", float(rng.exponential(mean_branch)) + 1e-3)
        for i in range(n_leaves)
    ]
    while len(nodes) > 3:
        i, j = sorted(rng.choice(len(nodes), size=2, replace=False))
        parent = Node("", float(rng.exponential(mean_branch)) + 1e-3)
        parent.add_child(nodes[i])
        parent.add_child(nodes[j])
        nodes = [n for k, n in enumerate(nodes) if k not in (i, j)] + [parent]
    root = Node()
    for node in nodes:
        root.add_child(node)
    return Tree(root)
