"""Stepwise-insertion maximum-likelihood tree search (fastDNAml style).

The algorithm DPRml distributes [11, 16 in the paper]:

1. Start from the unique 3-taxon tree.
2. For each remaining taxon (in a distance-guided order): try inserting
   it on **every** edge of the current tree — ``2i−5`` candidate
   placements at stage *i* — optimising the three branch lengths local
   to each insertion; keep the best-scoring placement.
3. Periodically (and finally) re-optimise all branch lengths.

Each stage's placements are independent given the current tree, which
is exactly the unit of distribution: DPRml ships ``(tree newick, taxon,
edge index)`` tasks to donors and synchronises at the stage barrier.
This module provides both the sequential search (:class:`StepwiseSearch`)
and the task-level pieces (:func:`evaluate_placement`,
:func:`apply_placement`) the distributed application composes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.distances import nj_addition_order
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GammaRates, SubstitutionModel
from repro.bio.phylo.optimize import optimize_all_branches, optimize_local
from repro.bio.phylo.tree import Tree, parse_newick

DEFAULT_LEAF_BRANCH = 0.1


@dataclass(frozen=True, slots=True)
class PlacementScore:
    """Outcome of evaluating one candidate placement."""

    edge_index: int
    log_likelihood: float
    child_branch: float
    internal_branch: float
    leaf_branch: float
    cost: float = 0.0  # node updates spent (workload-trace currency)

    def better_than(self, other: "PlacementScore | None") -> bool:
        if other is None:
            return True
        if self.log_likelihood != other.log_likelihood:
            return self.log_likelihood > other.log_likelihood
        return self.edge_index < other.edge_index  # deterministic ties


@dataclass(slots=True)
class StageRecord:
    """Accounting for one insertion stage."""

    taxon: str
    n_candidates: int
    best: PlacementScore
    costs: list[float] = field(default_factory=list)


@dataclass(slots=True)
class StepwiseResult:
    """Final tree plus per-stage accounting."""

    tree: Tree
    log_likelihood: float
    stages: list[StageRecord]
    addition_order: list[str]

    @property
    def total_evaluations(self) -> int:
        return sum(s.n_candidates for s in self.stages)


def evaluate_placement(
    tree_newick: str,
    taxon: str,
    edge_index: int,
    alignment: SiteAlignment,
    model: SubstitutionModel,
    rates: GammaRates | None = None,
    local_passes: int = 1,
    leaf_branch: float = DEFAULT_LEAF_BRANCH,
) -> PlacementScore:
    """Score inserting *taxon* on edge *edge_index* of the Newick tree.

    Self-contained (tree travels as text, the edge as its postorder
    index) so it can run in any donor process.  The alignment is
    restricted to the taxa actually on the tree plus the new one, so
    early stages are cheap.
    """
    tree = parse_newick(tree_newick)
    edges = tree.edges()
    if not (0 <= edge_index < len(edges)):
        raise IndexError(f"edge {edge_index} out of range ({len(edges)} edges)")
    sub = alignment.subset(tree.leaf_names() + [taxon])
    tl = TreeLikelihood(tree, sub, model, rates)
    before = tl.node_updates
    v, leaf = tree.insert_on_edge(edges[edge_index], taxon, leaf_branch)
    tl.invalidate(v)
    loglik = optimize_local(tl, v, passes=local_passes)
    child = v.children[0] if v.children[1] is leaf else v.children[1]
    return PlacementScore(
        edge_index=edge_index,
        log_likelihood=loglik,
        child_branch=child.branch_length,
        internal_branch=v.branch_length,
        leaf_branch=leaf.branch_length,
        cost=float(tl.node_updates - before),
    )


def apply_placement(
    tree: Tree, taxon: str, score: PlacementScore, leaf_branch: float = DEFAULT_LEAF_BRANCH
) -> None:
    """Insert *taxon* into *tree* according to a winning score."""
    edges = tree.edges()
    v, leaf = tree.insert_on_edge(edges[score.edge_index], taxon, leaf_branch)
    child = v.children[0] if v.children[1] is leaf else v.children[1]
    child.branch_length = score.child_branch
    v.branch_length = score.internal_branch
    leaf.branch_length = score.leaf_branch


class StepwiseSearch:
    """Sequential stepwise-insertion search over a full alignment.

    Parameters
    ----------
    alignment:
        All taxa to place.
    model, rates:
        The likelihood model.
    addition_order:
        Taxon order; defaults to the distance-guided order of
        :func:`~repro.bio.phylo.distances.nj_addition_order`.
    local_passes:
        Optimisation passes over the three local branches per candidate.
    global_opt_every:
        Run a full branch-length optimisation after every N stages
        (0 = only at the end).
    """

    def __init__(
        self,
        alignment: SiteAlignment,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        addition_order: list[str] | None = None,
        local_passes: int = 1,
        global_opt_every: int = 0,
        leaf_branch: float = DEFAULT_LEAF_BRANCH,
    ):
        if alignment.n_taxa < 3:
            raise ValueError("stepwise insertion needs at least three taxa")
        self.alignment = alignment
        self.model = model
        self.rates = rates
        self.local_passes = local_passes
        self.global_opt_every = global_opt_every
        self.leaf_branch = leaf_branch
        order = addition_order or nj_addition_order(alignment)
        if sorted(order) != sorted(alignment.names):
            raise ValueError("addition order must be a permutation of the taxa")
        self.order = list(order)

    def initial_tree(self) -> Tree:
        """The 3-taxon starting tree (its topology is unique)."""
        return Tree.star(self.order[:3], branch_length=self.leaf_branch)

    def run(self) -> StepwiseResult:
        """Execute the whole search in-process."""
        tree = self.initial_tree()
        # Settle the starting branch lengths.
        tl = TreeLikelihood(
            tree, self.alignment.subset(self.order[:3]), self.model, self.rates
        )
        optimize_all_branches(tl, passes=1)

        stages: list[StageRecord] = []
        for stage_number, taxon in enumerate(self.order[3:], start=4):
            newick = tree.newick()
            n_edges = len(tree.edges())
            best: PlacementScore | None = None
            costs: list[float] = []
            for edge_index in range(n_edges):
                score = evaluate_placement(
                    newick,
                    taxon,
                    edge_index,
                    self.alignment,
                    self.model,
                    self.rates,
                    local_passes=self.local_passes,
                    leaf_branch=self.leaf_branch,
                )
                costs.append(score.cost)
                if score.better_than(best):
                    best = score
            assert best is not None
            apply_placement(tree, taxon, best, leaf_branch=self.leaf_branch)
            stages.append(
                StageRecord(taxon=taxon, n_candidates=n_edges, best=best, costs=costs)
            )
            if self.global_opt_every and (stage_number % self.global_opt_every == 0):
                tl = TreeLikelihood(
                    tree,
                    self.alignment.subset(tree.leaf_names()),
                    self.model,
                    self.rates,
                )
                optimize_all_branches(tl, passes=1)

        tl = TreeLikelihood(
            tree, self.alignment.subset(tree.leaf_names()), self.model, self.rates
        )
        final_loglik = optimize_all_branches(tl, passes=2)
        return StepwiseResult(
            tree=tree,
            log_likelihood=final_loglik,
            stages=stages,
            addition_order=self.order,
        )
