"""Nearest-neighbour-interchange (NNI) local rearrangements.

Stepwise insertion is greedy; fastDNAml and its parallel descendants
[15, 16 in the paper] follow each insertion phase with local
rearrangements to escape the worst local optima.  An NNI acts on an
internal edge: the four subtrees around it can be joined in three
topologies, two of which differ from the current one.

``nni_candidates`` enumerates the rearrangements as independent,
serialisable tasks (tree text + edge index + which swap), so a
distributed searcher can farm them out exactly like placements;
``nni_search`` is the in-process hill climber built on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GammaRates, SubstitutionModel
from repro.bio.phylo.optimize import optimize_branch
from repro.bio.phylo.tree import Node, Tree, TreeError, parse_newick


@dataclass(frozen=True, slots=True)
class NNIMove:
    """One candidate rearrangement: swap child *swap_child* of the edge's
    lower node with the edge node's sibling."""

    edge_index: int
    swap_child: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.swap_child not in (0, 1):
            raise ValueError("swap_child must be 0 or 1")


@dataclass(frozen=True, slots=True)
class NNIScore:
    """Outcome of evaluating one NNI move."""

    move: NNIMove
    log_likelihood: float


def internal_edges(tree: Tree) -> list[int]:
    """Edge indices whose child end is internal with two children —
    the edges on which NNI is defined."""
    return [
        index
        for index, node in enumerate(tree.edges())
        if not node.is_leaf and len(node.children) == 2 and node.parent is not None
    ]


def nni_candidates(tree: Tree) -> list[NNIMove]:
    """All NNI moves on the current topology (2 per internal edge)."""
    return [
        NNIMove(edge_index, swap)
        for edge_index in internal_edges(tree)
        for swap in (0, 1)
    ]


def _sibling(node: Node) -> Node:
    parent = node.parent
    if parent is None:
        raise TreeError("root has no sibling")
    others = [c for c in parent.children if c is not node]
    if not others:
        raise TreeError("node has no sibling")
    # With a trifurcating root there can be two "siblings"; NNI uses the
    # first in child order, deterministically.
    return others[0]


def apply_nni(tree: Tree, move: NNIMove) -> None:
    """Perform *move* on *tree* in place.

    Swaps one child of the edge's lower node with the lower node's
    sibling (the classic NNI around the edge ``node → parent``).

    The move's edge index is interpreted against the tree's *current*
    postorder, so apply moves one at a time to the tree they were
    enumerated on (rearranging shifts postorder positions).
    """
    edges = tree.edges()
    if not (0 <= move.edge_index < len(edges)):
        raise IndexError(f"edge {move.edge_index} out of range")
    node = edges[move.edge_index]
    if node.is_leaf or len(node.children) != 2:
        raise TreeError("NNI requires an internal edge with two children")
    parent = node.parent
    sibling = _sibling(node)
    child = node.children[move.swap_child]

    # Swap `child` and `sibling` between node and parent, keeping each
    # one's branch length with it (standard NNI convention).
    child_pos = node.children.index(child)
    sib_pos = parent.children.index(sibling)
    node.children[child_pos] = sibling
    parent.children[sib_pos] = child
    child.parent = parent
    sibling.parent = node


def evaluate_nni(
    tree_newick: str,
    move: NNIMove,
    alignment: SiteAlignment,
    model: SubstitutionModel,
    rates: GammaRates | None = None,
    optimize_edge: bool = True,
) -> NNIScore:
    """Score one NNI move on a serialized tree (donor-executable)."""
    tree = parse_newick(tree_newick)
    apply_nni(tree, move)
    sub = alignment.subset(tree.leaf_names())
    tl = TreeLikelihood(tree, sub, model, rates)
    if optimize_edge:
        edge_node = tree.edges()[move.edge_index]
        loglik = optimize_branch(tl, edge_node, tol=1e-4)
    else:
        loglik = tl.log_likelihood()
    return NNIScore(move=move, log_likelihood=loglik)


def nni_search(
    tree: Tree,
    alignment: SiteAlignment,
    model: SubstitutionModel,
    rates: GammaRates | None = None,
    max_rounds: int = 10,
    min_improvement: float = 1e-3,
) -> tuple[Tree, float, int]:
    """Hill-climb with NNI until no move improves the likelihood.

    Returns ``(tree, log_likelihood, rounds_used)``.  The input tree is
    not modified; work happens on a copy.
    """
    current = tree.copy()
    sub = alignment.subset(current.leaf_names())
    best_ll = TreeLikelihood(current, sub, model, rates).log_likelihood()
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        newick = current.newick()
        best_move: NNIScore | None = None
        for move in nni_candidates(current):
            score = evaluate_nni(newick, move, alignment, model, rates)
            if best_move is None or score.log_likelihood > best_move.log_likelihood:
                best_move = score
        if best_move is None or best_move.log_likelihood <= best_ll + min_improvement:
            break
        apply_nni(current, best_move.move)
        sub = alignment.subset(current.leaf_names())
        tl = TreeLikelihood(current, sub, model, rates)
        edge_node = current.edges()[best_move.move.edge_index]
        best_ll = optimize_branch(tl, edge_node, tol=1e-4)
    return current, best_ll, rounds
