"""Distance methods: JC69 distances and neighbour joining.

DPRml adds taxa in an order guided by simple distance heuristics (as
its ancestors [15] did) and the test suite validates the ML machinery
by checking it recovers the same topologies NJ finds on clean data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.models import N_STATES
from repro.bio.phylo.tree import Node, Tree

#: p-distances at or beyond 0.75 have no finite JC correction.
MAX_JC_DISTANCE = 5.0


def jc_distance(row_a: np.ndarray, row_b: np.ndarray, weights: np.ndarray) -> float:
    """Jukes-Cantor distance between two pattern rows.

    Sites where either taxon is unknown are ignored.  Saturated pairs
    (p ≥ 3/4) are capped at :data:`MAX_JC_DISTANCE`.
    """
    known = (row_a < N_STATES) & (row_b < N_STATES)
    total = float(weights[known].sum())
    if total == 0:
        return MAX_JC_DISTANCE
    diff = float(weights[known & (row_a != row_b)].sum())
    p = diff / total
    if p >= 0.75 - 1e-12:
        return MAX_JC_DISTANCE
    return min(MAX_JC_DISTANCE, -0.75 * math.log1p(-4.0 * p / 3.0))


def jc_distance_matrix(alignment: SiteAlignment) -> np.ndarray:
    """All-pairs JC distance matrix in taxon order."""
    n = alignment.n_taxa
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = jc_distance(
                alignment.patterns[i], alignment.patterns[j], alignment.weights
            )
            D[i, j] = D[j, i] = d
    return D


def neighbor_joining(names: list[str], distances: np.ndarray) -> Tree:
    """Saitou & Nei neighbour joining.

    Returns an unrooted topology in the package's rooted-at-trifurcation
    representation.  Branch lengths are clamped at zero (NJ can produce
    small negatives on noisy data).
    """
    n = len(names)
    D = np.asarray(distances, dtype=np.float64)
    if D.shape != (n, n):
        raise ValueError(f"distance matrix {D.shape} does not match {n} names")
    if not np.allclose(D, D.T) or not np.allclose(np.diag(D), 0.0):
        raise ValueError("distance matrix must be symmetric with zero diagonal")
    if n < 2:
        raise ValueError("need at least two taxa")
    if n == 2:
        root = Node()
        root.add_child(Node(names[0], max(0.0, D[0, 1] / 2)))
        root.add_child(Node(names[1], max(0.0, D[0, 1] / 2)))
        return Tree(root)

    nodes: dict[int, Node] = {i: Node(names[i]) for i in range(n)}
    dist: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            dist[(i, j)] = float(D[i, j])
    active = list(range(n))
    next_id = n

    def d(i: int, j: int) -> float:
        return dist[(i, j) if i < j else (j, i)]

    while len(active) > 3:
        m = len(active)
        r = {i: sum(d(i, k) for k in active if k != i) for i in active}
        best = None
        best_q = math.inf
        for ai in range(m):
            for aj in range(ai + 1, m):
                i, j = active[ai], active[aj]
                q = (m - 2) * d(i, j) - r[i] - r[j]
                if q < best_q - 1e-12:
                    best_q = q
                    best = (i, j)
        i, j = best  # type: ignore[misc]
        dij = d(i, j)
        li = 0.5 * dij + (r[i] - r[j]) / (2 * (m - 2))
        lj = dij - li
        u = Node()
        child_i, child_j = nodes[i], nodes[j]
        child_i.branch_length = max(0.0, li)
        child_j.branch_length = max(0.0, lj)
        u.add_child(child_i)
        u.add_child(child_j)
        nodes[next_id] = u
        for k in active:
            if k in (i, j):
                continue
            duk = 0.5 * (d(i, k) + d(j, k) - dij)
            key = (k, next_id) if k < next_id else (next_id, k)
            dist[key] = max(0.0, duk)
        active = [k for k in active if k not in (i, j)] + [next_id]
        next_id += 1

    x, y, z = active
    root = Node()
    lx = 0.5 * (d(x, y) + d(x, z) - d(y, z))
    ly = 0.5 * (d(x, y) + d(y, z) - d(x, z))
    lz = 0.5 * (d(x, z) + d(y, z) - d(x, y))
    for idx, length in ((x, lx), (y, ly), (z, lz)):
        node = nodes[idx]
        node.branch_length = max(0.0, length)
        root.add_child(node)
    return Tree(root)


def nj_addition_order(alignment: SiteAlignment, seed_taxa: int = 3) -> list[str]:
    """A distance-guided taxon addition order for stepwise insertion.

    Start from the two most distant taxa plus the taxon farthest from
    both (a well-spread initial triple), then add remaining taxa in
    order of decreasing distance-sum to already-placed taxa — distant,
    information-rich taxa early, as the parallel fastDNAml lineage does.
    """
    D = jc_distance_matrix(alignment)
    names = alignment.names
    n = len(names)
    if n < 3:
        return list(names)
    i, j = np.unravel_index(int(np.argmax(D)), D.shape)
    placed = [int(i), int(j)]
    rest = [k for k in range(n) if k not in placed]
    k = max(rest, key=lambda t: D[t, placed].sum())
    placed.append(k)
    rest.remove(k)
    while rest:
        nxt = max(rest, key=lambda t: D[t, placed].sum())
        placed.append(nxt)
        rest.remove(nxt)
    return [names[t] for t in placed]
