"""Maximum-likelihood phylogenetics — the PAL-v1.4 replacement.

Everything DPRml needs, implemented from scratch:

* :mod:`repro.bio.phylo.tree` — binary trees over an unrooted topology
  (root is a trifurcation), Newick I/O, edge insertion/removal.
* :mod:`repro.bio.phylo.models` — DNA substitution models (JC69, K80,
  F81, F84, HKY85, TN93, GTR) with discrete-Gamma rate heterogeneity;
  "one of the most extensive ranges of DNA substitution models" is the
  paper's claim for DPRml, so the whole family is here.
* :mod:`repro.bio.phylo.alignment` — site-pattern-compressed alignments.
* :mod:`repro.bio.phylo.likelihood` — Felsenstein pruning with per-node
  scaling and dirty-node caching.
* :mod:`repro.bio.phylo.optimize` — Brent branch-length optimisation.
* :mod:`repro.bio.phylo.stepwise` — the fastDNAml-style stepwise
  insertion search DPRml distributes.
* :mod:`repro.bio.phylo.distances` / :mod:`simulate` — JC distances,
  neighbour joining, and sequence evolution simulation for validation.
"""

from repro.bio.phylo.tree import Node, Tree, TreeError, parse_newick, rf_distance
from repro.bio.phylo.models import (
    GTR,
    HKY85,
    JC69,
    K80,
    F81,
    F84,
    TN93,
    GammaRates,
    SubstitutionModel,
    model_by_name,
)
from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.optimize import optimize_all_branches, optimize_branch
from repro.bio.phylo.distances import jc_distance_matrix, neighbor_joining
from repro.bio.phylo.simulate import simulate_alignment
from repro.bio.phylo.stepwise import StepwiseSearch, StepwiseResult
from repro.bio.phylo.bootstrap import run_bootstrap
from repro.bio.phylo.consensus import majority_consensus, strict_consensus
from repro.bio.phylo.draw import ascii_outline, ascii_tree
from repro.bio.phylo.estimate import fit_hky_gamma
from repro.bio.phylo.nni import nni_search

__all__ = [
    "ascii_outline",
    "ascii_tree",
    "fit_hky_gamma",
    "majority_consensus",
    "nni_search",
    "run_bootstrap",
    "strict_consensus",
    "F81",
    "F84",
    "GTR",
    "GammaRates",
    "HKY85",
    "JC69",
    "K80",
    "Node",
    "SiteAlignment",
    "StepwiseResult",
    "StepwiseSearch",
    "SubstitutionModel",
    "TN93",
    "Tree",
    "TreeError",
    "TreeLikelihood",
    "jc_distance_matrix",
    "model_by_name",
    "neighbor_joining",
    "optimize_all_branches",
    "optimize_branch",
    "parse_newick",
    "rf_distance",
    "simulate_alignment",
]
