"""ASCII rendering of phylogenetic trees.

Terminal-friendly output for the CLI tools and examples — a user who
just reconstructed a tree wants to *see* it without leaving the shell.
Two renderings:

* :func:`ascii_tree` — a left-to-right cladogram with box-drawing
  connectors; branch lengths optionally scale the horizontal spans.
* :func:`ascii_outline` — an indented outline (one node per line) that
  is diff-friendly and shows exact branch lengths.
"""

from __future__ import annotations

from repro.bio.phylo.tree import Node, Tree


def ascii_outline(tree: Tree, lengths: bool = True) -> str:
    """Indented one-node-per-line rendering."""
    lines: list[str] = []

    def visit(node: Node, depth: int) -> None:
        label = node.name or "*"
        if lengths and node.parent is not None:
            label += f" :{node.branch_length:.4g}"
        lines.append("  " * depth + label)
        for child in node.children:
            visit(child, depth + 1)

    visit(tree.root, 0)
    return "\n".join(lines)


def ascii_tree(
    tree: Tree,
    width: int = 60,
    use_lengths: bool = True,
) -> str:
    """Left-to-right cladogram with box-drawing characters.

    Parameters
    ----------
    width:
        Target column for the leaf labels.
    use_lengths:
        Scale horizontal runs by branch length (a true phylogram);
        otherwise every edge gets equal width (a cladogram).
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    # Horizontal position of each node.
    xpos: dict[Node, float] = {tree.root: 0.0}
    max_x = 0.0
    for node in tree.preorder():
        if node.parent is not None:
            step = node.branch_length if use_lengths else 1.0
            xpos[node] = xpos[node.parent] + max(step, 1e-9)
            max_x = max(max_x, xpos[node])
    if max_x <= 0:
        max_x = 1.0
    scale = (width - 12) / max_x

    def col(node: Node) -> int:
        return 2 + int(round(xpos[node] * scale))

    # Vertical position: leaves get consecutive rows, internals center
    # over their children.
    row: dict[Node, int] = {}
    next_row = 0
    for node in tree.postorder():
        if node.is_leaf:
            row[node] = next_row
            next_row += 2
        else:
            rows = [row[c] for c in node.children]
            row[node] = (min(rows) + max(rows)) // 2

    height = next_row - 1
    grid = [[" "] * (width + 20) for _ in range(height)]

    def put(r: int, c: int, text: str) -> None:
        for offset, ch in enumerate(text):
            if 0 <= r < height and 0 <= c + offset < len(grid[0]):
                grid[r][c + offset] = ch

    for node in tree.postorder():
        r, c = row[node], col(node)
        if node.is_leaf:
            put(r, c + 1, f" {node.name}")
        if node.children:
            child_rows = [row[ch] for ch in node.children]
            top, bottom = min(child_rows), max(child_rows)
            for rr in range(top, bottom + 1):
                put(rr, c, "|")
            put(r, c, "+")
            for child in node.children:
                cr, cc = row[child], col(child)
                put(cr, c, "+")
                for x in range(c + 1, cc):
                    put(cr, x, "-")
        if node.parent is not None:
            # the horizontal run from the parent junction is drawn by
            # the parent above; nothing more to do here.
            pass

    return "\n".join("".join(line).rstrip() for line in grid)
