"""DNA substitution models.

Every model is a time-reversible continuous-time Markov chain on
{A, C, G, T} defined by symmetric exchangeabilities ``R`` and stationary
frequencies ``π``: ``Q[i,j] = R[i,j]·π[j]`` for ``i≠j``, diagonal set so
rows sum to zero, and the whole matrix scaled so the expected
substitution rate at stationarity is 1 — branch lengths are then in
expected substitutions per site, the standard unit.

Transition matrices ``P(t) = exp(Qt)`` come from the symmetrised
eigendecomposition (exact for reversible models, no Padé iteration):
with ``D = diag(√π)``, ``B = D·Q·D⁻¹`` is symmetric, so
``P(t) = D⁻¹·U·exp(Λt)·Uᵀ·D``.

Rate heterogeneity across sites uses Yang's (1994) discrete Gamma:
``K`` equal-probability categories, each represented by its mean rate,
with overall mean exactly 1.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammainc
from scipy.stats import gamma as gamma_dist

#: Nucleotide order everywhere: A, C, G, T (matches the DNA alphabet).
N_STATES = 4

_PURINES = (0, 2)  # A, G
_PYRIMIDINES = (1, 3)  # C, T


def _validate_freqs(freqs: np.ndarray) -> np.ndarray:
    freqs = np.asarray(freqs, dtype=np.float64)
    if freqs.shape != (N_STATES,):
        raise ValueError(f"need {N_STATES} frequencies, got shape {freqs.shape}")
    if (freqs <= 0).any():
        raise ValueError("all base frequencies must be positive")
    if not np.isclose(freqs.sum(), 1.0):
        raise ValueError(f"frequencies must sum to 1, got {freqs.sum()}")
    return freqs / freqs.sum()


class SubstitutionModel:
    """A reversible DNA model built from exchangeabilities and π."""

    def __init__(self, name: str, exchangeabilities: np.ndarray, freqs: np.ndarray):
        R = np.asarray(exchangeabilities, dtype=np.float64)
        if R.shape != (N_STATES, N_STATES):
            raise ValueError(f"exchangeability matrix must be 4x4, got {R.shape}")
        if not np.allclose(R, R.T):
            raise ValueError("exchangeabilities must be symmetric")
        if (R[~np.eye(N_STATES, dtype=bool)] <= 0).any():
            raise ValueError("off-diagonal exchangeabilities must be positive")
        self.name = name
        self.freqs = _validate_freqs(freqs)
        self.R = R

        Q = R * self.freqs[None, :]
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        # Normalise: expected rate  −Σ πᵢ Qᵢᵢ  = 1.
        mu = -float(np.dot(self.freqs, np.diag(Q)))
        if mu <= 0:
            raise ValueError("degenerate rate matrix")
        self.Q = Q / mu

        sqrt_pi = np.sqrt(self.freqs)
        B = (sqrt_pi[:, None] * self.Q) / sqrt_pi[None, :]
        eigvals, eigvecs = np.linalg.eigh((B + B.T) / 2.0)
        self._eigvals = eigvals
        self._left = eigvecs.T * sqrt_pi[None, :]          # Uᵀ·D
        self._right = (1.0 / sqrt_pi)[:, None] * eigvecs   # D⁻¹·U

    def transition_matrix(self, t: float, rate: float = 1.0) -> np.ndarray:
        """``P(rate·t)`` for one branch length (rows sum to 1)."""
        if t < 0:
            raise ValueError(f"negative branch length {t}")
        exp_diag = np.exp(self._eigvals * (t * rate))
        P = (self._right * exp_diag[None, :]) @ self._left
        # Clip tiny negative round-off so downstream probabilities stay valid.
        np.clip(P, 0.0, None, out=P)
        return P / P.sum(axis=1, keepdims=True)

    def transition_matrices(
        self, t: float, rates: np.ndarray
    ) -> np.ndarray:
        """Stack of ``P(rate_k · t)`` over rate categories: (K, 4, 4)."""
        return np.stack([self.transition_matrix(t, float(r)) for r in rates])

    def __repr__(self) -> str:  # pragma: no cover
        return f"SubstitutionModel({self.name!r})"


# ---------------------------------------------------------------------------
# The model family (in increasing generality)
# ---------------------------------------------------------------------------

_UNIFORM = np.full(N_STATES, 0.25)


def _kappa_exchange(kappa: float) -> np.ndarray:
    """Transitions (A<->G, C<->T) kappa times faster than transversions."""
    if kappa <= 0:
        raise ValueError("kappa must be positive")
    R = np.ones((N_STATES, N_STATES))
    R[0, 2] = R[2, 0] = kappa
    R[1, 3] = R[3, 1] = kappa
    np.fill_diagonal(R, 0.0)
    return R


def JC69() -> SubstitutionModel:
    """Jukes-Cantor 1969: equal rates, equal frequencies."""
    return SubstitutionModel("JC69", _kappa_exchange(1.0), _UNIFORM)


def K80(kappa: float = 2.0) -> SubstitutionModel:
    """Kimura 1980: transition/transversion ratio, equal frequencies."""
    return SubstitutionModel(f"K80(k={kappa:g})", _kappa_exchange(kappa), _UNIFORM)


def F81(freqs) -> SubstitutionModel:
    """Felsenstein 1981: unequal frequencies, equal exchangeabilities."""
    return SubstitutionModel("F81", _kappa_exchange(1.0), freqs)


def HKY85(kappa: float, freqs) -> SubstitutionModel:
    """Hasegawa-Kishino-Yano 1985: kappa + unequal frequencies."""
    return SubstitutionModel(
        f"HKY85(k={kappa:g})", _kappa_exchange(kappa), freqs
    )


def F84(kappa: float, freqs) -> SubstitutionModel:
    """Felsenstein 1984 (as in PHYLIP/PAL): transition bias split by
    purine/pyrimidine frequencies."""
    if kappa <= 0:
        raise ValueError("kappa must be positive")
    freqs = _validate_freqs(np.asarray(freqs, dtype=np.float64))
    pi_r = freqs[list(_PURINES)].sum()
    pi_y = freqs[list(_PYRIMIDINES)].sum()
    R = np.ones((N_STATES, N_STATES))
    R[0, 2] = R[2, 0] = 1.0 + kappa / pi_r
    R[1, 3] = R[3, 1] = 1.0 + kappa / pi_y
    np.fill_diagonal(R, 0.0)
    return SubstitutionModel(f"F84(k={kappa:g})", R, freqs)


def TN93(kappa_r: float, kappa_y: float, freqs) -> SubstitutionModel:
    """Tamura-Nei 1993: separate purine and pyrimidine transition rates."""
    if kappa_r <= 0 or kappa_y <= 0:
        raise ValueError("kappas must be positive")
    R = np.ones((N_STATES, N_STATES))
    R[0, 2] = R[2, 0] = kappa_r
    R[1, 3] = R[3, 1] = kappa_y
    np.fill_diagonal(R, 0.0)
    return SubstitutionModel(f"TN93({kappa_r:g},{kappa_y:g})", R, freqs)


def GTR(rates, freqs) -> SubstitutionModel:
    """General time-reversible: six exchangeabilities
    (AC, AG, AT, CG, CT, GT order) + frequencies."""
    rates = np.asarray(rates, dtype=np.float64)
    if rates.shape != (6,):
        raise ValueError("GTR needs exactly six exchangeabilities")
    if (rates <= 0).any():
        raise ValueError("GTR exchangeabilities must be positive")
    ac, ag, at, cg, ct, gt = rates
    R = np.array(
        [
            [0.0, ac, ag, at],
            [ac, 0.0, cg, ct],
            [ag, cg, 0.0, gt],
            [at, ct, gt, 0.0],
        ]
    )
    return SubstitutionModel("GTR", R, freqs)


def model_by_name(name: str, **params) -> SubstitutionModel:
    """Configuration-file model lookup (DPRml's ``model =`` key).

    Recognised names: jc69, k80, f81, f84, hky85, tn93, gtr.  Parameters
    not supplied fall back to neutral defaults (kappa=2, uniform π,
    unit GTR rates).
    """
    key = name.lower()
    freqs = params.get("freqs", _UNIFORM)
    kappa = params.get("kappa", 2.0)
    if key == "jc69":
        return JC69()
    if key == "k80":
        return K80(kappa)
    if key == "f81":
        return F81(freqs)
    if key == "f84":
        return F84(kappa, freqs)
    if key == "hky85":
        return HKY85(kappa, freqs)
    if key == "tn93":
        return TN93(params.get("kappa_r", kappa), params.get("kappa_y", kappa), freqs)
    if key == "gtr":
        return GTR(params.get("rates", np.ones(6)), freqs)
    raise ValueError(f"unknown substitution model {name!r}")


class GammaRates:
    """Discrete-Gamma site-rate heterogeneity (Yang 1994).

    ``K`` equal-probability categories; category *k*'s rate is the mean
    of the Gamma(α, 1/α) distribution over its quantile slice, so the
    rates average exactly 1.
    """

    def __init__(self, alpha: float, categories: int = 4):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if categories < 1:
            raise ValueError("need at least one category")
        self.alpha = alpha
        self.categories = categories
        if categories == 1:
            self.rates = np.ones(1)
        else:
            k = categories
            cuts = gamma_dist.ppf(np.arange(1, k) / k, alpha, scale=1.0 / alpha)
            bounds = np.concatenate(([0.0], cuts, [np.inf]))
            # E[X · 1{X<q}] for Gamma(a, scale s) is a·s·gammainc(a+1, q/s);
            # here a·s = 1.
            upper = gammainc(alpha + 1, bounds[1:] * alpha)
            lower = gammainc(alpha + 1, bounds[:-1] * alpha)
            self.rates = (upper - lower) * k
        self.weights = np.full(self.categories, 1.0 / self.categories)

    @classmethod
    def uniform(cls) -> "GammaRates":
        """The no-heterogeneity special case (one category, rate 1)."""
        rates = cls.__new__(cls)
        rates.alpha = np.inf
        rates.categories = 1
        rates.rates = np.ones(1)
        rates.weights = np.ones(1)
        return rates

    def __repr__(self) -> str:  # pragma: no cover
        return f"GammaRates(alpha={self.alpha}, K={self.categories})"
