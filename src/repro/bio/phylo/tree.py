"""Phylogenetic trees and Newick I/O.

Topologies are *unrooted* (what maximum likelihood under reversible
models actually infers) but stored *rooted at a trifurcation*: the root
has three children for trees of three or more taxa and every other
internal node is binary — the classic fastDNAml/PAL representation.
Likelihood is invariant to the root placement (the pulley principle),
which the test suite verifies.

Every non-root node identifies the **edge** between it and its parent;
edge-indexed operations (insert a taxon on edge *k*, enumerate edges)
use postorder position, which is deterministic and survives a
Newick round trip — that is what lets a DPRml donor receive a tree as
text plus an edge index and reconstruct the exact placement.
"""

from __future__ import annotations

from typing import Callable, Iterator


class TreeError(ValueError):
    """Structural violation or malformed Newick."""


class Node:
    """One tree node; ``branch_length`` is the edge to its parent."""

    __slots__ = ("name", "children", "parent", "branch_length")

    def __init__(self, name: str = "", branch_length: float = 0.0):
        self.name = name
        self.children: list[Node] = []
        self.parent: Node | None = None
        self.branch_length = branch_length

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "Node") -> "Node":
        if child.parent is not None:
            raise TreeError(f"node {child.name!r} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def detach(self) -> "Node":
        """Remove this node (and its subtree) from its parent."""
        if self.parent is None:
            raise TreeError("cannot detach the root")
        self.parent.children.remove(self)
        self.parent = None
        return self

    def __repr__(self) -> str:  # pragma: no cover
        kind = "leaf" if self.is_leaf else f"internal({len(self.children)})"
        return f"Node({self.name!r}, {kind}, bl={self.branch_length:.4g})"


class Tree:
    """A tree built around one root node."""

    def __init__(self, root: Node):
        self.root = root

    # -- construction -----------------------------------------------------

    @classmethod
    def star(cls, names: list[str], branch_length: float = 0.1) -> "Tree":
        """A star over *names* — the 3-taxon start of stepwise insertion."""
        if len(names) < 2:
            raise TreeError("a star tree needs at least two leaves")
        if len(set(names)) != len(names):
            raise TreeError("leaf names must be unique")
        root = Node()
        for name in names:
            root.add_child(Node(name, branch_length))
        return cls(root)

    def copy(self) -> "Tree":
        """Deep structural copy (names and branch lengths)."""

        def clone(node: Node) -> Node:
            fresh = Node(node.name, node.branch_length)
            for child in node.children:
                fresh.add_child(clone(child))
            return fresh

        return Tree(clone(self.root))

    # -- traversal -----------------------------------------------------------

    def postorder(self) -> Iterator[Node]:
        """Children before parents; deterministic (child list order)."""
        stack: list[tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def preorder(self) -> Iterator[Node]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                stack.append(child)

    def nodes(self) -> list[Node]:
        return list(self.postorder())

    def leaves(self) -> list[Node]:
        return [n for n in self.postorder() if n.is_leaf]

    def leaf_names(self) -> list[str]:
        return [n.name for n in self.leaves()]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves())

    def edges(self) -> list[Node]:
        """Every edge as its child node, in postorder.

        Postorder position is the canonical **edge index** used across
        process boundaries (see module docstring).
        """
        return [n for n in self.postorder() if n.parent is not None]

    def find(self, name: str) -> Node:
        for node in self.postorder():
            if node.name == name:
                return node
        raise TreeError(f"no node named {name!r}")

    def total_branch_length(self) -> float:
        return sum(n.branch_length for n in self.postorder() if n.parent is not None)

    # -- topology editing ------------------------------------------------

    def insert_on_edge(
        self,
        edge: Node,
        leaf_name: str,
        leaf_branch: float = 0.1,
        split: float = 0.5,
    ) -> tuple[Node, Node]:
        """Attach a new leaf in the middle of *edge*.

        The edge ``(edge → parent)`` of length *b* becomes
        ``edge → v`` (length ``b·split``) and ``v → parent`` (length
        ``b·(1−split)``), with the new leaf hanging off ``v``.

        Returns ``(v, leaf)`` so the insertion can be undone with
        :meth:`remove_insertion`.
        """
        parent = edge.parent
        if parent is None:
            raise TreeError("cannot insert on the root (it has no edge)")
        if not (0.0 < split < 1.0):
            raise TreeError(f"split must be in (0, 1), got {split}")
        b = edge.branch_length
        v = Node("", branch_length=b * (1.0 - split))
        # Keep the child position stable for deterministic traversal.
        position = parent.children.index(edge)
        parent.children[position] = v
        v.parent = parent
        edge.parent = None
        edge.branch_length = b * split
        v.add_child(edge)
        leaf = v.add_child(Node(leaf_name, leaf_branch))
        return v, leaf

    def remove_insertion(self, v: Node) -> Node:
        """Undo :meth:`insert_on_edge`: collapse *v* and detach its leaf.

        Returns the removed leaf.  The original edge's branch length is
        restored as the sum of the two halves (so an insert/remove pair
        is exactly identity when lengths were not re-optimised).
        """
        if len(v.children) != 2 or v.parent is None:
            raise TreeError("not an insertion node")
        child, leaf = v.children
        if not leaf.is_leaf:
            child, leaf = leaf, child
        if not leaf.is_leaf:
            raise TreeError("insertion node has no leaf child")
        parent = v.parent
        position = parent.children.index(v)
        child.branch_length += v.branch_length
        v.children = []
        child.parent = None
        leaf.parent = None
        parent.children[position] = child
        child.parent = parent
        v.parent = None
        return leaf

    def rerooted(self, at: Node) -> "Tree":
        """A fresh tree over the same unrooted topology, rooted at *at*.

        *at* must be an internal node of this tree.  Edge lengths are
        preserved; under a reversible model the likelihood is invariant
        to this operation (Felsenstein's pulley principle), which the
        test suite uses as a correctness oracle.
        """
        if at.is_leaf:
            raise TreeError("cannot reroot at a leaf (it would hide its data)")
        adjacency: dict[Node, list[tuple[Node, float]]] = {}
        for node in self.postorder():
            if node.parent is not None:
                adjacency.setdefault(node, []).append(
                    (node.parent, node.branch_length)
                )
                adjacency.setdefault(node.parent, []).append(
                    (node, node.branch_length)
                )
        new_root = Node(at.name)
        stack: list[tuple[Node, Node, Node | None]] = [(at, new_root, None)]
        while stack:
            old, fresh, came_from = stack.pop()
            for neighbor, length in adjacency.get(old, ()):
                if neighbor is came_from:
                    continue
                child = Node(neighbor.name, length)
                fresh.add_child(child)
                stack.append((neighbor, child, old))
        return Tree(new_root)

    # -- comparison ----------------------------------------------------------

    def splits(self) -> set[frozenset[str]]:
        """Non-trivial bipartitions, each named by its smaller leaf set
        (by sorted-name tie break), for Robinson-Foulds comparison."""
        all_names = frozenset(self.leaf_names())
        below: dict[Node, frozenset[str]] = {}
        result: set[frozenset[str]] = set()
        for node in self.postorder():
            if node.is_leaf:
                below[node] = frozenset((node.name,))
            else:
                below[node] = frozenset().union(*(below[c] for c in node.children))
            if node.parent is not None and not node.is_leaf:
                side = below[node]
                other = all_names - side
                if len(side) >= 2 and len(other) >= 2:
                    canonical = min(side, other, key=lambda s: (len(s), sorted(s)))
                    result.add(canonical)
        return result

    # -- Newick ----------------------------------------------------------------

    def newick(self, lengths: bool = True, precision: int = 10) -> str:
        """Serialize to Newick text (deterministic child order)."""

        def render(node: Node) -> str:
            if node.is_leaf:
                label = _quote_name(node.name)
            else:
                inner = ",".join(render(c) for c in node.children)
                label = f"({inner}){_quote_name(node.name)}"
            if lengths and node.parent is not None:
                label += f":{node.branch_length:.{precision}g}"
            return label

        return render(self.root) + ";"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Tree({self.n_leaves} leaves)"


def _quote_name(name: str) -> str:
    if not name:
        return ""
    if any(ch in name for ch in "();,: \t'\""):
        escaped = name.replace("'", "''")
        return f"'{escaped}'"
    return name


def rf_distance(a: Tree, b: Tree) -> int:
    """Robinson-Foulds distance: splits present in exactly one tree."""
    if sorted(a.leaf_names()) != sorted(b.leaf_names()):
        raise TreeError("trees must share the same leaf set")
    return len(a.splits() ^ b.splits())


# ---------------------------------------------------------------------------
# Newick parsing (recursive descent)
# ---------------------------------------------------------------------------


class _NewickParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TreeError:
        return TreeError(f"newick:{self.pos}: {message}")

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def skip_ws(self) -> None:
        # Note: peek() returns "" at EOF, and `"" in " \t"` is True
        # (empty substring), so the emptiness check is load-bearing.
        while self.peek() != "" and self.peek() in " \t\n\r":
            self.pos += 1

    def parse(self) -> Node:
        self.skip_ws()
        node = self.parse_node()
        self.skip_ws()
        if self.peek() != ";":
            raise self.error("expected ';' at end of tree")
        self.take()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters after ';'")
        return node

    def parse_node(self) -> Node:
        self.skip_ws()
        node = Node()
        if self.peek() == "(":
            self.take()
            while True:
                node.add_child(self.parse_node())
                self.skip_ws()
                ch = self.take()
                if ch == ",":
                    continue
                if ch == ")":
                    break
                raise self.error(f"expected ',' or ')', got {ch!r}")
        node.name = self.parse_name()
        self.skip_ws()
        if self.peek() == ":":
            self.take()
            node.branch_length = self.parse_number()
        return node

    def parse_name(self) -> str:
        self.skip_ws()
        if self.peek() == "'":
            self.take()
            out = []
            while True:
                ch = self.take()
                if not ch:
                    raise self.error("unterminated quoted name")
                if ch == "'":
                    if self.peek() == "'":  # escaped quote
                        out.append(self.take())
                    else:
                        break
                else:
                    out.append(ch)
            return "".join(out)
        out = []
        while self.peek() and self.peek() not in "();,:":
            out.append(self.take())
        return "".join(out).strip()

    def parse_number(self) -> float:
        self.skip_ws()
        start = self.pos
        while self.peek() and self.peek() in "+-0123456789.eE":
            self.take()
        token = self.text[start : self.pos]
        try:
            value = float(token)
        except ValueError:
            raise self.error(f"bad branch length {token!r}") from None
        if value < 0:
            raise self.error(f"negative branch length {value}")
        return value


def parse_newick(text: str) -> Tree:
    """Parse one Newick tree."""
    tree = Tree(_NewickParser(text).parse())
    names = tree.leaf_names()
    if len(set(names)) != len(names):
        raise TreeError("duplicate leaf names in newick input")
    return tree
