"""Maximum-likelihood estimation of model parameters.

DPRml's selling point is its range of substitution models; a model is
only useful if its free parameters (transition/transversion ratio κ,
Gamma shape α, base frequencies) can be fitted.  Frequencies are
estimated empirically from the alignment (the standard "+F" approach);
κ and α are optimised numerically on a fixed tree by Brent search,
optionally alternating with branch-length optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.models import GammaRates, HKY85, N_STATES, SubstitutionModel
from repro.bio.phylo.optimize import optimize_all_branches
from repro.bio.phylo.tree import Tree


def empirical_frequencies(alignment: SiteAlignment, pseudocount: float = 1.0) -> np.ndarray:
    """Observed base frequencies with a Laplace pseudocount (so no base
    ever gets frequency zero, which would break reversible models)."""
    if pseudocount <= 0:
        raise ValueError("pseudocount must be positive")
    counts = np.full(N_STATES, pseudocount)
    for row in alignment.patterns:
        known = row < N_STATES
        counts += np.bincount(row[known], weights=alignment.weights[known], minlength=N_STATES)[:N_STATES]
    return counts / counts.sum()


@dataclass(frozen=True, slots=True)
class FittedModel:
    """Result of :func:`fit_hky_gamma`."""

    model: SubstitutionModel
    rates: GammaRates
    kappa: float
    alpha: float | None
    log_likelihood: float


def fit_kappa(
    tree: Tree,
    alignment: SiteAlignment,
    freqs: np.ndarray,
    rates: GammaRates | None = None,
    bounds: tuple[float, float] = (0.05, 100.0),
) -> tuple[float, float]:
    """ML estimate of HKY85's κ on a fixed tree.

    Returns ``(kappa, log_likelihood)``.
    """

    def negative_loglik(log_kappa: float) -> float:
        model = HKY85(float(np.exp(log_kappa)), freqs)
        return -TreeLikelihood(tree, alignment, model, rates).log_likelihood()

    result = minimize_scalar(
        negative_loglik,
        bounds=(np.log(bounds[0]), np.log(bounds[1])),
        method="bounded",
        options={"xatol": 1e-4},
    )
    return float(np.exp(result.x)), -float(result.fun)


def fit_alpha(
    tree: Tree,
    alignment: SiteAlignment,
    model: SubstitutionModel,
    categories: int = 4,
    bounds: tuple[float, float] = (0.05, 50.0),
) -> tuple[float, float]:
    """ML estimate of the discrete-Gamma shape α on a fixed tree.

    Returns ``(alpha, log_likelihood)``.
    """

    def negative_loglik(log_alpha: float) -> float:
        rates = GammaRates(float(np.exp(log_alpha)), categories)
        return -TreeLikelihood(tree, alignment, model, rates).log_likelihood()

    result = minimize_scalar(
        negative_loglik,
        bounds=(np.log(bounds[0]), np.log(bounds[1])),
        method="bounded",
        options={"xatol": 1e-4},
    )
    return float(np.exp(result.x)), -float(result.fun)


def fit_hky_gamma(
    tree: Tree,
    alignment: SiteAlignment,
    gamma_categories: int = 0,
    rounds: int = 2,
) -> FittedModel:
    """Joint fit of κ (+ α when ``gamma_categories > 0``) and branch
    lengths on a fixed topology, by coordinate ascent.

    Each round: optimise branch lengths under the current parameters,
    then re-fit κ (then α).  Two rounds suffice in practice — the
    parameters are only weakly coupled to the lengths.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    sub = alignment.subset(tree.leaf_names())
    freqs = empirical_frequencies(sub)
    kappa = 2.0
    alpha: float | None = None
    rates = GammaRates.uniform()
    loglik = float("-inf")
    work_tree = tree.copy()
    for _ in range(rounds):
        model = HKY85(kappa, freqs)
        tl = TreeLikelihood(work_tree, sub, model, rates)
        loglik = optimize_all_branches(tl, passes=1)
        kappa, loglik = fit_kappa(work_tree, sub, freqs, rates)
        if gamma_categories > 0:
            alpha, loglik = fit_alpha(
                work_tree, sub, HKY85(kappa, freqs), categories=gamma_categories
            )
            rates = GammaRates(alpha, gamma_categories)
    return FittedModel(
        model=HKY85(kappa, freqs),
        rates=rates,
        kappa=kappa,
        alpha=alpha,
        log_likelihood=loglik,
    )
