"""Consensus trees: combining many estimates into one summary.

DPRml users "generally run stochastic algorithms ... a number of
times" (the paper's justification for Fig. 2's six instances); the
standard way to summarise the resulting tree set — or a set of
bootstrap replicates — is the **majority-rule consensus**: keep every
bipartition appearing in more than half the input trees (they are
guaranteed mutually compatible), then assemble them into one tree
whose internal nodes carry their support frequencies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.bio.phylo.tree import Node, Tree, TreeError


@dataclass(frozen=True, slots=True)
class ConsensusSplit:
    """One consensus bipartition with its input frequency."""

    split: frozenset[str]
    frequency: float


def _validate_inputs(trees: list[Tree]) -> list[str]:
    if not trees:
        raise ValueError("need at least one input tree")
    names = sorted(trees[0].leaf_names())
    for tree in trees[1:]:
        if sorted(tree.leaf_names()) != names:
            raise TreeError("consensus requires a common leaf set")
    return names


def majority_splits(
    trees: list[Tree], threshold: float = 0.5
) -> list[ConsensusSplit]:
    """Bipartitions occurring in more than ``threshold`` of the trees.

    ``threshold`` must be at least 0.5: above one half, any two
    surviving splits are automatically compatible (they cannot both be
    in the majority and conflict), which is what makes the consensus
    tree well-defined.
    """
    if not (0.5 <= threshold < 1.0):
        raise ValueError("threshold must be in [0.5, 1)")
    _validate_inputs(trees)
    counts: Counter[frozenset[str]] = Counter()
    for tree in trees:
        counts.update(tree.splits())
    n = len(trees)
    out = [
        ConsensusSplit(split=split, frequency=count / n)
        for split, count in counts.items()
        if count / n > threshold
    ]
    # Big clades first so nesting during assembly is single-pass.
    out.sort(key=lambda c: (-len(c.split), sorted(c.split)))
    return out


def majority_consensus(
    trees: list[Tree], threshold: float = 0.5
) -> tuple[Tree, list[ConsensusSplit]]:
    """Build the majority-rule consensus tree.

    Returns ``(tree, splits)`` where internal node *names* carry the
    split frequency as a percentage (the way published trees label
    support).  Splits not in the majority collapse into polytomies.
    """
    names = _validate_inputs(trees)
    splits = majority_splits(trees, threshold)

    root = Node()
    leaf_nodes: dict[str, Node] = {}
    for name in names:
        leaf_nodes[name] = root.add_child(Node(name, branch_length=1.0))

    # Insert splits from largest to smallest: gather the members'
    # current top-level subtrees under a fresh internal node.
    membership: dict[str, Node] = dict(leaf_nodes)  # leaf -> containing subtree root
    for cons in splits:
        holders = {membership[name] for name in cons.split}
        parents = {id(h.parent) for h in holders}
        if len(parents) != 1:
            # Incompatible with an already-inserted split; cannot happen
            # above 50% but guard against threshold misuse.
            raise TreeError(f"split {sorted(cons.split)} incompatible with consensus")
        parent = next(iter(holders)).parent
        fresh = Node(f"{cons.frequency * 100:.0f}", branch_length=1.0)
        for holder in sorted(holders, key=lambda h: min(_leafset(h))):
            holder.detach()
            fresh.add_child(holder)
        parent.add_child(fresh)
        # All members now live under `fresh`.
        for name in cons.split:
            membership[name] = fresh

    return Tree(root), splits


def _leafset(node: Node) -> set[str]:
    out = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            out.add(current.name)
        stack.extend(current.children)
    return out


def strict_consensus(trees: list[Tree]) -> tuple[Tree, list[ConsensusSplit]]:
    """Consensus of splits present in *every* input tree."""
    _validate_inputs(trees)
    # A threshold just below 1 keeps only splits with count == len(trees).
    return majority_consensus(trees, threshold=1.0 - 0.5 / max(1, len(trees)))
