"""Aligned sequences with site-pattern compression.

Likelihood is a product over alignment columns, and identical columns
contribute identical factors — so the alignment is compressed to its
unique *site patterns* with multiplicities once, and every downstream
likelihood evaluation works on patterns.  For real data this is a 2-10×
saving; it also makes the likelihood code's inner dimension independent
of alignment length.
"""

from __future__ import annotations

import numpy as np

from repro.bio.seq.alphabet import DNA
from repro.bio.seq.sequence import Sequence


class SiteAlignment:
    """A DNA multiple alignment in pattern-compressed form.

    Attributes
    ----------
    names:
        Taxon names, in row order.
    patterns:
        ``(taxa, n_patterns)`` uint8 codes (4 = unknown/gap).
    weights:
        ``(n_patterns,)`` column multiplicities; ``weights.sum()`` is
        the original number of sites.
    """

    def __init__(self, names: list[str], columns: np.ndarray):
        columns = np.asarray(columns, dtype=np.uint8)
        if columns.ndim != 2:
            raise ValueError("columns must be a (taxa, sites) matrix")
        if len(names) != columns.shape[0]:
            raise ValueError(
                f"{len(names)} names for {columns.shape[0]} rows"
            )
        if len(set(names)) != len(names):
            raise ValueError("duplicate taxon names")
        if columns.shape[1] == 0:
            raise ValueError("alignment has no sites")
        if columns.max(initial=0) > DNA.unknown_code:
            raise ValueError("codes outside the DNA alphabet")
        self.names = list(names)
        self.n_sites = int(columns.shape[1])
        patterns, weights = _compress(columns)
        self.patterns = patterns
        self.weights = weights

    @classmethod
    def from_sequences(cls, sequences: list[Sequence]) -> "SiteAlignment":
        """Build from equal-length DNA :class:`Sequence` records."""
        if not sequences:
            raise ValueError("no sequences")
        lengths = {len(s) for s in sequences}
        if len(lengths) != 1:
            raise ValueError(f"sequences are not aligned (lengths {sorted(lengths)})")
        for seq in sequences:
            if seq.alphabet != DNA:
                raise ValueError(f"{seq.seq_id}: alignments must be DNA")
        matrix = np.stack([s.codes for s in sequences])
        return cls([s.seq_id for s in sequences], matrix)

    @property
    def n_taxa(self) -> int:
        return len(self.names)

    @property
    def n_patterns(self) -> int:
        return int(self.patterns.shape[1])

    def row(self, name: str) -> np.ndarray:
        """Pattern-space codes for one taxon."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise KeyError(f"no taxon named {name!r}") from None
        return self.patterns[index]

    def subset(self, names: list[str]) -> "SiteAlignment":
        """A new alignment over a subset of taxa (patterns recompressed).

        Stepwise insertion starts from few taxa and grows; restricting
        the alignment keeps early-stage likelihoods cheap.
        """
        indices = []
        for name in names:
            try:
                indices.append(self.names.index(name))
            except ValueError:
                raise KeyError(f"no taxon named {name!r}") from None
        expanded = np.repeat(self.patterns[indices], self.weights.astype(np.intp), axis=1)
        return SiteAlignment(list(names), expanded)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SiteAlignment({self.n_taxa} taxa, {self.n_sites} sites, "
            f"{self.n_patterns} patterns)"
        )


def _compress(columns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique columns + multiplicities, order-stable by first occurrence."""
    patterns, inverse, counts = np.unique(
        columns.T, axis=0, return_inverse=True, return_counts=True
    )
    # np.unique sorts lexicographically; that order is deterministic,
    # which is all the likelihood code needs.
    return patterns.T.copy(), counts.astype(np.float64)
