"""Felsenstein pruning with scaling and dirty-node caching.

The log-likelihood of a tree is computed by the pruning algorithm:
conditional likelihoods ("partials") flow from the leaves to the root,
each edge applying its transition matrix.  Two engineering details make
this usable at DPRml's scale:

* **Per-node scaling** — partials are renormalised at every internal
  node and the log of the factor accumulated, so likelihoods of
  hundreds of taxa don't underflow float64.
* **Dirty-node caching** — partials are cached per node; changing a
  branch length or inserting a taxon invalidates only the path from the
  change to the root.  Stepwise insertion evaluates thousands of
  single-edge changes, each of which then costs O(depth) instead of
  O(taxa) node updates.  This mirrors what fastDNAml calls "partial
  likelihood reuse".
"""

from __future__ import annotations

import numpy as np

from repro.bio.phylo.alignment import SiteAlignment
from repro.bio.phylo.models import GammaRates, SubstitutionModel, N_STATES
from repro.bio.phylo.tree import Node, Tree


class TreeLikelihood:
    """Log-likelihood evaluator bound to one (tree, alignment, model).

    The tree may be mutated in place (branch lengths, taxon insertion /
    removal) as long as the corresponding ``invalidate*`` method is
    called; :meth:`set_branch_length` and the stepwise search do this
    for you.
    """

    def __init__(
        self,
        tree: Tree,
        alignment: SiteAlignment,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
    ):
        self.tree = tree
        self.alignment = alignment
        self.model = model
        self.rates = rates or GammaRates.uniform()
        missing = set(tree.leaf_names()) - set(alignment.names)
        if missing:
            raise ValueError(f"taxa missing from alignment: {sorted(missing)}")
        self._partials: dict[Node, np.ndarray] = {}      # (K, npat, 4), scaled
        self._scale_logs: dict[Node, np.ndarray] = {}    # (npat,) cumulative
        self._leaf_rows: dict[str, np.ndarray] = {}
        self.evaluations = 0
        self.node_updates = 0

    # -- cache control ---------------------------------------------------

    def invalidate(self, node: Node) -> None:
        """Drop cached partials on the path from *node* to the root."""
        while node is not None:
            self._partials.pop(node, None)
            self._scale_logs.pop(node, None)
            node = node.parent

    def invalidate_all(self) -> None:
        self._partials.clear()
        self._scale_logs.clear()

    def set_branch_length(self, node: Node, length: float) -> None:
        """Update one branch length and invalidate exactly what changed.

        The edge's matrix is applied when computing the *parent's*
        partial, so the subtree below *node* stays valid.
        """
        if length < 0:
            raise ValueError(f"negative branch length {length}")
        node.branch_length = length
        self.invalidate(node.parent if node.parent is not None else node)

    # -- leaf partials ------------------------------------------------------

    def _leaf_partial(self, name: str) -> np.ndarray:
        cached = self._leaf_rows.get(name)
        if cached is None:
            codes = self.alignment.row(name)
            npat = codes.shape[0]
            partial = np.zeros((npat, N_STATES))
            known = codes < N_STATES
            partial[np.arange(npat)[known], codes[known]] = 1.0
            partial[~known, :] = 1.0  # gap/unknown: uninformative
            cached = partial
            self._leaf_rows[name] = cached
        return cached

    # -- the pruning pass ----------------------------------------------------

    def log_likelihood(self) -> float:
        """Recompute whatever is stale and return the tree log-likelihood."""
        K = self.rates.categories
        for node in self.tree.postorder():
            if node in self._partials:
                continue
            self.node_updates += 1
            if node.is_leaf:
                leaf = self._leaf_partial(node.name)
                self._partials[node] = np.broadcast_to(
                    leaf, (K, *leaf.shape)
                )
                self._scale_logs[node] = np.zeros(leaf.shape[0])
                continue
            partial = np.ones((K, self.alignment.n_patterns, N_STATES))
            scale_log = np.zeros(self.alignment.n_patterns)
            for child in node.children:
                child_partial = self._partials[child]
                scale_log += self._scale_logs[child]
                for k, rate in enumerate(self.rates.rates):
                    P = self.model.transition_matrix(child.branch_length, rate)
                    # (npat,4) @ (4,4)ᵀ: prob of data below child given
                    # each parent state.
                    partial[k] *= child_partial[k] @ P.T
            # Per-pattern scaling across categories and states.
            peak = partial.max(axis=(0, 2))
            # A pattern impossible under the tree would give peak == 0;
            # guard so log() stays finite and the zero propagates.
            safe = np.where(peak > 0, peak, 1.0)
            partial /= safe[None, :, None]
            scale_log += np.log(safe)
            self._partials[node] = partial
            self._scale_logs[node] = scale_log

        root = self.tree.root
        root_partial = self._partials[root]
        site_lik = np.einsum(
            "kps,s->kp", root_partial, self.model.freqs
        )
        mixed = np.einsum("k,kp->p", self.rates.weights, site_lik)
        if (mixed <= 0).any():
            return float("-inf")
        self.evaluations += 1
        return float(
            np.dot(self.alignment.weights, np.log(mixed) + self._scale_logs[root])
        )

    # -- conveniences -------------------------------------------------------

    def per_site_log_likelihoods(self) -> np.ndarray:
        """Per-*pattern* log-likelihoods (site order is not preserved by
        compression; pair with ``alignment.weights`` for totals)."""
        self.log_likelihood()
        root = self.tree.root
        site_lik = np.einsum(
            "kps,s->kp", self._partials[root], self.model.freqs
        )
        mixed = np.einsum("k,kp->p", self.rates.weights, site_lik)
        return np.log(mixed) + self._scale_logs[root]
