"""Branch-length optimisation.

One-dimensional Brent search (via SciPy's bounded scalar minimiser) on
each branch, exploiting the likelihood cache: changing one branch only
invalidates the path to the root, so the objective re-evaluates in
O(depth) node updates.  ``optimize_all_branches`` sweeps branches in
postorder for a configurable number of passes — the standard
coordinate-ascent scheme of fastDNAml and PAL.
"""

from __future__ import annotations

from scipy.optimize import minimize_scalar

from repro.bio.phylo.likelihood import TreeLikelihood
from repro.bio.phylo.tree import Node

#: Bounds keep the optimiser away from exact zero (singular) and from
#: saturation where the likelihood surface is flat.
MIN_BRANCH = 1e-8
MAX_BRANCH = 20.0


def optimize_branch(
    tl: TreeLikelihood,
    node: Node,
    tol: float = 1e-6,
    max_iter: int = 40,
) -> float:
    """Optimise one branch length in place; returns the new log-likelihood."""
    if node.parent is None:
        raise ValueError("the root has no branch to optimise")

    def negative_loglik(length: float) -> float:
        tl.set_branch_length(node, float(length))
        return -tl.log_likelihood()

    result = minimize_scalar(
        negative_loglik,
        bounds=(MIN_BRANCH, MAX_BRANCH),
        method="bounded",
        options={"xatol": tol, "maxiter": max_iter},
    )
    # Leave the tree at the optimum (the last probe may not be it).
    tl.set_branch_length(node, float(result.x))
    return tl.log_likelihood()


def optimize_local(
    tl: TreeLikelihood,
    v: Node,
    passes: int = 1,
    tol: float = 1e-4,
) -> float:
    """Optimise the three branches around an insertion node *v*.

    This is fastDNAml's local optimisation: after placing a taxon, only
    the new leaf's branch, the split edge's two halves need adjusting to
    score the placement accurately — full-tree optimisation is deferred.
    """
    branches = [child for child in v.children] + ([v] if v.parent is not None else [])
    loglik = tl.log_likelihood()
    for _ in range(passes):
        for branch in branches:
            loglik = optimize_branch(tl, branch, tol=tol)
    return loglik


def optimize_all_branches(
    tl: TreeLikelihood,
    passes: int = 2,
    tol: float = 1e-6,
    min_improvement: float = 1e-4,
) -> float:
    """Coordinate-ascent over every branch; returns the final
    log-likelihood.  Stops early when a full pass improves by less than
    *min_improvement* log units."""
    loglik = tl.log_likelihood()
    for _ in range(passes):
        before = loglik
        for node in tl.tree.postorder():
            if node.parent is None:
                continue
            loglik = optimize_branch(tl, node, tol=tol)
        if loglik - before < min_improvement:
            break
    return loglik
