"""Genetic-code translation and reading frames.

DSEARCH-style searches often need protein-space comparison of DNA
queries (diverged coding sequences keep protein similarity long after
DNA similarity washes out).  This module provides the standard genetic
code, codon translation, and six-frame translation of a DNA sequence
into protein-space search queries.
"""

from __future__ import annotations

import numpy as np

from repro.bio.seq.alphabet import DNA, PROTEIN
from repro.bio.seq.sequence import Sequence

#: Stop codons translate to this marker (not a PROTEIN letter; stops
#: terminate open reading frames rather than appearing in sequences).
STOP = "*"

#: The standard genetic code, codon → amino-acid letter (or ``*``).
GENETIC_CODE = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


def translate_codon(codon: str) -> str:
    """One codon → one amino acid letter (``*`` for stop, ``X`` for
    any codon containing an ambiguous base)."""
    if len(codon) != 3:
        raise ValueError(f"a codon has three bases, got {codon!r}")
    key = codon.upper()
    if key in GENETIC_CODE:
        return GENETIC_CODE[key]
    return PROTEIN.unknown  # ambiguity (N etc.)


def translate(seq: Sequence, frame: int = 0, to_stop: bool = False) -> Sequence:
    """Translate a DNA sequence in one forward frame.

    Parameters
    ----------
    frame:
        0, 1 or 2 — offset into the sequence.
    to_stop:
        Truncate at the first stop codon; otherwise stops become ``X``
        (keeping the result a valid PROTEIN sequence for alignment).
    """
    if seq.alphabet != DNA:
        raise ValueError("translation requires a DNA sequence")
    if frame not in (0, 1, 2):
        raise ValueError(f"frame must be 0, 1 or 2, got {frame}")
    text = str(seq)[frame:]
    residues = []
    for i in range(0, len(text) - 2, 3):
        aa = translate_codon(text[i : i + 3])
        if aa == STOP:
            if to_stop:
                break
            aa = PROTEIN.unknown
        residues.append(aa)
    if not residues:
        raise ValueError(f"{seq.seq_id}: frame {frame} yields no complete codon")
    return Sequence(
        f"{seq.seq_id}_f{frame}", "".join(residues), PROTEIN,
        description=f"frame {frame} of {seq.seq_id}",
    )


def six_frame_translations(seq: Sequence) -> list[Sequence]:
    """All six reading frames (three forward, three reverse-complement).

    Reverse-strand frames are suffixed ``_rcN``.
    """
    frames = [translate(seq, frame) for frame in range(3)]
    rc = seq.reverse_complement()
    for frame in range(3):
        translated = translate(rc, frame)
        frames.append(
            Sequence(
                f"{seq.seq_id}_rc{frame}",
                str(translated),
                PROTEIN,
                description=f"reverse frame {frame} of {seq.seq_id}",
            )
        )
    return frames


def open_reading_frames(seq: Sequence, min_codons: int = 30) -> list[Sequence]:
    """ATG-to-stop open reading frames of at least *min_codons* codons,
    across all six frames, as protein sequences."""
    if min_codons < 1:
        raise ValueError("min_codons must be >= 1")
    orfs: list[Sequence] = []
    for strand_tag, strand in (("+", seq), ("-", seq.reverse_complement())):
        text = str(strand)
        for frame in range(3):
            i = frame
            while i + 3 <= len(text):
                if text[i : i + 3] == "ATG":
                    residues = []
                    j = i
                    while j + 3 <= len(text):
                        aa = translate_codon(text[j : j + 3])
                        if aa == STOP:
                            break
                        residues.append(aa)
                        j += 3
                    if len(residues) >= min_codons:
                        orfs.append(
                            Sequence(
                                f"{seq.seq_id}_orf{strand_tag}{i}",
                                "".join(residues),
                                PROTEIN,
                                description=(
                                    f"ORF strand {strand_tag} offset {i} "
                                    f"({len(residues)} aa)"
                                ),
                            )
                        )
                    i = j + 3  # resume after this ORF's stop
                else:
                    i += 3
    return orfs
