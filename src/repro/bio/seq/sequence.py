"""The Sequence record: an identified, encoded residue string."""

from __future__ import annotations

import threading

import numpy as np

from repro.bio.seq.alphabet import DNA, PROTEIN, Alphabet

#: Guards first publication of the per-sequence icodes cache.  Shared
#: across all sequences: it is only ever taken on a cold cache miss, so
#: contention is bounded by the number of distinct sequences, not reads.
_ICODES_LOCK = threading.Lock()


class Sequence:
    """One biological sequence with identity and dense encoding.

    Residues are stored as a uint8 code array (see
    :class:`~repro.bio.seq.alphabet.Alphabet`), which is what alignment
    kernels and likelihood code consume directly; the textual form is
    reconstructed on demand.
    """

    __slots__ = ("seq_id", "description", "codes", "alphabet", "_icodes")

    def __init__(
        self,
        seq_id: str,
        residues: str | np.ndarray,
        alphabet: Alphabet,
        description: str = "",
    ):
        if not seq_id:
            raise ValueError("sequence id must be non-empty")
        self.seq_id = seq_id
        self.description = description
        self.alphabet = alphabet
        if isinstance(residues, np.ndarray):
            codes = np.ascontiguousarray(residues, dtype=np.uint8)
            if codes.size and codes.max() > alphabet.unknown_code:
                raise ValueError(
                    f"{seq_id}: code {codes.max()} outside alphabet {alphabet.name!r}"
                )
            self.codes = codes
        else:
            self.codes = alphabet.encode(residues)
        self._icodes = None

    @property
    def icodes(self) -> np.ndarray:
        """Codes widened to the platform index type, computed once.

        Alignment kernels index substitution matrices with these; the
        cache means a database slice is encoded once per work unit
        instead of once per ``(query, subject)`` pair.

        Race-safe: the prefetch warm-up thread and the compute thread
        can both find the cache cold, but each builds a fully frozen
        array *before* publishing, and publication is first-writer-wins
        under a lock — every caller sees one immutable array, never a
        half-initialised one.  The fast path (warm cache) takes no
        lock.
        """
        cached = self._icodes
        if cached is None:
            fresh = self.codes.astype(np.intp)
            fresh.setflags(write=False)
            with _ICODES_LOCK:
                if self._icodes is None:
                    self._icodes = fresh
                cached = self._icodes
        return cached

    def __getstate__(self):
        # The icodes cache is derived data; keep it off the wire.
        return (self.seq_id, self.description, self.codes, self.alphabet)

    def __setstate__(self, state) -> None:
        self.seq_id, self.description, self.codes, self.alphabet = state
        self._icodes = None

    # -- basic container behaviour ----------------------------------------

    def __len__(self) -> int:
        return int(self.codes.size)

    def __str__(self) -> str:
        return self.alphabet.decode(self.codes)

    def __repr__(self) -> str:  # pragma: no cover
        text = str(self)
        shown = text if len(text) <= 24 else text[:21] + "..."
        return f"Sequence({self.seq_id!r}, {shown!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Sequence)
            and other.seq_id == self.seq_id
            and other.alphabet == self.alphabet
            and np.array_equal(other.codes, self.codes)
        )

    def __hash__(self) -> int:
        return hash((self.seq_id, self.codes.tobytes()))

    def __getitem__(self, index: slice) -> "Sequence":
        if not isinstance(index, slice):
            raise TypeError("use slicing; single residues via .codes")
        return Sequence(
            self.seq_id, self.codes[index].copy(), self.alphabet, self.description
        )

    # -- biology helpers ----------------------------------------------------

    def reverse_complement(self) -> "Sequence":
        """DNA only: the reverse complement strand."""
        if self.alphabet != DNA:
            raise ValueError("reverse_complement requires the DNA alphabet")
        # A<->T (0<->3), C<->G (1<->2); unknown stays unknown.
        comp = np.array([3, 2, 1, 0, DNA.unknown_code], dtype=np.uint8)
        return Sequence(
            self.seq_id, comp[self.codes[::-1]], DNA, self.description
        )

    def gc_content(self) -> float:
        """DNA only: fraction of G/C among known residues."""
        if self.alphabet != DNA:
            raise ValueError("gc_content requires the DNA alphabet")
        known = self.codes[self.codes != DNA.unknown_code]
        if known.size == 0:
            return 0.0
        return float(np.isin(known, (1, 2)).mean())

    def header(self) -> str:
        """The FASTA header line content (id + description)."""
        return f"{self.seq_id} {self.description}".strip()


def dna(seq_id: str, residues: str, description: str = "") -> Sequence:
    """Shorthand constructor for DNA sequences."""
    return Sequence(seq_id, residues, DNA, description)


def protein(seq_id: str, residues: str, description: str = "") -> Sequence:
    """Shorthand constructor for protein sequences."""
    return Sequence(seq_id, residues, PROTEIN, description)
