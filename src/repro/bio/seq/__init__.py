"""Biological sequences: alphabets, FASTA I/O, synthetic data."""

from repro.bio.seq.alphabet import DNA, PROTEIN, Alphabet
from repro.bio.seq.sequence import Sequence
from repro.bio.seq.fasta import parse_fasta, read_fasta, write_fasta
from repro.bio.seq.generate import (
    mutate_sequence,
    random_database,
    random_sequence,
    seeded_database,
)

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN",
    "Sequence",
    "mutate_sequence",
    "parse_fasta",
    "random_database",
    "random_sequence",
    "read_fasta",
    "seeded_database",
    "write_fasta",
]
