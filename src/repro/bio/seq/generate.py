"""Synthetic sequence data.

The paper searched real genomic databases we do not have; these
generators produce workloads with the same *cost structure* (alignment
time is O(query length × subject length), so matched length
distributions give matched unit costs) plus planted homologs so the
sensitivity of the rigorous algorithms is actually testable: a mutated
copy of the query must rank above unrelated sequences.
"""

from __future__ import annotations

import numpy as np

from repro.bio.seq.alphabet import Alphabet, DNA
from repro.bio.seq.sequence import Sequence
from repro.util.rng import spawn_rng


def random_sequence(
    seq_id: str,
    length: int,
    alphabet: Alphabet,
    rng: np.random.Generator,
    frequencies: np.ndarray | None = None,
) -> Sequence:
    """A uniform (or *frequencies*-weighted) random sequence."""
    if length < 1:
        raise ValueError("length must be >= 1")
    if frequencies is not None:
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.shape != (alphabet.size,):
            raise ValueError(
                f"need {alphabet.size} frequencies, got {frequencies.shape}"
            )
        frequencies = frequencies / frequencies.sum()
    codes = rng.choice(alphabet.size, size=length, p=frequencies).astype(np.uint8)
    return Sequence(seq_id, codes, alphabet)


def mutate_sequence(
    seq: Sequence,
    rng: np.random.Generator,
    substitution_rate: float = 0.1,
    insertion_rate: float = 0.01,
    deletion_rate: float = 0.01,
    new_id: str | None = None,
) -> Sequence:
    """A diverged copy of *seq*: point substitutions plus short indels.

    This is how homologs are planted in synthetic databases — the
    mutated copy shares detectable similarity with the original, decayed
    by the chosen rates.
    """
    for name, rate in (
        ("substitution", substitution_rate),
        ("insertion", insertion_rate),
        ("deletion", deletion_rate),
    ):
        if not (0 <= rate < 1):
            raise ValueError(f"{name}_rate must be in [0, 1)")
    alphabet = seq.alphabet
    out: list[int] = []
    for code in seq.codes:
        if rng.random() < deletion_rate:
            continue
        if rng.random() < substitution_rate:
            # Substitute with a *different* residue.
            new = int(rng.integers(alphabet.size - 1))
            if new >= code:
                new += 1
            out.append(new)
        else:
            out.append(int(code))
        if rng.random() < insertion_rate:
            out.append(int(rng.integers(alphabet.size)))
    if not out:  # pathological rates on a short sequence
        out.append(int(rng.integers(alphabet.size)))
    return Sequence(
        new_id or f"{seq.seq_id}_mut",
        np.asarray(out, dtype=np.uint8),
        alphabet,
        description=f"mutant of {seq.seq_id}",
    )


def random_database(
    count: int,
    alphabet: Alphabet,
    seed: int = 0,
    mean_length: int = 350,
    min_length: int = 50,
    prefix: str = "db",
) -> list[Sequence]:
    """*count* unrelated sequences with gamma-distributed lengths.

    Real protein databases have right-skewed length distributions; a
    gamma with shape 2 reproduces that skew, which matters because unit
    cost is proportional to sequence length.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = spawn_rng(seed, "random_database", prefix)
    shape = 2.0
    scale = max(1.0, (mean_length - min_length) / shape)
    lengths = min_length + rng.gamma(shape, scale, size=count).astype(int)
    return [
        random_sequence(f"{prefix}{i:05d}", int(lengths[i]), alphabet, rng)
        for i in range(count)
    ]


def seeded_database(
    query: Sequence,
    decoy_count: int,
    homolog_count: int,
    seed: int = 0,
    substitution_rate: float = 0.15,
    mean_length: int | None = None,
) -> tuple[list[Sequence], list[str]]:
    """A database of decoys with *homolog_count* planted mutants of
    *query*, shuffled deterministically.

    Returns
    -------
    (database, homolog_ids):
        The shuffled database and the ids of the planted homologs, so a
        test can check they rank at the top of a sensitive search.
    """
    rng = spawn_rng(seed, "seeded_database", query.seq_id)
    database = random_database(
        decoy_count,
        query.alphabet,
        seed=seed + 1,
        mean_length=mean_length or max(60, len(query)),
        prefix="decoy",
    )
    homolog_ids = []
    for i in range(homolog_count):
        hom = mutate_sequence(
            query,
            rng,
            substitution_rate=substitution_rate,
            new_id=f"homolog{i:03d}",
        )
        homolog_ids.append(hom.seq_id)
        database.append(hom)
    order = rng.permutation(len(database))
    return [database[i] for i in order], homolog_ids


def random_alignment(
    taxa: int,
    sites: int,
    seed: int = 0,
    prefix: str = "taxon",
) -> list[Sequence]:
    """Unrelated DNA sequences of equal length (a null 'alignment').

    For phylogeny tests that need aligned input without evolutionary
    signal; signal-bearing alignments come from
    :func:`repro.bio.phylo.simulate.simulate_alignment`.
    """
    rng = spawn_rng(seed, "random_alignment")
    return [
        random_sequence(f"{prefix}{i:02d}", sites, DNA, rng) for i in range(taxa)
    ]
