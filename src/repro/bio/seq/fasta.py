"""FASTA reading and writing.

DSEARCH's inputs are "a FASTA database file [and] a FASTA query
sequences file"; this module provides the streaming parser and writer
both applications use.  The dialect is the permissive standard one:
``>`` headers (first token is the id, the remainder the description),
sequence lines until the next header, blank lines ignored.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.bio.seq.alphabet import Alphabet
from repro.bio.seq.sequence import Sequence


class FastaError(ValueError):
    """Malformed FASTA input."""


def parse_fasta(text: str, alphabet: Alphabet) -> list[Sequence]:
    """Parse FASTA text into a list of sequences."""
    return list(_iter_fasta(io.StringIO(text), alphabet, source="<string>"))


def read_fasta(path: str | Path, alphabet: Alphabet) -> list[Sequence]:
    """Read a FASTA file from disk."""
    path = Path(path)
    with path.open() as handle:
        return list(_iter_fasta(handle, alphabet, source=str(path)))


def iter_fasta(handle: TextIO, alphabet: Alphabet) -> Iterator[Sequence]:
    """Stream records from an open handle (constant memory per record)."""
    return _iter_fasta(handle, alphabet, source="<stream>")


def _iter_fasta(handle: TextIO, alphabet: Alphabet, source: str) -> Iterator[Sequence]:
    seq_id: str | None = None
    description = ""
    chunks: list[str] = []
    seen_ids: set[str] = set()
    lineno = 0
    for raw in handle:
        lineno += 1
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith(">"):
            if seq_id is not None:
                yield _make_record(seq_id, description, chunks, alphabet, source)
            header = line[1:].strip()
            if not header:
                raise FastaError(f"{source}:{lineno}: empty FASTA header")
            parts = header.split(None, 1)
            seq_id = parts[0]
            if seq_id in seen_ids:
                raise FastaError(f"{source}:{lineno}: duplicate id {seq_id!r}")
            seen_ids.add(seq_id)
            description = parts[1] if len(parts) > 1 else ""
            chunks = []
        else:
            if seq_id is None:
                raise FastaError(
                    f"{source}:{lineno}: sequence data before any '>' header"
                )
            chunks.append(line.replace(" ", ""))
    if seq_id is not None:
        yield _make_record(seq_id, description, chunks, alphabet, source)


def _make_record(
    seq_id: str, description: str, chunks: list[str], alphabet: Alphabet, source: str
) -> Sequence:
    residues = "".join(chunks)
    if not residues:
        raise FastaError(f"{source}: record {seq_id!r} has no sequence data")
    return Sequence(seq_id, residues, alphabet, description)


def format_fasta(sequences: Iterable[Sequence], width: int = 70) -> str:
    """Render sequences as FASTA text with wrapped lines."""
    if width < 1:
        raise ValueError("line width must be >= 1")
    out: list[str] = []
    for seq in sequences:
        out.append(f">{seq.header()}\n")
        text = str(seq)
        for start in range(0, len(text), width):
            out.append(text[start : start + width] + "\n")
    return "".join(out)


def write_fasta(
    path: str | Path, sequences: Iterable[Sequence], width: int = 70
) -> None:
    """Write sequences to a FASTA file."""
    Path(path).write_text(format_fasta(sequences, width=width))
