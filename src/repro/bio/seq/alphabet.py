"""Sequence alphabets with dense integer encodings.

Alignment kernels and likelihood calculations index substitution
matrices by residue code, so every alphabet provides a bijective
``letter ↔ uint8 code`` mapping plus a vectorised encoder.  Codes are
dense (0..size-1) with one extra ``unknown`` code at index ``size`` for
ambiguity characters (N for DNA, X for protein).
"""

from __future__ import annotations

import numpy as np


class Alphabet:
    """An ordered set of residue letters with uint8 codes."""

    def __init__(self, name: str, letters: str, unknown: str):
        if len(set(letters)) != len(letters):
            raise ValueError(f"duplicate letters in alphabet {name!r}")
        if unknown in letters:
            raise ValueError("unknown character must not be a regular letter")
        self.name = name
        self.letters = letters
        self.unknown = unknown
        self.size = len(letters)
        self.unknown_code = self.size
        # Dense lookup table: byte value -> code (unknown for anything else).
        table = np.full(256, self.unknown_code, dtype=np.uint8)
        for code, letter in enumerate(letters):
            table[ord(letter)] = code
            table[ord(letter.lower())] = code
        table[ord(unknown)] = self.unknown_code
        table[ord(unknown.lower())] = self.unknown_code
        self._encode_table = table
        self._decode_table = np.frombuffer(
            (letters + unknown).encode("ascii"), dtype=np.uint8
        ).copy()

    def encode(self, text: str | bytes) -> np.ndarray:
        """Text → uint8 code array (case-insensitive; junk → unknown)."""
        if isinstance(text, str):
            text = text.encode("ascii", errors="replace")
        raw = np.frombuffer(text, dtype=np.uint8)
        return self._encode_table[raw]

    def decode(self, codes: np.ndarray) -> str:
        """Code array → text (unknown code → the unknown letter)."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.size and codes.max() > self.unknown_code:
            raise ValueError(f"code {codes.max()} outside alphabet {self.name!r}")
        return self._decode_table[codes].tobytes().decode("ascii")

    def is_valid(self, text: str) -> bool:
        """True when every character is a known (non-ambiguous) letter."""
        codes = self.encode(text)
        return bool((codes != self.unknown_code).all())

    def __reduce__(self):
        # Pickle by constructor args: the 256-entry lookup tables are
        # derived state, and canonical (memo-free) pickling must not
        # re-serialize them per referencing Sequence.
        return (Alphabet, (self.name, self.letters, self.unknown))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Alphabet({self.name!r}, {self.letters!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Alphabet)
            and other.letters == self.letters
            and other.unknown == self.unknown
        )

    def __hash__(self) -> int:
        return hash((self.letters, self.unknown))


#: Nucleotides in the order used by every substitution model (A, C, G, T).
DNA = Alphabet("dna", "ACGT", "N")

#: The 20 standard amino acids in the order of BLOSUM/PAM matrices.
PROTEIN = Alphabet("protein", "ARNDCQEGHILKMFPSTWYV", "X")
