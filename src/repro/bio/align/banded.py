"""Banded global alignment — the reduced-work third algorithm.

The paper's third built-in is the subquadratic algorithm of Crochemore,
Landau and Ziv-Ukelson [4], which exploits repetition structure to beat
O(mn).  That algorithm's *system role* in DSEARCH is "a cheaper rigorous
aligner the user can select in the config file"; we fill the role with
banded Needleman-Wunsch: exact when the optimal path stays within
``band`` of the diagonal, O((m+n)·band) work instead of O(mn).  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.bio.align.kernels import NEG, global_score
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence

DEFAULT_BAND = 32


def banded_global_score(
    query: Sequence,
    subject: Sequence,
    scheme: ScoringScheme,
    band: int = DEFAULT_BAND,
) -> float:
    """Global alignment score restricted to ``|i−j| ≤ band``.

    The band is automatically widened to ``|len(query)−len(subject)|``
    so the terminal cell is always reachable.  Equals the full
    Needleman-Wunsch score whenever the unrestricted optimal path fits
    in the band; otherwise it is a lower bound.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    score = global_score(query, subject, scheme, band=band)
    # With auto-widening the corner is reachable, so NEG only signals a bug.
    assert score > NEG / 2, "banded DP corner unreachable despite widening"
    return score
