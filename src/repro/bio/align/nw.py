"""Needleman-Wunsch global alignment [10 in the paper].

Score-only, linear memory, vectorised rows — the form DSEARCH runs over
whole database slices.  For the aligned strings themselves use
:func:`repro.bio.align.traceback.global_align` (quadratic memory,
intended for the handful of top hits a user inspects).
"""

from __future__ import annotations

from repro.bio.align.kernels import global_score
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence


def needleman_wunsch_score(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> float:
    """Optimal global alignment score under affine gap penalties."""
    return global_score(query, subject, scheme)
