"""Smith-Waterman local alignment [14 in the paper].

The most sensitive database-search algorithm: finds the best-scoring
*subsequence* pair, so a conserved domain is detected however much the
flanking sequence has diverged.  Score-only, linear memory, vectorised.
"""

from __future__ import annotations

from repro.bio.align.kernels import local_score
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence


def smith_waterman_score(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> float:
    """Optimal local alignment score (>= 0) under affine gap penalties."""
    return local_score(query, subject, scheme)
