"""Batched multi-subject alignment: one DP row-sweep per *bucket*.

The scalar kernel (:mod:`repro.bio.align.kernels`) already vectorises
each DP row across the subject's columns, but for the short-to-mid
length sequences a real FASTA database is full of, a row is only a few
hundred elements and Python/NumPy dispatch overhead dominates.  This
module applies the inter-sequence SIMD idea used by striped aligners:
pack many subjects into a length-bucketed, padded ``(n_subjects,
width)`` tensor and sweep the Gotoh recurrence **across the whole
bucket at once**, so each NumPy row operation scores hundreds of
subjects instead of one.

Correctness of padding
    Affine-gap DP information flows strictly left-to-right within a
    row (the lazy-E prefix scan) and top-to-bottom between rows, so a
    cell ``(i, j)`` never reads a column ``> j``.  Padding columns sit
    to the *right* of every subject's last real column and therefore
    cannot influence real scores: global scores are gathered at each
    subject's own final column, and local row-maxima are taken under a
    per-subject validity mask.  Because the batched sweep performs the
    same primitive operations in the same order as the scalar kernel on
    the shared column prefix, batched scores are bit-identical to
    scalar scores, not merely close.

Bucketing
    Subjects are sorted by length and grouped greedily so that padding
    waste ``1 - effective/padded`` stays below a configurable cap — one
    10 kb subject lands in its own bucket instead of inflating the
    padding of hundreds of short ones.  Buckets also cap the subject
    count so working-set memory stays bounded.

Fallback rules
    Packing decisions (:func:`plan_buckets`) and the batched-vs-scalar
    choice (:func:`use_batched`) depend only on sequence *lengths*, so
    :meth:`DSearchAlgorithm.cost` can charge exactly the cells the
    donor will fill.  A bucket falls back to the scalar reference
    kernels when it is too small to amortise anything (a single
    subject), or — for banded alignment, where the batched engine fills
    the full padded matrix rather than just the band — when the band
    window is so much narrower than the bucket that full-width sweeping
    would outweigh the vectorisation win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as PySequence

import numpy as np

from repro.bio.align.kernels import NEG
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence

#: Maximum tolerated padding waste ``1 - effective/padded`` per bucket.
DEFAULT_WASTE_CAP = 0.25

#: Maximum subjects per bucket (bounds the working set: state arrays are
#: ``O(n_subjects × width)`` float64).
DEFAULT_MAX_BUCKET = 256

#: Buckets below this size gain nothing from batching.
MIN_BATCH_SUBJECTS = 2

#: Banded buckets batch only when full padded cells stay within this
#: factor of the banded cost model (the batched engine sweeps full
#: rows; a narrow band over long subjects is better off scalar).
BANDED_BATCH_FACTOR = 1.35


@dataclass(frozen=True)
class BucketPlan:
    """Membership of one length bucket, decided from lengths alone.

    ``indices`` point back into the original subject list; ``width`` is
    the padded (maximum) length.  The plan is all
    :meth:`~repro.apps.dsearch.algorithm.DSearchAlgorithm.cost` needs,
    so the simulator's cost model and the donor's actual work agree
    without materialising any tensors.
    """

    indices: tuple[int, ...]
    lengths: tuple[int, ...]
    width: int

    @property
    def size(self) -> int:
        return len(self.indices)

    def padded_cells(self, rows: int) -> int:
        """DP cells the batched engine fills for *rows* query rows."""
        return rows * self.size * self.width

    def effective_cells(self, rows: int) -> int:
        """DP cells a perfectly packed (waste-free) sweep would fill."""
        return rows * sum(self.lengths)


def plan_buckets(
    lengths: PySequence[int],
    waste_cap: float = DEFAULT_WASTE_CAP,
    max_bucket: int = DEFAULT_MAX_BUCKET,
) -> list[BucketPlan]:
    """Greedy length bucketing with a padding-waste cap.

    Subjects are visited in (length, index) order; a bucket closes when
    admitting the next (longer) subject would push padding waste above
    *waste_cap* or the bucket above *max_bucket* subjects.  Deterministic
    in the input lengths, so server-side cost accounting and donor-side
    execution always agree on the packing.
    """
    if not (0.0 <= waste_cap < 1.0):
        raise ValueError("waste_cap must be in [0, 1)")
    if max_bucket < 1:
        raise ValueError("max_bucket must be >= 1")
    order = sorted(range(len(lengths)), key=lambda i: (lengths[i], i))
    plans: list[BucketPlan] = []
    cur: list[int] = []
    cur_sum = 0
    for i in order:
        length = lengths[i]
        if cur:
            padded = length * (len(cur) + 1)
            waste = padded - (cur_sum + length)
            if len(cur) >= max_bucket or waste > waste_cap * padded:
                plans.append(_close(cur, lengths))
                cur, cur_sum = [], 0
        cur.append(i)
        cur_sum += length
    if cur:
        plans.append(_close(cur, lengths))
    return plans


def _close(members: list[int], lengths: PySequence[int]) -> BucketPlan:
    bucket_lengths = tuple(lengths[i] for i in members)
    return BucketPlan(tuple(members), bucket_lengths, max(bucket_lengths))


def banded_model_cells(m: int, lengths: PySequence[int], band: int) -> float:
    """Cells the banded cost model charges for one *m*-row query.

    Matches the scalar kernels' semantics: the band is widened per pair
    to ``|m − len|`` so the terminal cell stays reachable, and a band
    wider than the matrix degenerates to the full ``m × len`` sweep.
    """
    total = 0.0
    for length in lengths:
        band_j = max(band, abs(m - length))
        total += min(m * length, (2 * band_j + 1) * max(m, length))
    return total


def use_batched(plan: BucketPlan, m: int, algorithm: str, band: int) -> bool:
    """Whether the batched engine should score this (query, bucket).

    Depends only on lengths and configuration, so the server's cost
    model can replay the same decision the donor will make.
    """
    if plan.size < MIN_BATCH_SUBJECTS:
        return False
    if algorithm == "banded":
        return plan.padded_cells(m) <= BANDED_BATCH_FACTOR * banded_model_cells(
            m, plan.lengths, band
        )
    return True


class SubjectBucket:
    """A materialised bucket: padded int-encoded subject tensor.

    Built once per work unit and shared across every query (and strand
    variant) scored against the slice.
    """

    __slots__ = ("plan", "codes", "lengths", "alphabet")

    def __init__(self, plan: BucketPlan, subjects: PySequence[Sequence]):
        members = [subjects[i] for i in plan.indices]
        alphabet = members[0].alphabet
        for seq in members:
            if seq.alphabet != alphabet:
                raise ValueError("bucket mixes alphabets")
            if len(seq) == 0:
                raise ValueError("cannot align empty sequences")
        self.plan = plan
        self.alphabet = alphabet
        self.lengths = np.asarray(plan.lengths, dtype=np.intp)
        codes = np.zeros((plan.size, plan.width), dtype=np.intp)
        for row, seq in enumerate(members):
            codes[row, : len(seq)] = seq.icodes
        self.codes = codes


def batched_scores(
    variants: PySequence[Sequence],
    bucket: SubjectBucket,
    scheme: ScoringScheme,
    local: bool,
    band: int | None = None,
) -> np.ndarray:
    """Score every variant against every subject in one bucket.

    *variants* are equal-length query rows sharing the DP sweep (the
    query and its reverse complement for a both-strands search).
    Returns a ``(n_variants, n_subjects)`` score array, bit-identical to
    the scalar kernels.  With *band* set (global only), each subject's
    band is auto-widened to ``|m − len|`` exactly as the scalar path
    does.
    """
    if not variants:
        raise ValueError("need at least one query variant")
    m = len(variants[0])
    if m == 0:
        raise ValueError("cannot align empty sequences")
    for v in variants:
        if len(v) != m:
            raise ValueError("query variants must share one length")
        if v.alphabet != scheme.alphabet:
            raise ValueError(
                f"scheme {scheme.name!r} is over alphabet "
                f"{scheme.alphabet.name!r}; got query {v.alphabet.name!r}"
            )
    if bucket.alphabet != scheme.alphabet:
        raise ValueError(
            f"scheme {scheme.name!r} is over alphabet {scheme.alphabet.name!r}; "
            f"got subject {bucket.alphabet.name!r}"
        )
    if band is not None and local:
        raise ValueError("banded batching applies to global alignment only")

    codes = bucket.codes  # (n, W) intp
    lengths = bucket.lengths  # (n,)
    n, width = codes.shape
    nvar = len(variants)
    go, ge = scheme.gap_open, scheme.gap_extend
    qcodes = np.stack([v.icodes for v in variants])  # (V, m)
    jidx = np.arange(width + 1, dtype=np.float64)
    ge_jidx = ge * jidx
    e_base = go + ge_jidx[1:]

    # Per-bucket substitution precompute: scores_by_code[c] is the (n, W)
    # score sheet for query residue code c, so each row's substitution
    # term is one row-gather instead of an elementwise matrix lookup.
    # Skipped for huge buckets (long-subject buckets) to bound memory.
    matrix = scheme.matrix
    n_codes = matrix.shape[0]
    if n_codes * n * width <= 40_000_000:
        scores_by_code = np.ascontiguousarray(matrix[:, codes])  # (A+1, n, W)
    else:
        scores_by_code = None

    if band is not None:
        band_j = np.maximum(band, np.abs(m - lengths))  # (n,)
        col = np.arange(width + 1)

    shape = (nvar, n, width + 1)
    if local:
        H = np.zeros(shape)
        # Running cell-wise max over all rows; the best local score is
        # its maximum over each subject's *valid* columns at the end
        # (max is exactly associative, so this equals the scalar
        # row-by-row tracking bit for bit).
        maxH = np.zeros(shape)
    else:
        H = np.broadcast_to(go + ge_jidx, shape).copy()
        H[..., 0] = 0.0
    F = np.full(shape, NEG)
    if band is not None:
        _mask_band_rows(H, 0, band_j, col)

    # Ping-pong row buffers; every per-row temporary is preallocated so
    # the sweep allocates nothing inside the loop.
    Hn = np.empty(shape)
    tmp = np.empty(shape)
    sub = np.empty((nvar, n, width))
    c = np.empty(shape)
    for i in range(1, m + 1):
        # Same primitive ops, same order, as the scalar gotoh_rows —
        # just with a (variants, subjects) batch on the leading axes.
        np.add(H, go, out=tmp)
        np.maximum(F, tmp, out=F)
        F += ge
        q_i = qcodes[:, i - 1]
        if scores_by_code is not None:
            np.take(scores_by_code, q_i, axis=0, out=sub)
        else:
            sub[:] = matrix[q_i][:, codes]
        Hn[..., 0] = 0.0 if local else go + ge * i
        Htmp = Hn[..., 1:]
        np.add(H[..., :-1], sub, out=Htmp)
        np.maximum(Htmp, F[..., 1:], out=Htmp)
        if local:
            np.maximum(Htmp, 0.0, out=Htmp)
        # Exact within-row E via the prefix max-scan (lazy-E), swept
        # over the whole bucket at once.
        np.subtract(Hn, ge_jidx, out=c)
        np.maximum.accumulate(c, axis=-1, out=c)
        E = tmp[..., 1:]
        np.add(e_base, c[..., :-1], out=E)
        np.maximum(Hn[..., 1:], E, out=Hn[..., 1:])
        if local:
            np.maximum(Hn[..., 1:], 0.0, out=Hn[..., 1:])
        if band is not None:
            _mask_band_rows(Hn, i, band_j, col)
        H, Hn = Hn, H
        if local:
            np.maximum(maxH, H, out=maxH)

    if local:
        # Columns beyond a subject's own length must not win its max.
        maxH += np.where(jidx[None, :] <= lengths[:, None], 0.0, NEG)
        return maxH.max(axis=-1)
    # Each subject's global score sits at its own final column.
    return H[np.arange(nvar)[:, None], np.arange(n)[None, :], lengths[None, :]]


def _mask_band_rows(
    H: np.ndarray, i: int, band_j: np.ndarray, col: np.ndarray
) -> None:
    """Apply the per-subject band mask to one DP row (in place)."""
    outside = (col[None, :] < i - band_j[:, None]) | (
        col[None, :] > i + band_j[:, None]
    )
    H[:, outside] = NEG
