"""Hirschberg's algorithm: global alignment strings in linear memory.

The reference traceback aligner (:mod:`repro.bio.align.traceback`)
stores O(mn) matrices — fine for inspecting top hits, hopeless for
chromosome-length sequences.  Hirschberg's divide-and-conquer recovers
the *alignment itself* in O(m+n) memory and ~2× the score-only time:
split the query in half, find where the optimal path crosses the
subject (by combining a forward score row of the top half with a
backward score row of the reversed bottom half), recurse on the two
sub-problems.

This implementation uses **linear gap penalties** (cost ``g`` per
gapped residue).  Affine-gap Hirschberg needs both gap-state boundary
rows and is substantially subtler; the linear case is the classic
algorithm and is what this module provides — construct scoring schemes
with ``gap_open=0`` to use it.  Scores agree exactly with
:func:`~repro.bio.align.nw.needleman_wunsch_score` under such schemes,
which the test suite checks by property.
"""

from __future__ import annotations

import numpy as np

from repro.bio.align.kernels import _check_pair
from repro.bio.align.scoring import ScoringScheme
from repro.bio.align.traceback import Alignment
from repro.bio.seq.sequence import Sequence


def _require_linear_gaps(scheme: ScoringScheme) -> float:
    if scheme.gap_open != 0:
        raise ValueError(
            "Hirschberg alignment requires linear gap penalties "
            f"(gap_open=0); got gap_open={scheme.gap_open}"
        )
    return scheme.gap_extend


def _score_last_row(
    q_codes: np.ndarray, s_codes: np.ndarray, matrix: np.ndarray, g: float
) -> np.ndarray:
    """Last row of the NW score matrix for (q, s), linear gaps, O(n) memory."""
    n = s_codes.shape[0]
    prev = g * np.arange(n + 1, dtype=np.float64)
    for i in range(1, q_codes.shape[0] + 1):
        sub = matrix[q_codes[i - 1]][s_codes]
        current = np.empty(n + 1)
        current[0] = g * i
        # best[j] = max(diag + substitution, up + gap) for j = 1..n; the
        # remaining left-gap dependency H[i][j-1] + g unrolls into a
        # prefix max-scan, the same trick as the affine kernel:
        #   H[i][j] = max(best[j], g*j + max_{k<j}(M[k] - g*k))
        # where M[0] = H[i][0] and M[k] = best[k].
        best = np.maximum(prev[:-1] + sub, prev[1:] + g)
        M = np.concatenate(([current[0]], best))
        running = np.maximum.accumulate(M - g * np.arange(n + 1))
        current[1:] = np.maximum(best, g * np.arange(1, n + 1) + running[:-1])
        prev = current
    return prev


def _align_small(q: str, s: str, q_codes, s_codes, matrix, g: float):
    """Base case: full DP with traceback on tiny inputs."""
    m, n = len(q), len(s)
    H = np.zeros((m + 1, n + 1))
    H[0, :] = g * np.arange(n + 1)
    H[:, 0] = g * np.arange(m + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            H[i, j] = max(
                H[i - 1, j - 1] + matrix[q_codes[i - 1], s_codes[j - 1]],
                H[i - 1, j] + g,
                H[i, j - 1] + g,
            )
    out_q, out_s = [], []
    i, j = m, n
    while i > 0 or j > 0:
        if (
            i > 0
            and j > 0
            and np.isclose(H[i, j], H[i - 1, j - 1] + matrix[q_codes[i - 1], s_codes[j - 1]])
        ):
            out_q.append(q[i - 1])
            out_s.append(s[j - 1])
            i -= 1
            j -= 1
        elif i > 0 and np.isclose(H[i, j], H[i - 1, j] + g):
            out_q.append(q[i - 1])
            out_s.append("-")
            i -= 1
        else:
            out_q.append("-")
            out_s.append(s[j - 1])
            j -= 1
    return "".join(reversed(out_q)), "".join(reversed(out_s))


def _hirschberg(q: str, s: str, q_codes, s_codes, matrix, g: float):
    m, n = len(q), len(s)
    if m == 0:
        return "-" * n, s
    if n == 0:
        return q, "-" * m
    if m <= 2 or n <= 2:
        return _align_small(q, s, q_codes, s_codes, matrix, g)
    mid = m // 2
    top = _score_last_row(q_codes[:mid], s_codes, matrix, g)
    bottom = _score_last_row(q_codes[mid:][::-1], s_codes[::-1], matrix, g)[::-1]
    split = int(np.argmax(top + bottom))
    left_q, left_s = _hirschberg(
        q[:mid], s[:split], q_codes[:mid], s_codes[:split], matrix, g
    )
    right_q, right_s = _hirschberg(
        q[mid:], s[split:], q_codes[mid:], s_codes[split:], matrix, g
    )
    return left_q + right_q, left_s + right_s


def hirschberg_align(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> Alignment:
    """Optimal global alignment in linear memory (linear gap scheme)."""
    _check_pair(query, subject, scheme)
    g = _require_linear_gaps(scheme)
    q_codes = np.asarray(query.codes, dtype=np.intp)
    s_codes = np.asarray(subject.codes, dtype=np.intp)
    q_aln, s_aln = _hirschberg(
        str(query), str(subject), q_codes, s_codes, scheme.matrix, g
    )
    score = _alignment_score(q_aln, s_aln, query, subject, scheme, g)
    return Alignment(
        query_id=query.seq_id,
        subject_id=subject.seq_id,
        score=score,
        query_aligned=q_aln,
        subject_aligned=s_aln,
    )


def _alignment_score(
    q_aln: str, s_aln: str, query: Sequence, subject: Sequence, scheme, g: float
) -> float:
    """Score a rendered alignment directly (also a handy validator)."""
    alphabet = scheme.alphabet
    score = 0.0
    for a, b in zip(q_aln, s_aln):
        if a == "-" or b == "-":
            score += g
        else:
            score += scheme.matrix[alphabet.encode(a)[0], alphabet.encode(b)[0]]
    return score
