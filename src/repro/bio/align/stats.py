"""Statistical significance of local alignment scores.

A raw Smith-Waterman score is meaningless without context: long or
compositionally biased subjects score high by chance.  The classical
result (Karlin-Altschul) is that local scores of unrelated sequences
follow an extreme-value (Gumbel) distribution,

    P(S >= x) ~ 1 - exp(-K·m·n·e^(-λx)),

with parameters λ, K depending on the scoring system.  Gapped λ/K have
no closed form, so we do what practitioners do: calibrate empirically.
:func:`calibrate` aligns shuffled sequence pairs, fits the Gumbel by
the method of moments, and the resulting :class:`ScoreStatistics`
converts hit scores to E-values — the expected number of chance hits
that good in a database of the searched size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bio.align.kernels import local_score
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence

#: Euler-Mascheroni constant (Gumbel mean = mu + gamma/lambda).
EULER_GAMMA = 0.5772156649015329


@dataclass(frozen=True, slots=True)
class ScoreStatistics:
    """A calibrated Gumbel null model for one scoring system.

    Attributes
    ----------
    lam:
        The Gumbel scale ("lambda" in Karlin-Altschul notation).
    k:
        Effective search-space constant K.
    calibration_length:
        m·n of the pairs used in calibration (the search-space size the
        raw parameters correspond to).
    """

    lam: float
    k: float
    calibration_length: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0 or self.calibration_length <= 0:
            raise ValueError("Gumbel parameters must be positive")

    def evalue(self, score: float, search_space: float) -> float:
        """Expected chance hits scoring >= *score* in *search_space* = m·n·(#subjects scanned, folded into n)."""
        if search_space <= 0:
            raise ValueError("search space must be positive")
        return self.k * search_space * math.exp(-self.lam * score)

    def pvalue(self, score: float, search_space: float) -> float:
        """P(at least one chance hit >= score)."""
        return -math.expm1(-self.evalue(score, search_space))

    def bit_score(self, score: float) -> float:
        """Scale-free score: (λS − ln K) / ln 2."""
        return (self.lam * score - math.log(self.k)) / math.log(2.0)


def shuffled(seq: Sequence, rng: np.random.Generator, tag: int) -> Sequence:
    """A composition-preserving shuffle (the standard null)."""
    codes = seq.codes.copy()
    rng.shuffle(codes)
    return Sequence(f"{seq.seq_id}_shuf{tag}", codes, seq.alphabet)


def calibrate(
    query: Sequence,
    subjects: list[Sequence],
    scheme: ScoringScheme,
    samples: int = 60,
    seed: int = 0,
) -> ScoreStatistics:
    """Fit the Gumbel null by aligning the query against shuffles.

    Uses the method of moments: for Gumbel, λ = π/(σ·√6) and
    μ = mean − γ/λ, then K = e^(λμ)/(m·n).
    """
    if samples < 10:
        raise ValueError("need at least 10 calibration samples")
    if not subjects:
        raise ValueError("need at least one subject to shuffle")
    rng = np.random.default_rng(seed)
    scores = []
    areas = []
    for i in range(samples):
        subject = subjects[i % len(subjects)]
        null = shuffled(subject, rng, i)
        scores.append(local_score(query, null, scheme))
        areas.append(len(query) * len(null))
    scores_arr = np.asarray(scores, dtype=float)
    sigma = float(scores_arr.std(ddof=1))
    if sigma <= 0:
        raise ValueError("degenerate calibration: all null scores equal")
    lam = math.pi / (sigma * math.sqrt(6.0))
    mu = float(scores_arr.mean()) - EULER_GAMMA / lam
    mean_area = float(np.mean(areas))
    k = math.exp(lam * mu) / mean_area
    return ScoreStatistics(lam=lam, k=max(k, 1e-12), calibration_length=mean_area)


def database_search_space(query: Sequence, database: list[Sequence]) -> float:
    """Total m·n over a whole database (the E-value search space)."""
    return float(len(query)) * float(sum(len(s) for s in database))
