"""Reference full-matrix aligners with traceback.

Pure-Python, quadratic-memory Gotoh — the readable specification
against which the vectorised kernels are property-tested, and the code
path that renders the actual aligned strings for the top hits a user
inspects.  Not meant for whole-database scans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.align.kernels import NEG, _check_pair
from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence


@dataclass(frozen=True, slots=True)
class Alignment:
    """One pairwise alignment with its rendered gapped strings."""

    query_id: str
    subject_id: str
    score: float
    query_aligned: str
    subject_aligned: str
    query_start: int = 0
    subject_start: int = 0

    def __post_init__(self) -> None:
        if len(self.query_aligned) != len(self.subject_aligned):
            raise ValueError("aligned strings must have equal length")

    @property
    def length(self) -> int:
        return len(self.query_aligned)

    @property
    def identity(self) -> float:
        """Fraction of alignment columns with identical residues."""
        if not self.length:
            return 0.0
        same = sum(
            1
            for a, b in zip(self.query_aligned, self.subject_aligned)
            if a == b and a != "-"
        )
        return same / self.length

    @property
    def gaps(self) -> int:
        return self.query_aligned.count("-") + self.subject_aligned.count("-")

    def pretty(self, width: int = 60) -> str:
        """Human-readable block rendering with a match line."""
        match_line = "".join(
            "|" if a == b and a != "-" else " "
            for a, b in zip(self.query_aligned, self.subject_aligned)
        )
        blocks = []
        for start in range(0, self.length, width):
            q = self.query_aligned[start : start + width]
            m = match_line[start : start + width]
            s = self.subject_aligned[start : start + width]
            blocks.append(f"Q {q}\n  {m}\nS {s}")
        header = (
            f"{self.query_id} vs {self.subject_id}  "
            f"score={self.score:.1f} identity={self.identity:.1%}"
        )
        return header + "\n" + "\n\n".join(blocks)


def _fill_matrices(query, subject, scheme, local):
    m, n = len(query), len(subject)
    go, ge = scheme.gap_open, scheme.gap_extend
    H = np.full((m + 1, n + 1), NEG)
    E = np.full((m + 1, n + 1), NEG)  # gap in query (horizontal)
    F = np.full((m + 1, n + 1), NEG)  # gap in subject (vertical)
    H[0, 0] = 0.0
    for j in range(1, n + 1):
        E[0, j] = go + ge * j
        H[0, j] = 0.0 if local else E[0, j]
    for i in range(1, m + 1):
        F[i, 0] = go + ge * i
        H[i, 0] = 0.0 if local else F[i, 0]
    for i in range(1, m + 1):
        qi = int(query.codes[i - 1])
        for j in range(1, n + 1):
            sj = int(subject.codes[j - 1])
            E[i, j] = max(E[i, j - 1] + ge, H[i, j - 1] + go + ge)
            F[i, j] = max(F[i - 1, j] + ge, H[i - 1, j] + go + ge)
            best = max(
                H[i - 1, j - 1] + scheme.score(qi, sj), E[i, j], F[i, j]
            )
            H[i, j] = max(best, 0.0) if local else best
    return H, E, F


def _traceback(query, subject, scheme, H, E, F, i, j, local):
    go, ge = scheme.gap_open, scheme.gap_extend
    q_text, s_text = str(query), str(subject)
    q_out: list[str] = []
    s_out: list[str] = []
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if local and H[i, j] == 0.0:
                break
            if i > 0 and j > 0 and np.isclose(
                H[i, j],
                H[i - 1, j - 1]
                + scheme.score(int(query.codes[i - 1]), int(subject.codes[j - 1])),
            ):
                q_out.append(q_text[i - 1])
                s_out.append(s_text[j - 1])
                i -= 1
                j -= 1
            elif j > 0 and np.isclose(H[i, j], E[i, j]):
                state = "E"
            elif i > 0 and np.isclose(H[i, j], F[i, j]):
                state = "F"
            else:  # pragma: no cover - would indicate a DP bug
                raise RuntimeError(f"traceback stuck in H at ({i},{j})")
        elif state == "E":
            q_out.append("-")
            s_out.append(s_text[j - 1])
            closed = np.isclose(E[i, j], H[i, j - 1] + go + ge)
            j -= 1
            if closed:
                state = "H"
        else:  # state == "F"
            q_out.append(q_text[i - 1])
            s_out.append("-")
            closed = np.isclose(F[i, j], H[i - 1, j] + go + ge)
            i -= 1
            if closed:
                state = "H"
    return "".join(reversed(q_out)), "".join(reversed(s_out)), i, j


def global_align(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> Alignment:
    """Full Needleman-Wunsch with traceback."""
    _check_pair(query, subject, scheme)
    H, E, F = _fill_matrices(query, subject, scheme, local=False)
    m, n = len(query), len(subject)
    q_aln, s_aln, _i, _j = _traceback(query, subject, scheme, H, E, F, m, n, False)
    return Alignment(
        query_id=query.seq_id,
        subject_id=subject.seq_id,
        score=float(H[m, n]),
        query_aligned=q_aln,
        subject_aligned=s_aln,
    )


def local_align(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> Alignment:
    """Full Smith-Waterman with traceback of the best local hit."""
    _check_pair(query, subject, scheme)
    H, E, F = _fill_matrices(query, subject, scheme, local=True)
    end = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(end[0]), int(end[1])
    score = float(H[i, j])
    q_aln, s_aln, qi, sj = _traceback(query, subject, scheme, H, E, F, i, j, True)
    return Alignment(
        query_id=query.seq_id,
        subject_id=subject.seq_id,
        score=score,
        query_aligned=q_aln,
        subject_aligned=s_aln,
        query_start=qi,
        subject_start=sj,
    )
