"""Rigorous pairwise sequence alignment.

The paper's DSEARCH offers "one of the built-in search algorithms"
citing Needleman-Wunsch [10], Smith-Waterman [14] and the subquadratic
method of Crochemore et al. [4].  This package implements:

* :mod:`repro.bio.align.scoring` — scoring schemes: simple DNA
  match/mismatch plus the standard BLOSUM62 and PAM250 protein matrices,
  with affine gap penalties.
* :mod:`repro.bio.align.kernels` — the shared vectorised Gotoh row-sweep
  (exact affine-gap DP with the within-row dependency resolved by a
  max-scan, so each row is pure NumPy).
* :mod:`repro.bio.align.batch` — the batched multi-subject engine:
  length-bucketed, padded subject tensors swept by the same recurrence
  vectorised across the whole bucket (bit-identical scores, far fewer
  Python dispatches per DP cell).
* :mod:`repro.bio.align.nw` / :mod:`repro.bio.align.sw` — global and
  local alignment scores on that kernel.
* :mod:`repro.bio.align.banded` — banded global alignment, the reduced-
  work stand-in for the subquadratic algorithm of [4].
* :mod:`repro.bio.align.traceback` — small-input full-matrix aligners
  with traceback, used for validation and display.
* :mod:`repro.bio.align.hits` — hit records and top-k merging, the
  result currency of a distributed search.
"""

from repro.bio.align.batch import (
    BucketPlan,
    SubjectBucket,
    banded_model_cells,
    batched_scores,
    plan_buckets,
    use_batched,
)
from repro.bio.align.scoring import ScoringScheme, blosum62, dna_scheme, pam250
from repro.bio.align.nw import needleman_wunsch_score
from repro.bio.align.sw import smith_waterman_score
from repro.bio.align.banded import banded_global_score
from repro.bio.align.traceback import (
    Alignment,
    global_align,
    local_align,
)
from repro.bio.align.hits import Hit, TopK, merge_topk

__all__ = [
    "Alignment",
    "BucketPlan",
    "Hit",
    "ScoringScheme",
    "SubjectBucket",
    "TopK",
    "banded_global_score",
    "banded_model_cells",
    "batched_scores",
    "blosum62",
    "dna_scheme",
    "global_align",
    "local_align",
    "merge_topk",
    "needleman_wunsch_score",
    "pam250",
    "plan_buckets",
    "smith_waterman_score",
    "use_batched",
]
