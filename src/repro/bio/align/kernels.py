"""The vectorised Gotoh row-sweep shared by NW, SW and banded alignment.

Affine-gap dynamic programming has three recurrences per cell::

    E[i,j] = max(E[i,j-1], H[i,j-1] + open) + extend      (gap in query)
    F[i,j] = max(F[i-1,j], H[i-1,j] + open) + extend      (gap in subject)
    H[i,j] = max(H[i-1,j-1] + S(q_i, s_j), E[i,j], F[i,j] [, 0 local])

``F`` and the diagonal term depend only on the previous row and
vectorise directly.  ``E`` has a within-row dependency (``E[i,j-1]``),
which is resolved exactly by a prefix max-scan: unrolling the
recurrence,

    E[i,j] = open + j·extend + max_{k<j} (H'[i,k] − k·extend)

where ``H'`` is the row value *before* adding E.  Chains through an
earlier ``E[i,k]`` are dominated inside the scan because
``open ≤ 0`` implies ``E+open+extend ≤ E+extend``.  One
``np.maximum.accumulate`` therefore computes the whole row of E, and
each DP row is a handful of NumPy primitives — this is the same
"lazy-E" trick used by striped SIMD aligners.
"""

from __future__ import annotations

import numpy as np

from repro.bio.align.scoring import ScoringScheme
from repro.bio.seq.sequence import Sequence

#: Effectively -infinity while staying far from float64 overflow.
NEG = -1.0e30


def _check_pair(query: Sequence, subject: Sequence, scheme: ScoringScheme) -> None:
    if query.alphabet != scheme.alphabet or subject.alphabet != scheme.alphabet:
        raise ValueError(
            f"scheme {scheme.name!r} is over alphabet {scheme.alphabet.name!r}; "
            f"got query {query.alphabet.name!r} / subject {subject.alphabet.name!r}"
        )
    if len(query) == 0 or len(subject) == 0:
        raise ValueError("cannot align empty sequences")


def gotoh_rows(
    query: Sequence,
    subject: Sequence,
    scheme: ScoringScheme,
    local: bool,
    band: int | None = None,
):
    """Generator over DP rows ``(i, H_row)``; shared by all aligners.

    Row 0 is the boundary row.  With ``band`` set, cells with
    ``|i - j| > band`` are masked to ``NEG`` (banded global alignment).
    """
    _check_pair(query, subject, scheme)
    m, n = len(query), len(subject)
    go, ge = scheme.gap_open, scheme.gap_extend
    profile = scheme.profile(query.icodes)  # (m, A+1)
    s_codes = subject.icodes
    jidx = np.arange(n + 1, dtype=np.float64)

    if local:
        H_prev = np.zeros(n + 1)
    else:
        H_prev = go + ge * jidx
        H_prev[0] = 0.0
    F_prev = np.full(n + 1, NEG)
    if band is not None:
        _mask_band(H_prev, 0, n, band)
    yield 0, H_prev

    for i in range(1, m + 1):
        F = np.maximum(F_prev, H_prev + go) + ge
        sub = profile[i - 1][s_codes]  # S(q_i, s_j) for j = 1..n
        H = np.empty(n + 1)
        H[0] = 0.0 if local else go + ge * i
        Htmp = np.maximum(H_prev[:-1] + sub, F[1:])
        if local:
            np.maximum(Htmp, 0.0, out=Htmp)
        H[1:] = Htmp
        # Exact within-row E via prefix max-scan (see module docstring).
        c = H - ge * jidx  # uses H' (pre-E) values
        run = np.maximum.accumulate(c)
        E = go + ge * jidx[1:] + run[:-1]
        np.maximum(H[1:], E, out=H[1:])
        if local:
            np.maximum(H[1:], 0.0, out=H[1:])
        if band is not None:
            _mask_band(H, i, n, band)
        yield i, H
        H_prev, F_prev = H, F


def _mask_band(row: np.ndarray, i: int, n: int, band: int) -> None:
    lo = i - band
    hi = i + band
    if lo > 0:
        row[: min(lo, n + 1)] = NEG
    if hi < n:
        row[hi + 1 :] = NEG


def global_score(
    query: Sequence,
    subject: Sequence,
    scheme: ScoringScheme,
    band: int | None = None,
) -> float:
    """Needleman-Wunsch (optionally banded) global alignment score."""
    if band is not None:
        # The end cell (m, n) must be reachable inside the band.
        band = max(band, abs(len(query) - len(subject)))
    last = None
    for _i, row in gotoh_rows(query, subject, scheme, local=False, band=band):
        last = row
    assert last is not None
    return float(last[-1])


def local_score(query: Sequence, subject: Sequence, scheme: ScoringScheme) -> float:
    """Smith-Waterman local alignment score (always >= 0)."""
    best = 0.0
    for _i, row in gotoh_rows(query, subject, scheme, local=True):
        row_max = float(row.max())
        if row_max > best:
            best = row_max
    return best


def cell_count(query: Sequence, subject: Sequence) -> int:
    """DP cells for a full alignment — the unit-cost model of DSEARCH."""
    return len(query) * len(subject)
