"""Scoring schemes: substitution matrices and affine gap penalties.

A gap of length *k* costs ``gap_open + k * gap_extend`` (both
negative): the open penalty is charged once, the extend penalty per
gapped residue including the first.  This is the Gotoh convention used
by the kernels.

The protein matrices are the standard BLOSUM62 and PAM250 tables over
the residue order ``ARNDCQEGHILKMFPSTWYV`` (the order of
:data:`repro.bio.seq.alphabet.PROTEIN`), each extended with an X
(unknown) row/column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.seq.alphabet import Alphabet, DNA, PROTEIN

_BLOSUM62 = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""

_BLOSUM62_X = [0, -1, -1, -1, -2, -1, -1, -1, -1, -1,
               -1, -1, -1, -1, -2, 0, 0, -2, -1, -1]

_PAM250 = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
"""

_PAM250_X = [0, -1, 0, -1, -3, -1, -1, -1, -1, -1,
             -1, -1, -1, -2, -1, 0, 0, -4, -2, -1]


def _parse_matrix(text: str, x_row: list[int], size: int) -> np.ndarray:
    rows = [
        [int(v) for v in line.split()]
        for line in text.strip().splitlines()
    ]
    core = np.array(rows, dtype=np.float64)
    if core.shape != (size, size):
        raise ValueError(f"matrix shape {core.shape}, expected {(size, size)}")
    full = np.full((size + 1, size + 1), -1.0, dtype=np.float64)
    full[:size, :size] = core
    full[size, :size] = x_row
    full[:size, size] = x_row
    full[size, size] = -1.0
    return full


@dataclass(frozen=True)
class ScoringScheme:
    """Substitution matrix + affine gap penalties over one alphabet.

    Attributes
    ----------
    name:
        The configuration-file name of the scheme (e.g. ``blosum62``).
    alphabet:
        Which residues the matrix indexes (plus one unknown code).
    matrix:
        ``(size+1, size+1)`` float array, indexed by residue codes.
    gap_open, gap_extend:
        Both negative; gap of length k costs ``gap_open + k*gap_extend``.
    """

    name: str
    alphabet: Alphabet
    matrix: np.ndarray
    gap_open: float = -10.0
    gap_extend: float = -1.0

    def __post_init__(self) -> None:
        expected = (self.alphabet.size + 1, self.alphabet.size + 1)
        if self.matrix.shape != expected:
            raise ValueError(f"matrix shape {self.matrix.shape}, expected {expected}")
        if self.gap_open > 0 or self.gap_extend > 0:
            raise ValueError("gap penalties must be <= 0")
        if not np.allclose(self.matrix, self.matrix.T):
            raise ValueError(f"substitution matrix {self.name!r} is not symmetric")

    def score(self, code_a: int, code_b: int) -> float:
        """Substitution score for two residue codes."""
        return float(self.matrix[code_a, code_b])

    def profile(self, query_codes: np.ndarray) -> np.ndarray:
        """Query profile: ``profile[i, c]`` scores query residue *i*
        against subject code *c* — one gather instead of a 2-D lookup in
        the inner loop."""
        return self.matrix[np.asarray(query_codes, dtype=np.intp)]


def dna_scheme(
    match: float = 5.0,
    mismatch: float = -4.0,
    gap_open: float = -10.0,
    gap_extend: float = -1.0,
) -> ScoringScheme:
    """Simple DNA scoring (defaults are the classic BLASTN values)."""
    if match <= 0:
        raise ValueError("match score must be positive")
    if mismatch >= 0:
        raise ValueError("mismatch score must be negative")
    size = DNA.size
    matrix = np.full((size + 1, size + 1), mismatch, dtype=np.float64)
    np.fill_diagonal(matrix, match)
    # Unknown (N) scores 0 against everything, including itself.
    matrix[size, :] = 0.0
    matrix[:, size] = 0.0
    return ScoringScheme("dna", DNA, matrix, gap_open, gap_extend)


def blosum62(gap_open: float = -10.0, gap_extend: float = -1.0) -> ScoringScheme:
    """The standard BLOSUM62 protein matrix."""
    matrix = _parse_matrix(_BLOSUM62, _BLOSUM62_X, PROTEIN.size)
    return ScoringScheme("blosum62", PROTEIN, matrix, gap_open, gap_extend)


def pam250(gap_open: float = -10.0, gap_extend: float = -1.0) -> ScoringScheme:
    """The standard PAM250 protein matrix."""
    matrix = _parse_matrix(_PAM250, _PAM250_X, PROTEIN.size)
    return ScoringScheme("pam250", PROTEIN, matrix, gap_open, gap_extend)


_BUILTIN = {"dna": dna_scheme, "blosum62": blosum62, "pam250": pam250}


def scheme_by_name(
    name: str, gap_open: float = -10.0, gap_extend: float = -1.0
) -> ScoringScheme:
    """Look up a scheme by its configuration-file name."""
    try:
        factory = _BUILTIN[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scoring scheme {name!r}; choose from {sorted(_BUILTIN)}"
        ) from None
    return factory(gap_open=gap_open, gap_extend=gap_extend)
