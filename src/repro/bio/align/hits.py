"""Hit records and top-k result merging.

A distributed search returns, per query, the best *k* database matches.
Each donor computes a local top-k over its database slice; the server
merges slices with :func:`merge_topk`.  Merging is associative and
commutative with deterministic tie-breaking, so the assembled result is
independent of the order donor results arrive in — a requirement for a
system where unit completion order is scheduling noise.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True, order=False)
class Hit:
    """One query-vs-subject match."""

    query_id: str
    subject_id: str
    score: float
    subject_length: int = 0

    def sort_key(self) -> tuple:
        """Descending score; ties broken by subject then query id."""
        return (-self.score, self.subject_id, self.query_id)


class TopK:
    """A bounded best-hits accumulator for one query."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        # Min-heap of (key, seq, Hit) keeps the current worst retained
        # hit at the root.  ``seq`` is a heap-internal tiebreaker only:
        # it stops the heap from ever comparing Hit objects, while all
        # retention decisions use ``key`` alone so the outcome does not
        # depend on offer order.
        self._heap: list[tuple[tuple, int, Hit]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    @staticmethod
    def _key(hit: Hit) -> tuple:
        # Ascending "goodness": higher score wins; on equal scores the
        # lexicographically smaller subject id (then query id) wins, so
        # scalar and batched search retain byte-identical hit lists
        # whatever order candidates arrive in.
        return (
            hit.score,
            _reverse_str_key(hit.subject_id),
            _reverse_str_key(hit.query_id),
        )

    def offer(self, hit: Hit) -> bool:
        """Consider a hit; returns True when it is retained."""
        key = self._key(hit)
        if len(self._heap) < self.k:
            self._counter += 1
            heapq.heappush(self._heap, (key, self._counter, hit))
            return True
        if key > self._heap[0][0]:
            self._counter += 1
            heapq.heapreplace(self._heap, (key, self._counter, hit))
            return True
        return False

    def extend(self, hits: Iterable[Hit]) -> None:
        for hit in hits:
            self.offer(hit)

    def best(self) -> list[Hit]:
        """Retained hits, best first."""
        return sorted((e[2] for e in self._heap), key=Hit.sort_key)

    def __iter__(self) -> Iterator[Hit]:
        return iter(self.best())


class _reverse_str_key:
    """Orders strings descending inside an ascending-heap tuple."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_reverse_str_key") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _reverse_str_key) and other.value == self.value


def merge_topk(k: int, *hit_lists: Iterable[Hit]) -> list[Hit]:
    """Merge any number of per-slice hit lists into one global top-k."""
    top = TopK(k)
    for hits in hit_lists:
        top.extend(hits)
    return top.best()
