"""Bioinformatics substrates: sequences, alignment, phylogenetics.

These are from-scratch implementations of everything the paper's two
applications depend on — the role PAL v1.4 and the authors' own
alignment code played in the original system.
"""
