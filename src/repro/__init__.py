"""repro — reproduction of *Bioinformatics on a Heterogeneous Java
Distributed System* (Page, Keane, Naughton; IPDPS 2005).

The package provides three layers, mirroring the paper:

``repro.core``
    The programmable task-farming framework: users extend
    :class:`~repro.core.problem.DataManager` (server side, partitions the
    problem and combines results) and
    :class:`~repro.core.problem.Algorithm` (client side, the computation)
    and submit a self-contained :class:`~repro.core.problem.Problem`.

``repro.rmi`` and ``repro.cluster``
    The communication substrate (remote method invocation over TCP plus a
    raw-socket bulk data channel, replacing Java RMI + sockets) and two
    cluster backends: a real multi-process cluster on localhost and a
    deterministic discrete-event simulation of a heterogeneous donor pool.

``repro.bio`` and ``repro.apps``
    The bioinformatics substrates (sequences, rigorous alignment,
    maximum-likelihood phylogenetics) and the two applications built on
    the framework: DSEARCH (sensitive database search) and DPRml
    (distributed phylogeny reconstruction by maximum likelihood).
"""

__version__ = "1.0.0"

from repro.core.problem import Algorithm, DataManager, Problem
from repro.core.server import TaskFarmServer
from repro.core.workunit import UnitStatus, WorkResult, WorkUnit

__all__ = [
    "Algorithm",
    "DataManager",
    "Problem",
    "TaskFarmServer",
    "UnitStatus",
    "WorkResult",
    "WorkUnit",
    "__version__",
]
