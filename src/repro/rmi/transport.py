"""TCP transport: framed message sockets and a threaded accept loop."""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable

from repro.obs.meters import MeterRegistry
from repro.rmi import serialize
from repro.rmi.errors import ConnectionClosed, RMIError


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly *n* bytes or raise :class:`ConnectionClosed`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(f"peer closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameSocket:
    """A socket that speaks whole serialized objects.

    Thread safety: one thread may send while another receives, but
    concurrent senders (or concurrent receivers) must coordinate — the
    same contract as Java RMI's connection handling.

    When *meters* is supplied, frame and byte counts are streamed into
    it (``rmi.frames.*`` / ``rmi.bytes.*``) so the status CLI can show
    control-plane traffic live.

    *chaos* (a :class:`~repro.cluster.sim.chaos.WireChaos`, tests only)
    lets the chaos harness damage or delay outgoing frames to prove the
    receiving side fails loudly rather than deserializing garbage.
    """

    def __init__(
        self,
        sock: socket.socket,
        meters: MeterRegistry | None = None,
        chaos=None,
    ):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self.meters = meters
        self.chaos = chaos
        # Control-plane messages are small and latency-sensitive.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not all test sockets support it
            pass

    @property
    def raw(self) -> socket.socket:
        return self._sock

    def send_obj(self, obj: Any) -> int:
        """Serialize and send one object; returns bytes written."""
        frame = serialize.dumps(obj)
        if self.chaos is not None:
            self.chaos.maybe_delay()
            frame = self.chaos.mangle(frame)
        with self._send_lock:
            self._sock.sendall(frame)
        if self.meters is not None:
            self.meters.counter("rmi.frames.sent").inc()
            self.meters.counter("rmi.bytes.sent").inc(len(frame))
        return len(frame)

    def recv_obj(self) -> Any:
        """Receive and deserialize one object."""
        with self._recv_lock:
            header = _recv_exact(self._sock, serialize.HEADER_SIZE)
            length = serialize.parse_header(header)
            payload = _recv_exact(self._sock, length)
        if self.meters is not None:
            self.meters.counter("rmi.frames.received").inc()
            self.meters.counter("rmi.bytes.received").inc(
                serialize.HEADER_SIZE + length
            )
        return serialize.loads_payload(payload)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameSocket":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def dial(host: str, port: int, timeout: float | None = None) -> FrameSocket:
    """Connect to a listening transport and return a :class:`FrameSocket`."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return FrameSocket(sock)


class TransportServer:
    """Threaded TCP accept loop handing each connection to a callback.

    The callback runs on a dedicated thread per connection and receives
    a :class:`FrameSocket`; it owns the socket's lifetime.  This mirrors
    the JVM-side dispatch threads of Java RMI.
    """

    def __init__(
        self,
        handler: Callable[[FrameSocket], None],
        host: str = "127.0.0.1",
        port: int = 0,
        meters: MeterRegistry | None = None,
    ):
        self._handler = handler
        self.meters = meters
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: set[FrameSocket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rmi-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            fsock = FrameSocket(conn, meters=self.meters)
            with self._conns_lock:
                self._conns.add(fsock)
            if self.meters is not None:
                self.meters.counter("rmi.connections.accepted").inc()
                self.meters.gauge("rmi.connections.open").inc()
            thread = threading.Thread(
                target=self._run_handler,
                args=(fsock,),
                name=f"rmi-conn:{self.port}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            # Reap finished handler threads so the list stays bounded.
            self._threads = [t for t in self._threads if t.is_alive()]

    def _run_handler(self, fsock: FrameSocket) -> None:
        try:
            self._handler(fsock)
        except ConnectionClosed:
            pass
        except RMIError:
            # Garbage on the wire (bad magic, corrupt frame): drop this
            # connection; the server keeps serving everyone else.
            pass
        except OSError:
            pass  # connection torn down under the handler (server close)
        finally:
            fsock.close()
            with self._conns_lock:
                dropped = fsock in self._conns
                self._conns.discard(fsock)
            if dropped and self.meters is not None:
                self.meters.gauge("rmi.connections.open").dec()

    def close(self) -> None:
        """Stop accepting, drop live connections, reap handler threads.

        Closing live connections matters: a "stopped" server whose old
        sockets keep answering is indistinguishable from a running one,
        which would defeat both restart semantics and the donors'
        reconnect logic.
        """
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conns_lock:
            conns = list(self._conns)
        for fsock in conns:
            fsock.close()
        self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)

    def __enter__(self) -> "TransportServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
