"""Exception hierarchy for the RMI layer."""

from __future__ import annotations


class RMIError(Exception):
    """Base class for all RMI-layer failures."""


class ConnectionClosed(RMIError):
    """The peer closed the connection (cleanly or mid-frame)."""


class ProtocolError(RMIError):
    """A frame violated the wire protocol (bad magic, length, type)."""


class ChecksumError(ProtocolError):
    """Bulk-transfer payload failed its integrity digest.

    Distinct from a byzantine donor: the *donor* computed honestly and
    the bytes were damaged in transit, so the receiver must discard the
    transfer and retry rather than debit anyone's reputation.
    """


class SerializationError(RMIError):
    """An object could not be pickled or unpickled."""


class RemoteError(RMIError):
    """The remote method raised; carries the remote traceback text.

    Mirrors Java RMI's ``RemoteException`` wrapping: the client sees the
    remote failure as a local exception with enough context to debug it,
    without requiring the remote exception class to be importable.
    """

    def __init__(self, exc_type: str, message: str, remote_traceback: str = ""):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.message = message
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = f"remote call raised {self.exc_type}: {self.message}"
        if self.remote_traceback:
            base += "\n--- remote traceback ---\n" + self.remote_traceback
        return base
