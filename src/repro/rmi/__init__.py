"""Remote method invocation over TCP — the Java RMI replacement.

The paper's system uses Java RMI for control-plane calls ("interact with
objects that are actually running in JVMs on remote hosts") and plain
sockets for bulk data files "which is more efficient than RMI".  This
package reimplements both halves from scratch:

* :mod:`repro.rmi.serialize` — a framed pickle codec (the serialization
  layer RMI gets for free from Java object serialization).
* :mod:`repro.rmi.transport` — length-prefixed message framing over TCP
  plus a threaded accept loop.
* :mod:`repro.rmi.registry` / :mod:`repro.rmi.proxy` — a remote object
  registry on the server and dynamic client-side stubs, so calling
  ``proxy.method(args)`` executes ``method`` on the remote object.
* :mod:`repro.rmi.datachannel` — the "ordinary sockets" path: chunked,
  checksummed streaming of large byte payloads that bypasses the RMI
  request/response envelope.
"""

from repro.rmi.errors import (
    ConnectionClosed,
    ProtocolError,
    RemoteError,
    RMIError,
    SerializationError,
)
from repro.rmi.proxy import RemoteProxy, connect
from repro.rmi.registry import RemoteObjectRegistry
from repro.rmi.server import RMIServer
from repro.rmi.datachannel import DataChannelServer, fetch_data, push_data

__all__ = [
    "ConnectionClosed",
    "DataChannelServer",
    "ProtocolError",
    "RMIError",
    "RMIServer",
    "RemoteError",
    "RemoteObjectRegistry",
    "RemoteProxy",
    "SerializationError",
    "connect",
    "fetch_data",
    "push_data",
]
