"""Reconnecting client port: donors survive server restarts.

The paper's system ran for years; donors must outlive transient server
outages (restart, network blip) without operator attention.  A
:class:`ReconnectingPort` wraps proxy construction: when a call fails
with a connection-level error it redials with exponential backoff,
re-registers the donor, and retries.  In-flight work is *not* replayed
blindly — on reconnect the donor re-registers, the server requeues its
old lease, and duplicate results are suppressed by the server's
exactly-once accounting, so the retry is always safe.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.rmi.errors import ConnectionClosed, RMIError
from repro.rmi.proxy import RemoteProxy, connect

#: Errors that mean "the connection is gone", as opposed to a remote
#: exception (which must propagate to the caller untouched).
_CONNECTION_ERRORS = (ConnectionClosed, ConnectionError, OSError)


class ReconnectingPort:
    """A ServerPort that transparently redials the RMI server.

    Parameters
    ----------
    host, port, object_name:
        Where the task-farm facade lives.
    max_attempts:
        Redials per call before giving up (the donor then exits and a
        service manager may restart it).
    base_backoff, max_backoff:
        Exponential backoff bounds between redial attempts.  The actual
        delay uses *full jitter*: uniform over ``[0, cap]`` where the
        cap doubles per attempt up to ``max_backoff``.  After a server
        restart every donor loses its connection at the same instant;
        without jitter they would all redial in lockstep and hammer the
        recovering server in synchronized waves (a thundering herd).
    on_reconnect:
        Callback invoked with the fresh proxy after each successful
        redial — the donor client uses it to re-register itself.
    rng:
        Jitter source; defaults to OS entropy so independent donors
        desynchronize.  Tests inject a seeded generator.
    """

    def __init__(
        self,
        host: str,
        port: int,
        object_name: str = "taskfarm",
        max_attempts: int = 8,
        base_backoff: float = 0.2,
        max_backoff: float = 30.0,
        on_reconnect: Callable[[RemoteProxy], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: np.random.Generator | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._host = host
        self._port = port
        self._object_name = object_name
        self._max_attempts = max_attempts
        self._base_backoff = base_backoff
        self._max_backoff = max_backoff
        self._on_reconnect = on_reconnect
        self._sleep = sleep
        self._rng = rng if rng is not None else np.random.default_rng()
        self._proxy: RemoteProxy | None = None
        self.reconnects = 0

    # -- connection management -------------------------------------------

    def _ensure_proxy(self) -> RemoteProxy:
        if self._proxy is None:
            self._proxy = connect(self._host, self._port, self._object_name)
            if self._on_reconnect is not None:
                self._on_reconnect(self._proxy)
        return self._proxy

    def _drop_proxy(self) -> None:
        if self._proxy is not None:
            try:
                self._proxy.close()
            except Exception:
                pass
            self._proxy = None

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter backoff: uniform over [0, min(max, base * 2^n)]."""
        cap = min(self._max_backoff, self._base_backoff * (2.0**attempt))
        return float(self._rng.uniform(0.0, cap))

    def _call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        last_error: Exception | None = None
        for attempt in range(self._max_attempts):
            try:
                proxy = self._ensure_proxy()
                return getattr(proxy, method)(*args, **kwargs)
            except _CONNECTION_ERRORS as exc:
                last_error = exc
                self._drop_proxy()
                if attempt + 1 < self._max_attempts:
                    self._sleep(self._backoff_delay(attempt))
                    self.reconnects += 1
        raise RMIError(
            f"gave up on {method!r} after {self._max_attempts} attempts"
        ) from last_error

    def close(self) -> None:
        self._drop_proxy()

    # -- the ServerPort surface -------------------------------------------

    def register_donor(self, donor_id: str, slots: int = 1) -> None:
        self._call("register_donor", donor_id, slots)

    def deregister_donor(self, donor_id: str) -> None:
        self._call("deregister_donor", donor_id)

    def request_work(self, donor_id: str):
        return self._call("request_work", donor_id)

    def submit_result(self, result) -> bool:
        return self._call("submit_result", result)

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str
    ) -> None:
        self._call("report_failure", problem_id, unit_id, donor_id, error)

    def heartbeat(self, donor_id: str) -> None:
        self._call("heartbeat", donor_id)

    def get_algorithm(self, problem_id: int):
        return self._call("get_algorithm", problem_id)

    def get_shared_blob(self, problem_id: int, key: str) -> bytes:
        return self._call("get_shared_blob", problem_id, key)

    def data_address(self):
        return self._call("data_address")

    def all_complete(self) -> bool:
        return self._call("all_complete")
