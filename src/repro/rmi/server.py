"""The RMI server: a transport accept loop wired to an object registry.

Each client connection is a sequence of request/response pairs; the
connection thread loops until the client disconnects.  This matches the
paper's single-server topology where every donor keeps a control
connection to the one server.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs import Observability
from repro.obs.meters import LATENCY_BUCKETS
from repro.rmi.registry import CallRequest, CallResponse, RemoteObjectRegistry
from repro.rmi.transport import FrameSocket, TransportServer


class RMIServer:
    """Hosts remote objects on a TCP port.

    When *obs* is supplied, every dispatched call is traced
    (``rmi.call`` spans, named attrs for object/method) and timed into
    the ``rmi.call.seconds`` histogram; the transport streams frame and
    byte counters into the same registry.

    Example
    -------
    >>> server = RMIServer()
    >>> server.registry.bind("adder", SomeAdder())
    >>> # clients: connect("127.0.0.1", server.port, "adder").add(1, 2)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: Observability | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = RemoteObjectRegistry()
        self.obs = obs
        self._clock = clock
        self._transport = TransportServer(
            self._serve_connection,
            host=host,
            port=port,
            meters=obs.meters if obs is not None else None,
        )
        self.host = self._transport.host
        self.port = self._transport.port

    def _serve_connection(self, fsock: FrameSocket) -> None:
        while True:
            request = fsock.recv_obj()  # raises ConnectionClosed to end loop
            if not isinstance(request, CallRequest):
                fsock.send_obj(
                    CallResponse(
                        ok=False,
                        exc_type="ProtocolError",
                        exc_message=f"expected CallRequest, got {type(request).__name__}",
                    )
                )
                continue
            fsock.send_obj(self._dispatch(request))

    def _dispatch(self, request: CallRequest) -> CallResponse:
        if self.obs is None:
            return self.registry.dispatch(request)
        start = self._clock()
        with self.obs.tracer.timed(
            "rmi.call",
            self._clock,
            object_name=request.object_name,
            method=request.method,
        ) as span:
            response = self.registry.dispatch(request)
            if not response.ok:
                span.status = "error"
                span.attrs["exc_type"] = response.exc_type
        meters = self.obs.meters
        meters.counter("rmi.calls").inc()
        if not response.ok:
            meters.counter("rmi.calls.failed").inc()
        meters.histogram("rmi.call.seconds", LATENCY_BUCKETS).observe(
            self._clock() - start
        )
        return response

    def bind(self, name: str, obj: Any) -> None:
        """Convenience passthrough to :meth:`RemoteObjectRegistry.bind`."""
        self.registry.bind(name, obj)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "RMIServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
