"""The RMI server: a transport accept loop wired to an object registry.

Each client connection is a sequence of request/response pairs; the
connection thread loops until the client disconnects.  This matches the
paper's single-server topology where every donor keeps a control
connection to the one server.
"""

from __future__ import annotations

from typing import Any

from repro.rmi.registry import CallRequest, CallResponse, RemoteObjectRegistry
from repro.rmi.transport import FrameSocket, TransportServer


class RMIServer:
    """Hosts remote objects on a TCP port.

    Example
    -------
    >>> server = RMIServer()
    >>> server.registry.bind("adder", SomeAdder())
    >>> # clients: connect("127.0.0.1", server.port, "adder").add(1, 2)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.registry = RemoteObjectRegistry()
        self._transport = TransportServer(self._serve_connection, host=host, port=port)
        self.host = self._transport.host
        self.port = self._transport.port

    def _serve_connection(self, fsock: FrameSocket) -> None:
        while True:
            request = fsock.recv_obj()  # raises ConnectionClosed to end loop
            if not isinstance(request, CallRequest):
                fsock.send_obj(
                    CallResponse(
                        ok=False,
                        exc_type="ProtocolError",
                        exc_message=f"expected CallRequest, got {type(request).__name__}",
                    )
                )
                continue
            fsock.send_obj(self.registry.dispatch(request))

    def bind(self, name: str, obj: Any) -> None:
        """Convenience passthrough to :meth:`RemoteObjectRegistry.bind`."""
        self.registry.bind(name, obj)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "RMIServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
