"""Framed object serialization.

Wire format of one frame::

    +--------+---------+--------------+------------------+
    | magic  | version | payload len  | payload (pickle) |
    | 2 B    | 1 B     | 4 B big-end  | len bytes        |
    +--------+---------+--------------+------------------+

The magic/version header lets a receiver reject garbage (or a peer
speaking a future protocol) before attempting to unpickle, and the
length prefix delimits messages on the stream.  Java object
serialization plays this role in real RMI.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.rmi.errors import ProtocolError, SerializationError

MAGIC = b"JR"  # "Java-replacement RMI"
VERSION = 1
_HEADER = struct.Struct(">2sBI")
HEADER_SIZE = _HEADER.size

#: Refuse absurd frames instead of attempting a multi-GiB allocation on
#: a corrupt length field.
MAX_FRAME_BYTES = 1 << 31


def dumps(obj: Any) -> bytes:
    """Serialize *obj* into a framed message."""
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    return _HEADER.pack(MAGIC, VERSION, len(payload)) + payload


def parse_header(header: bytes) -> int:
    """Validate a frame header and return the payload length."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"short header: {len(header)} bytes")
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {length} bytes")
    return length


def loads_payload(payload: bytes) -> Any:
    """Deserialize a frame payload (header already stripped)."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise SerializationError(f"cannot deserialize payload: {exc}") from exc


def loads(frame: bytes) -> Any:
    """Deserialize one complete frame (header + payload)."""
    length = parse_header(frame[:HEADER_SIZE])
    payload = frame[HEADER_SIZE:]
    if len(payload) != length:
        raise ProtocolError(
            f"payload length mismatch: header says {length}, got {len(payload)}"
        )
    return loads_payload(payload)
