"""Server-side remote object registry and call dispatch.

Objects are exported under string names (as in ``java.rmi.Naming``).
An incoming call names the object, the method and the arguments; the
registry locates the object, invokes the method, and packages either
the return value or the raised exception for the wire.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class CallRequest:
    """One remote invocation as it travels over the wire."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict


@dataclass(frozen=True, slots=True)
class CallResponse:
    """Outcome of a remote invocation.

    Exactly one of ``value`` (when ``ok``) or the error fields is
    meaningful.
    """

    ok: bool
    value: Any = None
    exc_type: str = ""
    exc_message: str = ""
    exc_traceback: str = ""


class RemoteObjectRegistry:
    """Name → exported object table with safe dispatch.

    Only public methods (no leading underscore) that exist on the
    exported object may be invoked remotely; everything else is
    reported as an ``AttributeError`` to the caller rather than raising
    in the server.
    """

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}
        self._lock = threading.Lock()

    def bind(self, name: str, obj: Any) -> None:
        """Export *obj* under *name*; rebinding an existing name fails."""
        with self._lock:
            if name in self._objects:
                raise KeyError(f"name already bound: {name!r}")
            self._objects[name] = obj

    def rebind(self, name: str, obj: Any) -> None:
        """Export *obj* under *name*, replacing any existing binding."""
        with self._lock:
            self._objects[name] = obj

    def unbind(self, name: str) -> Any:
        with self._lock:
            return self._objects.pop(name)

    def lookup(self, name: str) -> Any:
        with self._lock:
            return self._objects[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def dispatch(self, request: CallRequest) -> CallResponse:
        """Execute one call and capture its outcome."""
        try:
            with self._lock:
                obj = self._objects.get(request.object_name)
            if obj is None:
                raise KeyError(f"no remote object bound as {request.object_name!r}")
            if request.method.startswith("_"):
                raise AttributeError(
                    f"method {request.method!r} is not remotely callable"
                )
            method = getattr(obj, request.method, None)
            if method is None or not callable(method):
                raise AttributeError(
                    f"{request.object_name!r} has no remote method {request.method!r}"
                )
            value = method(*request.args, **request.kwargs)
            return CallResponse(ok=True, value=value)
        except Exception as exc:
            return CallResponse(
                ok=False,
                exc_type=type(exc).__name__,
                exc_message=str(exc),
                exc_traceback=traceback.format_exc(),
            )
