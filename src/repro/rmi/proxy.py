"""Client-side stubs: attribute access becomes a remote call.

``proxy.search(db, q)`` serializes a :class:`CallRequest`, sends it over
the control connection, blocks for the :class:`CallResponse`, and either
returns the value or re-raises the remote failure as
:class:`~repro.rmi.errors.RemoteError` — the same programming model Java
RMI gives its users.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.rmi.errors import RemoteError
from repro.rmi.registry import CallRequest, CallResponse
from repro.rmi.transport import FrameSocket, dial


class _BoundMethod:
    """Callable for one remote method on one proxy."""

    __slots__ = ("_proxy", "_name")

    def __init__(self, proxy: "RemoteProxy", name: str):
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy._invoke(self._name, args, kwargs)


class RemoteProxy:
    """Dynamic stub for a named remote object.

    One proxy owns one control connection.  Calls are serialized through
    a lock because the wire protocol is strict request/response; create
    one proxy per thread for concurrent callers (donor clients each hold
    their own connection, as in the paper's deployment).
    """

    def __init__(self, fsock: FrameSocket, object_name: str):
        self._fsock = fsock
        self._object_name = object_name
        self._call_lock = threading.Lock()

    def __getattr__(self, name: str) -> _BoundMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _BoundMethod(self, name)

    def _invoke(self, method: str, args: tuple, kwargs: dict) -> Any:
        request = CallRequest(self._object_name, method, args, kwargs)
        with self._call_lock:
            self._fsock.send_obj(request)
            response = self._fsock.recv_obj()
        if not isinstance(response, CallResponse):
            raise RemoteError(
                "ProtocolError", f"expected CallResponse, got {type(response).__name__}"
            )
        if response.ok:
            return response.value
        raise RemoteError(response.exc_type, response.exc_message, response.exc_traceback)

    def close(self) -> None:
        self._fsock.close()

    def __enter__(self) -> "RemoteProxy":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def connect(
    host: str, port: int, object_name: str, timeout: float | None = None
) -> RemoteProxy:
    """Dial an :class:`~repro.rmi.server.RMIServer` and bind a stub."""
    return RemoteProxy(dial(host, port, timeout=timeout), object_name)
