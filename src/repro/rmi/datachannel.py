"""Bulk data transfer over plain sockets.

The paper: "Data files, which may be large, are transmitted using
ordinary sockets, which is more efficient than RMI."  The RMI call path
must buffer the whole payload to pickle it into one frame; this channel
instead streams fixed-size chunks straight from/to a byte buffer with an
adler32 checksum trailer, so large transfers cost O(chunk) memory and
skip the serialization envelope.

Protocol (client → server request, then one transfer either direction)::

    request  = frame{"op": "get"|"put", "key": str, ["size": int]}
    transfer = 8-byte big-endian size, raw bytes, 4-byte adler32
    reply    = frame{"ok": bool, ["error": str]}
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

from repro.obs.meters import BYTES_BUCKETS, MeterRegistry
from repro.rmi.errors import ProtocolError, RMIError
from repro.rmi.transport import FrameSocket, TransportServer, _recv_exact

CHUNK_SIZE = 1 << 16
_SIZE = struct.Struct(">Q")
_SUM = struct.Struct(">I")


def _send_stream(sock: socket.socket, data: bytes) -> None:
    sock.sendall(_SIZE.pack(len(data)))
    checksum = zlib.adler32(b"")
    view = memoryview(data)
    for start in range(0, len(view), CHUNK_SIZE):
        chunk = view[start : start + CHUNK_SIZE]
        checksum = zlib.adler32(chunk, checksum)
        sock.sendall(chunk)
    sock.sendall(_SUM.pack(checksum & 0xFFFFFFFF))


def _recv_stream(sock: socket.socket) -> bytes:
    (size,) = _SIZE.unpack(_recv_exact(sock, _SIZE.size))
    checksum = zlib.adler32(b"")
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, CHUNK_SIZE))
        if not chunk:
            raise ProtocolError(f"stream truncated with {remaining} bytes left")
        checksum = zlib.adler32(chunk, checksum)
        chunks.append(chunk)
        remaining -= len(chunk)
    (expected,) = _SUM.unpack(_recv_exact(sock, _SUM.size))
    if (checksum & 0xFFFFFFFF) != expected:
        raise ProtocolError("checksum mismatch on bulk transfer")
    return b"".join(chunks)


class DataChannelServer:
    """Serves named byte blobs (problem data files) over raw sockets.

    The server in the paper holds each problem's data files and donors
    fetch the slice they need; results flow back the same way.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        meters: MeterRegistry | None = None,
    ):
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.meters = meters
        self._transport = TransportServer(self._serve, host=host, port=port)
        self.host = self._transport.host
        self.port = self._transport.port

    def _meter_transfer(self, direction: str, nbytes: int) -> None:
        if self.meters is None:
            return
        self.meters.counter(f"data.transfers.{direction}").inc()
        self.meters.counter(f"data.bytes.{direction}").inc(nbytes)
        self.meters.histogram("data.transfer.bytes", BYTES_BUCKETS).observe(nbytes)

    def store(self, key: str, data: bytes) -> None:
        """Make *data* fetchable under *key*."""
        with self._lock:
            self._blobs[key] = data

    def get(self, key: str) -> bytes:
        with self._lock:
            return self._blobs[key]

    def delete(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)

    def _serve(self, fsock: FrameSocket) -> None:
        while True:
            request = fsock.recv_obj()
            op = request.get("op")
            key = request.get("key", "")
            if op == "get":
                with self._lock:
                    data = self._blobs.get(key)
                if data is None:
                    fsock.send_obj({"ok": False, "error": f"no blob {key!r}"})
                    continue
                fsock.send_obj({"ok": True, "size": len(data)})
                _send_stream(fsock.raw, data)
                self._meter_transfer("out", len(data))
            elif op == "put":
                fsock.send_obj({"ok": True})
                data = _recv_stream(fsock.raw)
                with self._lock:
                    self._blobs[key] = data
                fsock.send_obj({"ok": True, "size": len(data)})
                self._meter_transfer("in", len(data))
            else:
                fsock.send_obj({"ok": False, "error": f"unknown op {op!r}"})

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "DataChannelServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def fetch_data(host: str, port: int, key: str) -> bytes:
    """Download one blob from a :class:`DataChannelServer`."""
    with FrameSocket(socket.create_connection((host, port))) as fsock:
        fsock.send_obj({"op": "get", "key": key})
        reply = fsock.recv_obj()
        if not reply.get("ok"):
            raise RMIError(reply.get("error", "fetch failed"))
        return _recv_stream(fsock.raw)


def push_data(host: str, port: int, key: str, data: bytes) -> None:
    """Upload one blob to a :class:`DataChannelServer`."""
    with FrameSocket(socket.create_connection((host, port))) as fsock:
        fsock.send_obj({"op": "put", "key": key})
        reply = fsock.recv_obj()
        if not reply.get("ok"):
            raise RMIError(reply.get("error", "push refused"))
        _send_stream(fsock.raw, data)
        reply = fsock.recv_obj()
        if not reply.get("ok") or reply.get("size") != len(data):
            raise RMIError("push not acknowledged")
