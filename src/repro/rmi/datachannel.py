"""Bulk data transfer over plain sockets.

The paper: "Data files, which may be large, are transmitted using
ordinary sockets, which is more efficient than RMI."  The RMI call path
must buffer the whole payload to pickle it into one frame; this channel
instead streams fixed-size chunks straight from/to a byte buffer, so
large transfers cost O(chunk) memory and skip the serialization
envelope.

Integrity: the header carries a 16-byte blake2b digest of the payload
(computed by the *sender* before any bytes touch the wire) and the
stream ends with a fast adler32 trailer.  Corrupted-on-the-wire data
therefore fails loudly at the receiver with a
:class:`~repro.rmi.errors.ChecksumError` instead of poisoning a
DataManager — and, because the digest covers what the sender actually
computed, a wire fault is distinguishable from a byzantine donor (which
signs its lie correctly) in the server's reputation ledger.

Protocol (client → server request, then one transfer either direction)::

    request  = frame{"op": "get"|"put", "key": str, ["size": int]}
    transfer = 8-byte big-endian size, 16-byte blake2b digest,
               raw bytes, 4-byte adler32
    reply    = frame{"ok": bool, ["error": str]}
"""

from __future__ import annotations

import hashlib
import socket
import struct
import threading
import zlib

from repro.obs.meters import BYTES_BUCKETS, MeterRegistry
from repro.rmi.errors import ChecksumError, ProtocolError, RMIError
from repro.rmi.transport import FrameSocket, TransportServer, _recv_exact

CHUNK_SIZE = 1 << 16
DIGEST_SIZE = 16
_SIZE = struct.Struct(">Q")
_SUM = struct.Struct(">I")


def _payload_digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


def _send_stream(sock: socket.socket, data: bytes, chaos=None) -> None:
    """Stream *data* with its integrity digest.

    *chaos* (a :class:`~repro.cluster.sim.chaos.WireChaos`) damages
    chunks **after** the digest is computed — simulating corruption in
    transit, which the receiver must catch.
    """
    sock.sendall(_SIZE.pack(len(data)))
    sock.sendall(_payload_digest(data))
    checksum = zlib.adler32(b"")
    view = memoryview(data)
    for start in range(0, len(view), CHUNK_SIZE):
        chunk = bytes(view[start : start + CHUNK_SIZE])
        if chaos is not None:
            chunk = chaos.mangle(chunk)
        checksum = zlib.adler32(chunk, checksum)
        sock.sendall(chunk)
    sock.sendall(_SUM.pack(checksum & 0xFFFFFFFF))


def _recv_stream(sock: socket.socket) -> bytes:
    (size,) = _SIZE.unpack(_recv_exact(sock, _SIZE.size))
    expected_digest = _recv_exact(sock, DIGEST_SIZE)
    checksum = zlib.adler32(b"")
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, CHUNK_SIZE))
        if not chunk:
            raise ProtocolError(f"stream truncated with {remaining} bytes left")
        checksum = zlib.adler32(chunk, checksum)
        chunks.append(chunk)
        remaining -= len(chunk)
    (expected,) = _SUM.unpack(_recv_exact(sock, _SUM.size))
    data = b"".join(chunks)
    if (checksum & 0xFFFFFFFF) != expected or _payload_digest(data) != (
        expected_digest
    ):
        raise ChecksumError("checksum mismatch on bulk transfer")
    return data


class DataChannelServer:
    """Serves named byte blobs (problem data files) over raw sockets.

    The server in the paper holds each problem's data files and donors
    fetch the slice they need; results flow back the same way.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        meters: MeterRegistry | None = None,
    ):
        self._blobs: dict[str, bytes] = {}
        self._refs: dict[str, int] = {}
        self._lock = threading.Lock()
        self.meters = meters
        #: Test hook: a WireChaos here damages outgoing get-streams
        #: after digest computation (corruption in transit).
        self.chaos = None
        self._transport = TransportServer(self._serve, host=host, port=port)
        self.host = self._transport.host
        self.port = self._transport.port

    def _meter_transfer(self, direction: str, nbytes: int) -> None:
        if self.meters is None:
            return
        self.meters.counter(f"data.transfers.{direction}").inc()
        self.meters.counter(f"data.bytes.{direction}").inc(nbytes)
        self.meters.histogram("data.transfer.bytes", BYTES_BUCKETS).observe(nbytes)

    def store(self, key: str, data: bytes) -> None:
        """Make *data* fetchable under *key*."""
        with self._lock:
            self._blobs[key] = data

    def get(self, key: str) -> bytes:
        with self._lock:
            return self._blobs[key]

    def delete(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)
            self._refs.pop(key, None)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)

    # -- ref-counted blob lifecycle ------------------------------------
    #
    # Shared payload blobs are published once per problem that uses
    # them and deleted when the last using problem finishes.  Content
    # addressing means two concurrent searches over the same database
    # share one stored copy; the refcount keeps it alive until both
    # are done.

    def retain(self, key: str, data: bytes | None = None) -> None:
        """Publish (or re-reference) *key*, bumping its refcount.

        *data* is stored on first retain; later retains may omit it.
        """
        with self._lock:
            count = self._refs.get(key, 0)
            if count == 0 and key not in self._blobs:
                if data is None:
                    raise KeyError(f"retain of unpublished blob {key!r} without data")
                self._blobs[key] = data
            elif data is not None and key not in self._blobs:
                self._blobs[key] = data
            self._refs[key] = count + 1

    def release(self, key: str) -> None:
        """Drop one reference; the blob is deleted on the last release.

        A release of an untracked key is a no-op (a restarted server
        may release blobs published by its predecessor).
        """
        with self._lock:
            count = self._refs.get(key)
            if count is None:
                return
            if count <= 1:
                self._refs.pop(key, None)
                self._blobs.pop(key, None)
            else:
                self._refs[key] = count - 1

    def refcount(self, key: str) -> int:
        with self._lock:
            return self._refs.get(key, 0)

    def _serve(self, fsock: FrameSocket) -> None:
        while True:
            request = fsock.recv_obj()
            op = request.get("op")
            key = request.get("key", "")
            if op == "get":
                with self._lock:
                    data = self._blobs.get(key)
                if data is None:
                    fsock.send_obj({"ok": False, "error": f"no blob {key!r}"})
                    continue
                fsock.send_obj({"ok": True, "size": len(data)})
                _send_stream(fsock.raw, data, chaos=self.chaos)
                self._meter_transfer("out", len(data))
            elif op == "put":
                fsock.send_obj({"ok": True})
                try:
                    data = _recv_stream(fsock.raw)
                except ChecksumError as exc:
                    # The stream was fully consumed before verification,
                    # so the connection is still usable: refuse the blob
                    # loudly and keep serving.
                    if self.meters is not None:
                        self.meters.counter("data.checksum.failures").inc()
                    fsock.send_obj({"ok": False, "error": f"checksum: {exc}"})
                    continue
                with self._lock:
                    self._blobs[key] = data
                fsock.send_obj({"ok": True, "size": len(data)})
                self._meter_transfer("in", len(data))
            else:
                fsock.send_obj({"ok": False, "error": f"unknown op {op!r}"})

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "DataChannelServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def fetch_data(host: str, port: int, key: str) -> bytes:
    """Download one blob from a :class:`DataChannelServer`.

    Raises :class:`~repro.rmi.errors.ChecksumError` when the payload
    was damaged in transit.
    """
    with FrameSocket(socket.create_connection((host, port))) as fsock:
        fsock.send_obj({"op": "get", "key": key})
        reply = fsock.recv_obj()
        if not reply.get("ok"):
            raise RMIError(reply.get("error", "fetch failed"))
        return _recv_stream(fsock.raw)


def push_data(host: str, port: int, key: str, data: bytes, chaos=None) -> None:
    """Upload one blob to a :class:`DataChannelServer`.

    *chaos* (tests only) injects wire damage after digest computation;
    the server then refuses the blob and this raises
    :class:`~repro.rmi.errors.ChecksumError`.
    """
    with FrameSocket(socket.create_connection((host, port))) as fsock:
        fsock.send_obj({"op": "put", "key": key})
        reply = fsock.recv_obj()
        if not reply.get("ok"):
            raise RMIError(reply.get("error", "push refused"))
        _send_stream(fsock.raw, data, chaos=chaos)
        reply = fsock.recv_obj()
        if not reply.get("ok"):
            error = reply.get("error", "push refused")
            if "checksum" in str(error):
                raise ChecksumError(error)
            raise RMIError(error)
        if reply.get("size") != len(data):
            raise RMIError("push not acknowledged")
