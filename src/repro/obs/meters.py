"""Streaming metrics: counters, gauges and fixed-bucket histograms.

The post-hoc accounting in :mod:`repro.core.metrics` answers "what
happened?" after a run finishes; these meters answer "what is happening
*now*?".  They are updated inline as the farm runs and
:meth:`MeterRegistry.snapshot` works mid-flight, so an operator (or the
status CLI) can watch a multi-day job without waiting for the event log
to close.

Design rules:

* No clocks.  Meters record magnitudes, never wall-time; producers that
  want durations measure them with whatever time base they run under
  (wall clock live, virtual time in the simulator) and feed the number
  in.  This keeps live and simulated runs emitting identical telemetry.
* Thread-safe.  The live cluster updates meters from RMI connection
  threads concurrently with snapshot readers.
* Reconcilable.  Producers update counters at the same program points
  that record events, so end-of-run totals must equal the event-log
  derived :func:`repro.core.metrics.run_metrics` — a property the test
  suite enforces.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

#: Bucket upper bounds (seconds) for unit/call latency histograms —
#: log-spaced from 1 ms to ~4.5 hours, wide enough for both RMI calls
#: and multi-minute work units.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0, 1800.0, 16200.0,
)

#: Bucket upper bounds (bytes) for transfer-size histograms.
BYTES_BUCKETS: tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
    8388608.0, 67108864.0,
)

#: Bucket upper bounds (items) for unit-size histograms.
ITEMS_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (donors registered, problems running)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observed magnitudes.

    ``bounds`` are inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last edge.  All
    derived statistics are defined (as 0.0) for an empty histogram —
    a farm that has not completed a unit yet must still snapshot
    cleanly.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Iterable[float]):
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        if any(b2 <= b1 for b1, b2 in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} bucket edges must strictly increase")
        self.name = name
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            if self._count == 0:
                self._min = self._max = value
            else:
                self._min = min(self._min, value)
                self._max = max(self._max, value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0 for an empty histogram).

        Returns the upper edge of the bucket holding the q-th observation
        (clamped to the observed max for the overflow bucket).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank and c:
                    if i < len(self.bounds):
                        return min(self.bounds[i], self._max)
                    return self._max
            return self._max

    def summary(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        mean = total / count if count else 0.0
        return {
            "bounds": list(self.bounds),
            "counts": counts,
            "count": count,
            "sum": total,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "mean": mean,
        }


class MeterRegistry:
    """Named meters, created on first use.

    A whole deployment (server state machine, RMI layer, data channel,
    cluster driver) shares one registry so the status CLI reads a single
    coherent snapshot.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            meter = self._counters.get(name)
            if meter is None:
                meter = self._counters[name] = Counter(name)
            return meter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            meter = self._gauges.get(name)
            if meter is None:
                meter = self._gauges[name] = Gauge(name)
            return meter

    def histogram(self, name: str, bounds: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        with self._lock:
            meter = self._histograms.get(name)
            if meter is None:
                meter = self._histograms[name] = Histogram(name, bounds)
            return meter

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time, JSON-able view of every meter.

        Safe to call mid-run from any thread; each meter is read under
        its own lock, so the snapshot is per-meter consistent.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.summary() for h in histograms},
        }
