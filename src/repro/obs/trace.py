"""Per-call tracing: span trees under an injected clock.

A :class:`Span` is one timed operation; spans nest through parent ids,
so a unit's issue→compute→combine round trip renders as a small tree
and an RMI call shows up under whichever operation triggered it.

Consistent with the server's ``now``-passing design, the tracer itself
has **no clock**: every :meth:`Tracer.start`/:meth:`Tracer.finish`
takes the current time explicitly, so the same code traces wall-clock
seconds in the live cluster and virtual seconds in the simulator.  The
:meth:`Tracer.timed` context manager is the convenience wrapper for
call sites that do own a clock (the RMI dispatch loop).

Memory is bounded: finished spans live in a ring buffer of
``max_spans``; a multi-day run keeps the most recent window rather than
growing without limit.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(slots=True)
class Span:
    """One traced operation.

    ``end`` is ``None`` while the span is open; ``status`` is ``"ok"``
    unless the finisher says otherwise (``"failed"``, ``"requeued"``,
    ``"expired"``...).
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None


class Tracer:
    """Records span trees; clock-free and thread-safe.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity for finished spans.  Open spans are always
        retained (they are bounded by in-flight work).
    """

    def __init__(self, max_spans: int = 10_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self._ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def start(
        self,
        name: str,
        now: float,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at time *now* (optionally under *parent*)."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start=now,
            attrs=dict(attrs),
        )
        with self._lock:
            self._open[span.span_id] = span
        return span

    def finish(
        self, span: Span, now: float, status: str = "ok", **attrs: Any
    ) -> Span:
        """Close *span* at time *now*; later finishes of the same span are ignored."""
        with self._lock:
            live = self._open.pop(span.span_id, None)
            if live is None:
                return span  # already finished (e.g. late duplicate result)
            live.end = now
            live.status = status
            live.attrs.update(attrs)
            self._finished.append(live)
            return live

    def event(self, name: str, now: float, parent: "Span | int | None" = None, **attrs: Any) -> Span:
        """A zero-duration span: a point annotation in the tree."""
        span = self.start(name, now, parent=parent, **attrs)
        return self.finish(span, now)

    @contextmanager
    def timed(
        self,
        name: str,
        clock: Callable[[], float],
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager for callers that own a clock (the live path)."""
        span = self.start(name, clock(), parent=parent, **attrs)
        try:
            yield span
        except BaseException:
            self.finish(span, clock(), status="failed")
            raise
        # Preserve a status the caller set on the span while it was open.
        self.finish(span, clock(), status=span.status)

    # -- queries ---------------------------------------------------------

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._open)

    @property
    def finished_count(self) -> int:
        with self._lock:
            return len(self._finished)

    def open_spans(self) -> list[Span]:
        with self._lock:
            return list(self._open.values())

    def finished_spans(self, name: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._finished)
        if name is None:
            return spans
        return [s for s in spans if s.name == name]

    def children(self, span: Span | int) -> list[Span]:
        parent_id = span.span_id if isinstance(span, Span) else span
        with self._lock:
            spans = list(self._finished) + list(self._open.values())
        return sorted(
            (s for s in spans if s.parent_id == parent_id),
            key=lambda s: (s.start, s.span_id),
        )

    def render_tree(self, root: Span, indent: str = "") -> str:
        """ASCII rendering of *root* and its recorded descendants."""
        state = f"{root.duration:.3f}s" if root.finished else "open"
        attrs = " ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
        line = f"{indent}{root.name} [{root.status}, {state}]"
        if attrs:
            line += f" {attrs}"
        lines = [line]
        for child in self.children(root):
            lines.append(self.render_tree(child, indent + "  "))
        return "\n".join(lines)
