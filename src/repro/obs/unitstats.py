"""Donor-side per-unit stat collection.

The streaming meters (:mod:`repro.obs.meters`) live in the *server's*
registry, but some magnitudes are only known inside the donor's
``Algorithm.compute`` — e.g. how many DP cells the batched alignment
engine actually filled versus how many were pure padding.  Donors
cannot reach the server registry directly (they may be another process
or another machine), so compute-side code reports through a thread-
local sink instead:

* the executing layer (:class:`~repro.core.client.DonorClient`, or the
  simulator's execute path) opens a :func:`collect` context around
  ``compute`` and attaches whatever was recorded to
  ``WorkResult.extra["meters"]``;
* the server folds those increments into its own counters when the
  result is accepted — exactly once, because duplicate and stale
  results are dropped before folding.

Outside a :func:`collect` context, :func:`record` is a no-op, so
library code can report unconditionally (a bare ``compute`` call in a
unit test neither crashes nor leaks state).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_local = threading.local()


def record(name: str, amount: float = 1.0) -> None:
    """Accumulate *amount* under *name* in the active collection, if any."""
    sink = getattr(_local, "sink", None)
    if sink is not None:
        sink[name] = sink.get(name, 0.0) + float(amount)


@contextmanager
def collect() -> Iterator[dict[str, float]]:
    """Collect :func:`record` calls made by this thread into a dict.

    Nests correctly: an inner collection shadows the outer one for its
    duration (the inner dict gets the inner increments).
    """
    previous = getattr(_local, "sink", None)
    sink: dict[str, float] = {}
    _local.sink = sink
    try:
        yield sink
    finally:
        _local.sink = previous
