"""Live observability: streaming meters + span tracing.

The event log (:mod:`repro.util.events`) is the system's flight
recorder — complete, but only analysed after landing.  This package is
the cockpit instrument panel: counters/gauges/histograms updated while
the farm runs (:mod:`repro.obs.meters`) and span trees for individual
operations (:mod:`repro.obs.trace`).  One :class:`Observability` bundle
is threaded through the server, the RMI layer, the data channel and
both cluster drivers, so a live deployment and a simulated run emit
identical telemetry and ``repro-status`` can render either.

End-of-run invariant (enforced by tests): streaming counter totals
reconcile exactly with :func:`repro.core.metrics.run_metrics` computed
from the event log.
"""

from __future__ import annotations

from repro.obs.meters import (
    BYTES_BUCKETS,
    ITEMS_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
)
from repro.obs.trace import Span, Tracer
from repro.obs import unitstats


class Observability:
    """One registry + one tracer, shared across a deployment's layers."""

    def __init__(
        self,
        meters: MeterRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.meters = meters or MeterRegistry()
        self.tracer = tracer or Tracer()


__all__ = [
    "BYTES_BUCKETS",
    "ITEMS_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MeterRegistry",
    "Observability",
    "Span",
    "Tracer",
    "unitstats",
]
