"""Small statistics helpers used by metrics and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class RunningStat:
    """Online mean/variance (Welford) without storing samples."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two independent accumulators (parallel Welford)."""
        merged = RunningStat()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other.mean - self.mean
        merged.count = n
        merged._mean = self.mean + delta * other.count / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged


def mean_confidence(samples: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval."""
    n = len(samples)
    if n == 0:
        return 0.0, 0.0
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    half = z * math.sqrt(var / n)
    return mean, half


@dataclass(frozen=True, slots=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    processors: int
    runtime: float
    speedup: float
    efficiency: float


def speedup_curve(
    processors: Iterable[int], runtimes: Iterable[float]
) -> list[SpeedupPoint]:
    """Build a speedup curve relative to the smallest processor count.

    The baseline is the runtime measured at the *lowest* processor count
    scaled to one processor (``T1 = T_pmin * pmin``); when the sweep
    includes ``p=1`` this is exactly the classical ``T1 / Tp``.
    """
    pairs = sorted(zip(processors, runtimes))
    if not pairs:
        return []
    p0, t0 = pairs[0]
    if p0 <= 0:
        raise ValueError("processor counts must be positive")
    t1 = t0 * p0
    curve = []
    for p, t in pairs:
        s = t1 / t if t > 0 else math.inf
        curve.append(SpeedupPoint(p, t, s, s / p))
    return curve
