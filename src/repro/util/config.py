"""Plain ``key = value`` configuration files.

Both applications in the paper are driven by "a straightforward
configuration file" that the user edits to tailor a computation.  This
module implements that file format: one ``key = value`` pair per line,
``#`` comments, blank lines ignored, values are bare strings.  Typed
accessors perform conversion and validation at the point of use so a bad
file fails with a message naming the offending key.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, Mapping


class ConfigError(ValueError):
    """A configuration file is malformed or a value fails validation."""


_BOOL_TRUE = frozenset({"1", "true", "yes", "on"})
_BOOL_FALSE = frozenset({"0", "false", "no", "off"})


class ConfigFile(Mapping[str, str]):
    """An immutable mapping parsed from ``key = value`` text.

    Parameters
    ----------
    pairs:
        Already-parsed key/value pairs.  Use :meth:`parse`,
        :meth:`from_path` or :meth:`from_text` to build one from file
        content.
    source:
        Human-readable origin (file name) used in error messages.
    """

    def __init__(self, pairs: Mapping[str, str], source: str = "<config>"):
        self._pairs = dict(pairs)
        self._source = source

    # -- construction ---------------------------------------------------

    @classmethod
    def from_text(cls, text: str, source: str = "<config>") -> "ConfigFile":
        """Parse configuration text into a :class:`ConfigFile`."""
        pairs: dict[str, str] = {}
        for lineno, raw in enumerate(io.StringIO(text), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ConfigError(
                    f"{source}:{lineno}: expected 'key = value', got {raw.strip()!r}"
                )
            key, value = line.split("=", 1)
            key = key.strip()
            value = value.strip()
            if not key:
                raise ConfigError(f"{source}:{lineno}: empty key")
            if key in pairs:
                raise ConfigError(f"{source}:{lineno}: duplicate key {key!r}")
            pairs[key] = value
        return cls(pairs, source)

    @classmethod
    def from_path(cls, path: str | Path) -> "ConfigFile":
        """Read and parse a configuration file from disk."""
        path = Path(path)
        return cls.from_text(path.read_text(), source=str(path))

    # -- Mapping interface ----------------------------------------------

    def __getitem__(self, key: str) -> str:
        return self._pairs[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConfigFile({self._pairs!r}, source={self._source!r})"

    # -- typed accessors --------------------------------------------------

    def _raw(self, key: str, default: object) -> str | None:
        if key in self._pairs:
            return self._pairs[key]
        if default is _MISSING:
            raise ConfigError(f"{self._source}: missing required key {key!r}")
        return None

    def get_str(self, key: str, default: str | object = None) -> str:
        raw = self._raw(key, default)
        return raw if raw is not None else default  # type: ignore[return-value]

    def get_int(self, key: str, default: int | object = None) -> int:
        raw = self._raw(key, default)
        if raw is None:
            return default  # type: ignore[return-value]
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"{self._source}: key {key!r} expects an integer, got {raw!r}"
            ) from exc

    def get_float(self, key: str, default: float | object = None) -> float:
        raw = self._raw(key, default)
        if raw is None:
            return default  # type: ignore[return-value]
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(
                f"{self._source}: key {key!r} expects a number, got {raw!r}"
            ) from exc

    def get_bool(self, key: str, default: bool | object = None) -> bool:
        raw = self._raw(key, default)
        if raw is None:
            return default  # type: ignore[return-value]
        low = raw.lower()
        if low in _BOOL_TRUE:
            return True
        if low in _BOOL_FALSE:
            return False
        raise ConfigError(
            f"{self._source}: key {key!r} expects a boolean, got {raw!r}"
        )

    def get_choice(
        self, key: str, choices: tuple[str, ...], default: str | object = None
    ) -> str:
        raw = self._raw(key, default)
        if raw is None:
            return default  # type: ignore[return-value]
        if raw not in choices:
            raise ConfigError(
                f"{self._source}: key {key!r} must be one of {choices}, got {raw!r}"
            )
        return raw

    def require(self, *keys: str) -> None:
        """Raise :class:`ConfigError` unless every *key* is present."""
        missing = [k for k in keys if k not in self._pairs]
        if missing:
            raise ConfigError(
                f"{self._source}: missing required keys: {', '.join(missing)}"
            )

    def to_text(self) -> str:
        """Render back to ``key = value`` text (stable key order)."""
        return "".join(f"{k} = {v}\n" for k, v in sorted(self._pairs.items()))


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


def required() -> object:
    """Sentinel default marking a key as mandatory in typed accessors.

    Example
    -------
    >>> cfg = ConfigFile.from_text("threads = 4")
    >>> cfg.get_int("threads", required())
    4
    """
    return _MISSING
