"""Structured event log.

Both the discrete-event simulator and the live server record what
happened as a stream of timestamped events.  Benchmarks and the metrics
module post-process this stream (utilisation, makespan, per-donor
accounting) instead of each component keeping ad-hoc counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence.

    Attributes
    ----------
    time:
        Seconds (wall-clock or simulated, depending on the producer).
    kind:
        Short machine-readable tag, e.g. ``"unit.issued"``.
    data:
        Free-form payload; keys are event-kind specific.
    """

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with query helpers."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, time: float, kind: str, **data: Any) -> Event:
        """Append an event and return it."""
        if self._events and time < self._events[-1].time - 1e-9:
            # Events must be recorded in causal order; tolerate float fuzz.
            raise ValueError(
                f"event at t={time} recorded after t={self._events[-1].time}"
            )
        event = Event(time, kind, data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, *kinds: str) -> list[Event]:
        """All events whose kind is one of *kinds*, in time order."""
        wanted = frozenset(kinds)
        return [e for e in self._events if e.kind in wanted]

    def where(self, predicate: Callable[[Event], bool]) -> list[Event]:
        return [e for e in self._events if predicate(e)]

    def first(self, kind: str) -> Event | None:
        for e in self._events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Event | None:
        for e in reversed(self._events):
            if e.kind == kind:
                return e
        return None

    def span(self) -> float:
        """Time between first and last event (0 when fewer than two)."""
        if len(self._events) < 2:
            return 0.0
        return self._events[-1].time - self._events[0].time

    def extend(self, events: Iterable[Event]) -> None:
        for e in events:
            self.record(e.time, e.kind, **e.data)
