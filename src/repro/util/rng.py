"""Deterministic random-number streams.

Every stochastic component (workload generators, machine availability
traces, stepwise-insertion orders) takes an explicit
:class:`numpy.random.Generator`.  These helpers derive independent child
streams from a parent seed so experiments are reproducible end to end
while components never share a stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 32-bit seed deterministically from arbitrary labels.

    Unlike ``hash()``, the result is stable across processes and Python
    versions, so e.g. ``stable_seed("machine", 17)`` names the same
    stream in a worker process as in the driver.
    """
    text = "\x1f".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def spawn_rng(seed_or_rng: int | np.random.Generator, *parts: object) -> np.random.Generator:
    """Create an independent child generator named by *parts*.

    Parameters
    ----------
    seed_or_rng:
        Either a root integer seed, or a Generator whose own entropy is
        folded into the child seed.
    parts:
        Labels identifying the child stream (component name, index, ...).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        base = int(seed_or_rng.integers(0, 2**32))
    else:
        base = int(seed_or_rng)
    return np.random.default_rng(stable_seed(base, *parts))
