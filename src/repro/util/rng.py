"""Deterministic random-number streams.

Every stochastic component (workload generators, machine availability
traces, stepwise-insertion orders) takes an explicit
:class:`numpy.random.Generator`.  These helpers derive independent child
streams from a parent seed so experiments are reproducible end to end
while components never share a stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 32-bit seed deterministically from arbitrary labels.

    Unlike ``hash()``, the result is stable across processes and Python
    versions, so e.g. ``stable_seed("machine", 17)`` names the same
    stream in a worker process as in the driver.
    """
    text = "\x1f".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


_M64 = (1 << 64) - 1


def stable_coin(*parts: object) -> float:
    """A deterministic uniform [0, 1) coin named by arbitrary labels.

    CRC32 (:func:`stable_seed`) is linear, so near-identical labels —
    ``"pc-000"`` vs ``"pc-001"`` — produce *correlated* values; used
    raw as a coin it badly skews per-entity Bernoulli draws.  The
    finalizer here (splitmix64) decorrelates them while staying pure
    integer math: same labels, same coin, any process.
    """
    x = stable_seed(*parts)
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) / 2.0**64


def spawn_rng(seed_or_rng: int | np.random.Generator, *parts: object) -> np.random.Generator:
    """Create an independent child generator named by *parts*.

    Parameters
    ----------
    seed_or_rng:
        Either a root integer seed, or a Generator whose own entropy is
        folded into the child seed.
    parts:
        Labels identifying the child stream (component name, index, ...).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        base = int(seed_or_rng.integers(0, 2**32))
    else:
        base = int(seed_or_rng)
    return np.random.default_rng(stable_seed(base, *parts))
