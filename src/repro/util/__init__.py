"""Shared utilities: configuration files, event logging, RNG streams,
summary statistics and byte-framing helpers."""

from repro.util.config import ConfigError, ConfigFile
from repro.util.events import Event, EventLog
from repro.util.rng import spawn_rng, stable_seed
from repro.util.stats import RunningStat, mean_confidence, speedup_curve

__all__ = [
    "ConfigError",
    "ConfigFile",
    "Event",
    "EventLog",
    "RunningStat",
    "mean_confidence",
    "spawn_rng",
    "speedup_curve",
    "stable_seed",
]
