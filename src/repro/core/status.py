"""Operator-facing status reports.

The original system ran unattended for years; the first question an
operator asks a long-running farm is "what is it doing right now?".
This module renders a point-in-time snapshot of a
:class:`~repro.core.server.TaskFarmServer` — problems, progress,
donors, throughput — as plain text (servable over RMI, printable from
a cron job).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.server import ProblemStatus, TaskFarmServer


@dataclass(frozen=True, slots=True)
class ProblemStatusLine:
    problem_id: int
    name: str
    status: str
    progress: float
    units_completed: int
    units_in_flight: int
    units_requeued: int


@dataclass(frozen=True, slots=True)
class DonorStatusLine:
    donor_id: str
    units_completed: int
    items_completed: int
    busy_seconds: float
    active: bool
    idle_seconds: float


@dataclass(frozen=True, slots=True)
class FarmStatus:
    """A point-in-time snapshot of the whole farm."""

    time: float
    problems: list[ProblemStatusLine]
    donors: list[DonorStatusLine]

    @property
    def active_donors(self) -> int:
        return sum(1 for d in self.donors if d.active)

    @property
    def running_problems(self) -> int:
        return sum(1 for p in self.problems if p.status == "running")

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"task farm status @ t={self.time:.1f}: "
            f"{self.running_problems} running problem(s), "
            f"{len(self.donors)} donor(s) ({self.active_donors} busy)",
            "",
            f"{'id':>4} {'problem':<18} {'status':<9} {'progress':>9} "
            f"{'done':>6} {'flight':>7} {'requeued':>9}",
        ]
        for p in self.problems:
            lines.append(
                f"{p.problem_id:>4} {p.name:<18.18} {p.status:<9} "
                f"{p.progress:>8.1%} {p.units_completed:>6} "
                f"{p.units_in_flight:>7} {p.units_requeued:>9}"
            )
        lines.append("")
        lines.append(
            f"{'donor':<18} {'units':>6} {'items':>8} {'busy(s)':>9} {'state':<6}"
        )
        for d in self.donors:
            state = "busy" if d.active else f"idle {d.idle_seconds:.0f}s"
            lines.append(
                f"{d.donor_id:<18.18} {d.units_completed:>6} "
                f"{d.items_completed:>8} {d.busy_seconds:>9.1f} {state:<6}"
            )
        return "\n".join(lines)


def snapshot(server: TaskFarmServer, now: float) -> FarmStatus:
    """Build a :class:`FarmStatus` from a server (read-only)."""
    problems = []
    for pid, state in sorted(server._problems.items()):
        in_flight = len(server.leases.outstanding(pid))
        requeued = len(state.requeue)
        problems.append(
            ProblemStatusLine(
                problem_id=pid,
                name=state.problem.name,
                status=state.status.value,
                progress=(
                    1.0
                    if state.status is ProblemStatus.COMPLETE
                    else server.progress(pid)
                ),
                units_completed=state.units_completed,
                units_in_flight=in_flight,
                units_requeued=requeued,
            )
        )
    donors = []
    for donor_id in server.donor_ids():
        donor = server.donor_state(donor_id)
        donors.append(
            DonorStatusLine(
                donor_id=donor_id,
                units_completed=donor.units_completed,
                items_completed=donor.items_completed,
                busy_seconds=donor.busy_seconds,
                active=donor.active_unit is not None,
                idle_seconds=max(0.0, now - donor.last_seen),
            )
        )
    return FarmStatus(time=now, problems=problems, donors=donors)


def render_status(server: TaskFarmServer, now: float) -> str:
    """One-call convenience: snapshot and render."""
    return snapshot(server, now).render()
