"""Operator-facing status reports.

The original system ran unattended for years; the first question an
operator asks a long-running farm is "what is it doing right now?".
This module renders a point-in-time snapshot of a
:class:`~repro.core.server.TaskFarmServer` — problems, progress,
donors, throughput — as plain text (servable over RMI, printable from
a cron job).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.server import ProblemStatus, TaskFarmServer


@dataclass(frozen=True, slots=True)
class ProblemStatusLine:
    problem_id: int
    name: str
    status: str
    progress: float
    units_completed: int
    units_in_flight: int
    units_requeued: int


@dataclass(frozen=True, slots=True)
class DonorStatusLine:
    donor_id: str
    units_completed: int
    items_completed: int
    busy_seconds: float
    active: bool
    idle_seconds: float
    items_per_second: float = 0.0
    utilization: float = 0.0
    slots: int = 1


@dataclass(frozen=True, slots=True)
class FarmStatus:
    """A point-in-time snapshot of the whole farm."""

    time: float
    problems: list[ProblemStatusLine]
    donors: list[DonorStatusLine]

    @property
    def active_donors(self) -> int:
        return sum(1 for d in self.donors if d.active)

    @property
    def running_problems(self) -> int:
        return sum(1 for p in self.problems if p.status == "running")

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"task farm status @ t={self.time:.1f}: "
            f"{self.running_problems} running problem(s), "
            f"{len(self.donors)} donor(s) ({self.active_donors} busy)",
            "",
            f"{'id':>4} {'problem':<18} {'status':<9} {'progress':>9} "
            f"{'done':>6} {'flight':>7} {'requeued':>9}",
        ]
        for p in self.problems:
            lines.append(
                f"{p.problem_id:>4} {p.name:<18.18} {p.status:<9} "
                f"{p.progress:>8.1%} {p.units_completed:>6} "
                f"{p.units_in_flight:>7} {p.units_requeued:>9}"
            )
        lines.append("")
        lines.append(
            f"{'donor':<18} {'slots':>5} {'units':>6} {'items':>8} "
            f"{'busy(s)':>9} {'items/s':>8} {'util':>6} {'state':<6}"
        )
        for d in self.donors:
            state = "busy" if d.active else f"idle {d.idle_seconds:.0f}s"
            rate = f"{d.items_per_second:.2f}" if d.items_per_second else "-"
            lines.append(
                f"{d.donor_id:<18.18} {d.slots:>5} {d.units_completed:>6} "
                f"{d.items_completed:>8} {d.busy_seconds:>9.1f} "
                f"{rate:>8} {d.utilization:>6.0%} {state:<6}"
            )
        return "\n".join(lines)


def snapshot(server: TaskFarmServer, now: float) -> FarmStatus:
    """Build a :class:`FarmStatus` from a server (read-only)."""
    problems = []
    for pid, state in sorted(server._problems.items()):
        in_flight = len(server.leases.outstanding(pid))
        requeued = len(state.requeue)
        problems.append(
            ProblemStatusLine(
                problem_id=pid,
                name=state.problem.name,
                status=state.status.value,
                progress=(
                    1.0
                    if state.status is ProblemStatus.COMPLETE
                    else server.progress(pid)
                ),
                units_completed=state.units_completed,
                units_in_flight=in_flight,
                units_requeued=requeued,
            )
        )
    donors = []
    for donor_id in server.donor_ids():
        donor = server.donor_state(donor_id)
        rates = [
            m.items_per_second for m in donor.perf.values() if m.calibrated
        ]
        span = now - donor.registered_at
        if span <= 0:
            utilization = 1.0 if donor.busy_seconds > 0 else 0.0
        else:
            utilization = min(1.0, donor.busy_seconds / span)
        donors.append(
            DonorStatusLine(
                donor_id=donor_id,
                units_completed=donor.units_completed,
                items_completed=donor.items_completed,
                busy_seconds=donor.busy_seconds,
                active=donor.active_unit is not None,
                idle_seconds=max(0.0, now - donor.last_seen),
                items_per_second=sum(rates) / len(rates) if rates else 0.0,
                utilization=utilization,
                slots=donor.slots,
            )
        )
    return FarmStatus(time=now, problems=problems, donors=donors)


def render_status(server: TaskFarmServer, now: float) -> str:
    """One-call convenience: snapshot and render."""
    return snapshot(server, now).render()


def snapshot_dict(server: TaskFarmServer, now: float, gateway=None) -> dict:
    """A JSON-able mid-run snapshot: farm status + streaming meters.

    This is what the status CLI consumes — over RMI from a live
    deployment, or directly from a paused :class:`SimCluster` — and
    what the benchmarks dump alongside their reports.  Pass the
    server's :class:`~repro.core.gateway.JobGateway` (when one runs) to
    include the per-tenant section.
    """
    status = snapshot(server, now)
    reputations = server.reputation.snapshot()
    out: dict = {
        "time": status.time,
        "problems": [
            {
                "problem_id": p.problem_id,
                "name": p.name,
                "status": p.status,
                "progress": p.progress,
                "units_completed": p.units_completed,
                "units_in_flight": p.units_in_flight,
                "units_requeued": p.units_requeued,
            }
            for p in status.problems
        ],
        "donors": [
            {
                "donor_id": d.donor_id,
                "units_completed": d.units_completed,
                "items_completed": d.items_completed,
                "busy_seconds": d.busy_seconds,
                "active": d.active,
                "idle_seconds": d.idle_seconds,
                "items_per_second": d.items_per_second,
                "utilization": d.utilization,
                "slots": d.slots,
            }
            for d in status.donors
        ],
        "meters": server.obs.meters.snapshot(),
        "traces": {
            "open_spans": server.obs.tracer.open_count,
            "finished_spans": server.obs.tracer.finished_count,
        },
    }
    if reputations or server.integrity.active:
        out["integrity"] = {
            "policy": {
                "replication": server.integrity.replication,
                "quorum": server.integrity.quorum,
                "spot_check_rate": server.integrity.spot_check_rate,
            },
            "reputations": reputations,
            "quarantined": server.reputation.quarantined_ids(),
        }
    if gateway is not None:
        out["gateway"] = gateway.snapshot()
    return out
