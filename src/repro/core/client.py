"""The donor client: fetch a unit, compute it, send the result back.

A donor is deliberately thin — all intelligence lives in the server —
so it can run "as a low priority background service" on any machine, as
in the paper's deployment.  The client talks to the server through a
narrow :class:`ServerPort` interface with two interchangeable
implementations:

* :class:`InProcessServerPort` — direct calls into a local
  :class:`~repro.core.server.TaskFarmServer` (tests, threaded clusters).
* an RMI :class:`~repro.rmi.proxy.RemoteProxy` for the object the live
  cluster exports (duck-typed; see :mod:`repro.cluster.local`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue
import random
import threading
import time
from typing import Any, Callable, Protocol

from repro.core.blobs import (
    DEFAULT_CACHE_BYTES,
    BlobCache,
    BlobRef,
    blob_key,
    fetch_and_resolve,
    iter_blob_refs,
)
from repro.core.problem import Algorithm
from repro.core.server import Assignment, TaskFarmServer
from repro.core.workunit import WorkResult
from repro.obs import unitstats


class ServerPort(Protocol):
    """What a donor needs from the server, wherever it lives."""

    def register_donor(self, donor_id: str, slots: int = 1) -> None: ...

    def deregister_donor(self, donor_id: str) -> None: ...

    def request_work(self, donor_id: str) -> Assignment | None: ...

    def submit_result(self, result: WorkResult) -> bool: ...

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str
    ) -> None: ...

    def heartbeat(self, donor_id: str) -> None: ...

    def get_algorithm(self, problem_id: int) -> Algorithm: ...

    def get_shared_blob(self, problem_id: int, key: str) -> bytes: ...

    def all_complete(self) -> bool: ...


class InProcessServerPort:
    """Adapt a :class:`TaskFarmServer` to :class:`ServerPort`.

    Supplies the time argument the state machine requires from a clock
    callable, and (optionally) expires leases on every interaction so a
    single-threaded test never needs a background timer.
    """

    def __init__(
        self,
        server: TaskFarmServer,
        clock: Callable[[], float] = time.monotonic,
        auto_expire: bool = True,
    ):
        self._server = server
        self._clock = clock
        self._auto_expire = auto_expire

    def _now(self) -> float:
        now = self._clock()
        if self._auto_expire:
            self._server.expire_leases(now)
        return now

    def register_donor(self, donor_id: str, slots: int = 1) -> None:
        self._server.register_donor(donor_id, self._now(), slots=slots)

    def deregister_donor(self, donor_id: str) -> None:
        self._server.deregister_donor(donor_id, self._now())

    def request_work(self, donor_id: str) -> Assignment | None:
        return self._server.request_work(donor_id, self._now())

    def submit_result(self, result: WorkResult) -> bool:
        return self._server.submit_result(result, self._now())

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str
    ) -> None:
        self._server.report_failure(problem_id, unit_id, donor_id, error, self._now())

    def heartbeat(self, donor_id: str) -> None:
        self._server.heartbeat(donor_id, self._now())

    def get_algorithm(self, problem_id: int) -> Algorithm:
        return self._server.get_algorithm(problem_id)

    def get_shared_blob(self, problem_id: int, key: str) -> bytes:
        return self._server.get_shared_blob(problem_id, key)

    def all_complete(self) -> bool:
        return self._server.all_complete()


# ---------------------------------------------------------------------------
# worker-pool execution engine
# ---------------------------------------------------------------------------
#
# Everything below the WorkerPool boundary runs in spawn-started child
# processes: a fresh interpreter that imports this module and calls the
# module-level functions by name.  Child-side state is therefore kept in
# module globals (one copy per worker process), seeded once by the pool
# initializer and topped up by per-task "carry" items for anything the
# parent discovers after the pool started (a new problem's algorithm, a
# later stage's shared blob).  Algorithms are content-addressed by the
# digest of their pickled bytes — worker processes outlive any single
# server, and two servers can reuse the same small problem ids.

#: Per-worker caches: pickled-algorithm digest -> Algorithm, and a
#: content-addressed cache of this donor's shared blobs.
_WORKER_ALGOS: dict[str, Algorithm] = {}
_WORKER_BLOBS: BlobCache | None = None
_WORKER_BLOB_BYTES: dict[str, bytes] = {}


def _worker_install(kind: str, key: str, data: bytes) -> None:
    if kind == "algo":
        if key not in _WORKER_ALGOS:
            _WORKER_ALGOS[key] = pickle.loads(data)
    elif kind == "blob":
        _WORKER_BLOB_BYTES.setdefault(key, data)
    else:  # pragma: no cover - parent and worker ship the same build
        raise ValueError(f"unknown pool item kind {kind!r}")


def _worker_watchdog(parent_pid: float) -> None:
    """Exit hard when the parent donor dies.

    A SIGKILLed donor runs no cleanup, and spawn-started pool workers
    are real processes that would outlive it indefinitely.  Each worker
    polls its parent and exits the moment the donor is gone, so a donor
    crash mid-unit leaves no orphans behind.
    """
    while True:
        if os.getppid() != parent_pid:
            os._exit(1)
        time.sleep(0.25)


def _pool_init(seed_items: list[tuple[str, str, bytes]], parent_pid: int) -> None:
    """Per-worker initializer: warm caches once per *process*, not per unit."""
    global _WORKER_BLOBS
    if _WORKER_BLOBS is None:
        _WORKER_BLOBS = BlobCache(DEFAULT_CACHE_BYTES)
    for kind, key, data in seed_items:
        _worker_install(kind, key, data)
    threading.Thread(
        target=_worker_watchdog, args=(parent_pid,), daemon=True
    ).start()


def _missing_blob(ref: BlobRef) -> bytes:
    data = _WORKER_BLOB_BYTES.get(ref.key)
    if data is None:
        raise KeyError(f"blob {ref.key} was never shipped to this worker")
    return data


def _pool_run(
    task: tuple[str, Any, tuple[tuple[str, str, bytes], ...]],
) -> tuple[Any, float, float, dict[str, float], int]:
    """Compute one unit inside a worker process.

    Returns ``(value, elapsed, started_at, unit_meters, output_bytes)``;
    ``started_at`` is ``time.monotonic()`` (system-wide on Linux), which
    lets the parent meter how long the task waited in the pool queue.
    """
    algo_key, payload, carry = task
    for kind, key, data in carry:
        _worker_install(kind, key, data)
    algo = _WORKER_ALGOS[algo_key]
    assert _WORKER_BLOBS is not None
    started = time.monotonic()
    with unitstats.collect() as stats:
        resolved = fetch_and_resolve(payload, _WORKER_BLOBS, _missing_blob)
        value = algo.compute(resolved)
    elapsed = time.monotonic() - started
    try:
        output_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # The pool transport will fail loudly on the same pickle; keep
        # the accounting best-effort so that error is the one reported.
        output_bytes = 0
    return value, elapsed, started, dict(stats), output_bytes


class WorkerPool:
    """A donor-side pool of spawn-started worker processes.

    Thin, deliberately: the pool knows nothing about servers or leases —
    it turns ``(algorithm digest, payload, carry items)`` tasks into
    computed values on ``workers`` parallel cores.  The
    :class:`DonorClient` owns all protocol state and funnels every
    worker result through its existing submit path, so the server's
    exactly-once folding and integrity quorum see a pooled donor as just
    a fast donor.

    ``seed_items`` are installed once per worker process by the
    initializer (algorithm + the first unit's shared blobs); anything
    discovered later rides along with individual tasks.  The spawn start
    method is mandatory: donors embed in arbitrary hosts (threads, RMI
    sockets, numpy state) and a forked child inheriting that mid-flight
    state is exactly the kind of heisenbug this farm cannot debug
    remotely.
    """

    def __init__(
        self,
        workers: int,
        seed_items: list[tuple[str, str, bytes]] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        seed = list(seed_items or [])
        self.workers = workers
        self.seeded_keys = frozenset((kind, key) for kind, key, _data in seed)
        self._pool = multiprocessing.get_context("spawn").Pool(
            processes=workers,
            initializer=_pool_init,
            initargs=(seed, os.getpid()),
        )
        self._closed = False

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (diagnostics and tests)."""
        return [p.pid for p in self._pool._pool if p.pid is not None]

    def submit(
        self,
        task: tuple[str, Any, tuple[tuple[str, str, bytes], ...]],
        callback: Callable[[Any], None],
        error_callback: Callable[[BaseException], None],
    ) -> None:
        """Dispatch one task; completion lands in the callbacks.

        ``error_callback`` receives worker exceptions *and* transport
        failures (e.g. a poisoned, unpicklable result value) — the unit
        fails loudly while the worker itself survives for the next task.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        self._pool.apply_async(
            _pool_run,
            (task,),
            callback=callback,
            error_callback=error_callback,
        )

    def shutdown(self) -> None:
        """Stop the workers; idempotent, safe to call from ``finally``."""
        if self._closed:
            return
        self._closed = True
        # terminate(), not close(): outstanding leases are recovered by
        # the server's expiry sweep, so draining the queue at shutdown
        # would only delay exit.
        self._pool.terminate()
        self._pool.join()


class DonorClient:
    """The donor main loop.

    Parameters
    ----------
    donor_id:
        Unique name (hostname + pid in the live cluster).
    port:
        A :class:`ServerPort` implementation.
    idle_sleep:
        Base of the idle backoff: when the server has no work (stage
        barriers in staged computations make this a normal condition,
        not an error) the donor sleeps a full-jitter exponential
        backoff starting from this value — uniform over
        ``[0, min(cap, idle_sleep * 2**attempt)]`` — instead of
        hammering the server at a fixed period.
    idle_sleep_max:
        Cap of the idle backoff.  Defaults to ``heartbeat_interval``
        when one is set (an idle donor then polls at least as often as
        a busy one heartbeats), else ``idle_sleep * 16``.
    prefetch:
        Enable the pipelined runtime: while unit N computes, a
        background thread requests unit N+1 and warms its algorithm and
        shared blobs, so compute never waits on the wire.  Requires a
        thread-safe port (the RMI proxy and the cluster's locked
        in-process port both are) and a server with
        ``PipelineConfig.lease_depth >= 2``.
    workers:
        Parallel compute slots.  With ``workers > 1`` the donor runs a
        :class:`WorkerPool` of spawn-started processes, keeps up to
        ``workers`` leased units computing concurrently, and registers
        with ``slots=workers`` so the server scales its lease depth and
        unit sizing to the donor's real capacity.  The pooled loop
        requests work while units compute, so it subsumes ``prefetch``.
        Requires picklable algorithms/payloads/results (anything that
        can travel RMI already is).
    pool:
        Inject a pre-built :class:`WorkerPool` (worker processes cost
        ~a second each to spawn; tests and embedding hosts can share one
        across donors and runs).  The client then does *not* shut it
        down when ``run()`` returns.  Its worker count overrides
        ``workers``.
    heartbeat_interval:
        When set, a background thread renews the donor's lease every
        this-many seconds while a unit computes — so a unit that takes
        longer than the server's lease timeout (slow donor, big unit)
        is not torn away from a donor that is still making progress.
    cache_bytes:
        Byte budget of the shared-blob cache (LRU, content-addressed).
    blob_fetch:
        Transport for cache misses: ``(problem_id, ref) -> bytes``.
        Defaults to the server port's ``get_shared_blob``; the live
        cluster injects a bulk-data-channel fetch instead.
    clock, sleep, rng:
        Injectable for tests.
    """

    def __init__(
        self,
        donor_id: str,
        port: ServerPort,
        idle_sleep: float = 0.1,
        idle_sleep_max: float | None = None,
        prefetch: bool = False,
        workers: int = 1,
        pool: WorkerPool | None = None,
        heartbeat_interval: float | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        blob_fetch: Callable[[int, BlobRef], bytes] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if idle_sleep_max is not None and idle_sleep_max < idle_sleep:
            raise ValueError("idle_sleep_max must be >= idle_sleep")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.donor_id = donor_id
        self.port = port
        self.idle_sleep = idle_sleep
        self.idle_sleep_max = idle_sleep_max
        self.prefetch = prefetch
        self.workers = pool.workers if pool is not None else workers
        self._pool = pool
        self._pool_owned = False
        self._carry_cache: dict[tuple[str, str], bytes] = {}
        self._pool_mark = 0.0
        self.heartbeat_interval = heartbeat_interval
        self._clock = clock
        self._sleep = sleep
        self._rng = rng or random.Random()
        self._algorithms: dict[int, Algorithm] = {}
        self.blob_cache = BlobCache(cache_bytes)
        self._blob_fetch = blob_fetch
        # One lock covers the blob cache and algorithm cache: the
        # prefetch thread warms unit N+1 while the main thread resolves
        # unit N, and neither cache is internally synchronised.
        self._cache_lock = threading.Lock()
        # Pipeline telemetry accumulated donor-side, folded into the
        # next result's ``extra["meters"]`` so it reaches the server's
        # whitelisted farm.pipeline.* counters.
        self._meters_pending: dict[str, float] = {}
        self.units_done = 0
        self.heartbeats_sent = 0
        self.failures = 0
        self.idle_polls = 0
        self._idle_attempt = 0

    def _fetch_blob(self, problem_id: int, ref: BlobRef) -> bytes:
        if self._blob_fetch is not None:
            return self._blob_fetch(problem_id, ref)
        return self.port.get_shared_blob(problem_id, ref.key)

    def _algorithm(self, problem_id: int) -> Algorithm:
        with self._cache_lock:
            algo = self._algorithms.get(problem_id)
        if algo is None:
            # Shipped once per problem and cached, as in the paper.
            # Fetched outside the lock (it may be a slow RMI call); a
            # rare duplicate fetch from the prefetch thread is benign.
            algo = self.port.get_algorithm(problem_id)
            with self._cache_lock:
                self._algorithms[problem_id] = algo
        return algo

    def execute(self, assignment: Assignment) -> WorkResult:
        """Run the Algorithm on one assignment and package the result."""
        algo = self._algorithm(assignment.problem_id)
        stop_heartbeat = self._start_heartbeat()
        start = self._clock()
        try:
            with unitstats.collect() as stats:
                with self._cache_lock:
                    payload = fetch_and_resolve(
                        assignment.payload,
                        self.blob_cache,
                        lambda ref: self._fetch_blob(assignment.problem_id, ref),
                    )
                value = algo.compute(payload)
        finally:
            stop_heartbeat()
        elapsed = self._clock() - start
        try:
            output_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            output_bytes = 0  # unpicklable values never leave the process anyway
        return WorkResult(
            problem_id=assignment.problem_id,
            unit_id=assignment.unit_id,
            value=value,
            donor_id=self.donor_id,
            compute_seconds=elapsed,
            items=assignment.items,
            output_bytes=output_bytes,
            extra={"meters": stats} if stats else {},
        )

    def _start_heartbeat(self) -> Callable[[], None]:
        """Begin periodic lease renewal; returns a stop function."""
        if self.heartbeat_interval is None:
            return lambda: None
        import threading

        done = threading.Event()

        def beat() -> None:
            while not done.wait(self.heartbeat_interval):
                try:
                    self.port.heartbeat(self.donor_id)
                    self.heartbeats_sent += 1
                except Exception:
                    # A heartbeat is best-effort: a failure means the
                    # lease may expire and the unit be recomputed
                    # elsewhere — safe, just wasteful.
                    return

        thread = threading.Thread(
            target=beat, name=f"heartbeat:{self.donor_id}", daemon=True
        )
        thread.start()

        def stop() -> None:
            done.set()
            thread.join(timeout=1.0)

        return stop

    def _meter(self, name: str, amount: float) -> None:
        self._meters_pending[name] = self._meters_pending.get(name, 0.0) + amount

    def _submit(self, result: WorkResult) -> None:
        """Submit a result, folding pending pipeline meters into it."""
        if self._meters_pending:
            extra = dict(result.extra or {})
            meters = dict(extra.get("meters") or {})
            for name, amount in self._meters_pending.items():
                meters[name] = meters.get(name, 0.0) + amount
            extra["meters"] = meters
            result = dataclasses.replace(result, extra=extra)
            self._meters_pending.clear()
        self.port.submit_result(result)
        self.units_done += 1

    def _idle_wait(self) -> None:
        """Full-jitter exponential backoff while the server has no work.

        A stage barrier (DPRml) idles every donor at once; fixed-period
        polling then hits the server with a synchronised thundering
        herd.  Jittered geometric backoff — the idiom of
        :mod:`repro.rmi.reconnect` — decorrelates and thins the polls,
        capped so a freed barrier is noticed within one heartbeat.
        """
        self.idle_polls += 1
        cap = self.idle_sleep_max
        if cap is None:
            cap = (
                self.heartbeat_interval
                if self.heartbeat_interval is not None
                else self.idle_sleep * 16
            )
        bound = min(cap, self.idle_sleep * (2.0 ** self._idle_attempt))
        self._idle_attempt += 1
        self._sleep(self._rng.uniform(0.0, bound))

    def step(self) -> bool:
        """One fetch→compute→submit cycle; False when the server was idle.

        An Algorithm exception is *reported*, not fatal: the donor tells
        the server (which requeues the unit or, after repeated failures,
        fails the problem) and keeps serving other work.
        """
        assignment = self.port.request_work(self.donor_id)
        if assignment is None:
            return False
        self._compute_and_submit(assignment)
        return True

    def _compute_and_submit(self, assignment: Assignment) -> None:
        try:
            result = self.execute(assignment)
        except Exception as exc:
            self.failures += 1
            self.port.report_failure(
                assignment.problem_id,
                assignment.unit_id,
                self.donor_id,
                f"{type(exc).__name__}: {exc}",
            )
            return
        self._submit(result)

    def _spawn_prefetch(self) -> tuple[list[Assignment | None], threading.Event]:
        """Request the next unit in the background; returns (box, done).

        The thread also warms the algorithm and shared-blob caches for
        the granted unit, so the wire time of unit N+1 hides entirely
        under unit N's compute.  A port error leaves ``None`` in the
        box — the main loop then falls back to a synchronous request.
        """
        box: list[Assignment | None] = [None]
        done = threading.Event()

        def fetch() -> None:
            try:
                assignment = self.port.request_work(self.donor_id)
                box[0] = assignment
                if assignment is not None:
                    self._algorithm(assignment.problem_id)
                    with self._cache_lock:
                        fetch_and_resolve(
                            assignment.payload,
                            self.blob_cache,
                            lambda ref: self._fetch_blob(
                                assignment.problem_id, ref
                            ),
                        )
            except Exception:
                pass  # box holds whatever was granted before the error
            finally:
                done.set()

        threading.Thread(
            target=fetch, name=f"prefetch:{self.donor_id}", daemon=True
        ).start()
        return box, done

    def run(
        self,
        max_units: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> int:
        """Loop until all problems finish (or a stop condition); returns
        the number of units computed."""
        pooled = self.workers > 1 or self._pool is not None
        if pooled:
            # Advertise capacity: the server scales this donor's lease
            # depth (PipelineConfig.depth_for) and unit sizing to it.
            self.port.register_donor(self.donor_id, self.workers)
        else:
            self.port.register_donor(self.donor_id)
        try:
            if pooled:
                self._run_pooled(max_units, should_stop)
            elif self.prefetch:
                self._run_pipelined(max_units, should_stop)
            else:
                self._run_serial(max_units, should_stop)
        finally:
            if self._pool_owned and self._pool is not None:
                self._pool.shutdown()
                self._pool = None
                self._pool_owned = False
            try:
                self.port.deregister_donor(self.donor_id)
            except Exception:
                # The server may already be gone at shutdown; the donor's
                # lease will expire server-side regardless.
                pass
        return self.units_done

    def _run_serial(
        self,
        max_units: int | None,
        should_stop: Callable[[], bool] | None,
    ) -> None:
        while True:
            if should_stop is not None and should_stop():
                break
            if max_units is not None and self.units_done >= max_units:
                break
            worked = self.step()
            if worked:
                self._idle_attempt = 0
            else:
                if self.port.all_complete():
                    break
                self._idle_wait()

    def _run_pipelined(
        self,
        max_units: int | None,
        should_stop: Callable[[], bool] | None,
    ) -> None:
        """Double-buffered donor loop: compute unit N while unit N+1
        downloads.

        One prefetch slot (not a queue): depth 2 is what hides the
        wire, and a deeper hoard would just strand leases on this donor
        at problem end — the server's lease depth enforces the same
        bound from its side.
        """
        slot: tuple[list[Assignment | None], threading.Event] | None = None
        while True:
            if should_stop is not None and should_stop():
                break
            if max_units is not None and self.units_done >= max_units:
                break
            if slot is None:
                # Cold start (or post-idle): nothing in flight, pay the
                # round-trip in the open.
                self._meter("farm.pipeline.prefetch.misses", 1)
                assignment = self.port.request_work(self.donor_id)
            else:
                box, done = slot
                slot = None
                if done.is_set():
                    self._meter("farm.pipeline.prefetch.hits", 1)
                else:
                    start = self._clock()
                    done.wait()
                    gap = self._clock() - start
                    self._meter("farm.pipeline.prefetch.misses", 1)
                    if gap > 0:
                        self._meter("farm.pipeline.idle.gap.seconds", gap)
                assignment = box[0]
            if assignment is None:
                if self.port.all_complete():
                    break
                self._idle_wait()
                continue
            self._idle_attempt = 0
            slot = self._spawn_prefetch()
            self._compute_and_submit(assignment)

    # ------------------------------------------------------------------
    # pooled execution
    # ------------------------------------------------------------------

    def _algo_key(self, problem_id: int) -> tuple[str, bytes]:
        """Content address + pickled bytes of one problem's algorithm."""
        cached = self._carry_cache.get(("problem", str(problem_id)))
        if cached is not None:
            key = blob_key(cached)
            return key, cached
        algo = self._algorithm(problem_id)
        data = pickle.dumps(algo, protocol=pickle.HIGHEST_PROTOCOL)
        self._carry_cache[("problem", str(problem_id))] = data
        return blob_key(data), data

    def _pool_items(
        self, assignment: Assignment
    ) -> list[tuple[str, str, bytes]]:
        """Everything a worker needs for *assignment*: algo + blobs."""
        algo_key, algo_bytes = self._algo_key(assignment.problem_id)
        items = [("algo", algo_key, algo_bytes)]
        for ref in iter_blob_refs(assignment.payload):
            data = self._carry_cache.get(("blob", ref.key))
            if data is None:
                data = self._fetch_blob(assignment.problem_id, ref)
                self._carry_cache[("blob", ref.key)] = data
            items.append(("blob", ref.key, data))
        return items

    def _ensure_pool(self, assignment: Assignment) -> WorkerPool:
        """Build the pool lazily, seeded from the first assignment.

        Seeding through the initializer ships the algorithm and the
        first unit's shared blobs exactly once per worker process;
        later problems/stages ride along with tasks as carry items.
        """
        if self._pool is None:
            self._pool = WorkerPool(
                self.workers, seed_items=self._pool_items(assignment)
            )
            self._pool_owned = True
            self._meter("farm.pool.workers", self.workers)
        self._pool_mark = time.monotonic()
        return self._pool

    def _dispatch_pooled(
        self,
        pool: WorkerPool,
        assignment: Assignment,
        completions: "queue.Queue[tuple[Assignment, float, Any, BaseException | None]]",
    ) -> None:
        algo_key, _algo_bytes = self._algo_key(assignment.problem_id)
        carry = tuple(
            (kind, key, data)
            for kind, key, data in self._pool_items(assignment)
            if (kind, key) not in pool.seeded_keys
        )
        for _kind, _key, data in carry:
            self._meter("farm.pool.carry.bytes", len(data))
        dispatched = time.monotonic()
        # Callbacks run on the pool's result-handler thread; they only
        # enqueue, and the donor's main loop does all protocol work.
        pool.submit(
            (algo_key, assignment.payload, carry),
            callback=lambda res, a=assignment, t=dispatched: completions.put(
                (a, t, res, None)
            ),
            error_callback=lambda exc, a=assignment, t=dispatched: completions.put(
                (a, t, None, exc)
            ),
        )

    def _finish_pooled(
        self, item: tuple[Assignment, float, Any, BaseException | None]
    ) -> None:
        assignment, dispatched, res, error = item
        now = time.monotonic()
        if self._pool_mark:
            # Slot-time advances by wall-time x workers between
            # completions; utilization = busy.seconds / slot.seconds.
            self._meter(
                "farm.pool.slot.seconds", (now - self._pool_mark) * self.workers
            )
        self._pool_mark = now
        if error is not None:
            self.failures += 1
            self._meter("farm.pool.failures", 1)
            self.port.report_failure(
                assignment.problem_id,
                assignment.unit_id,
                self.donor_id,
                f"{type(error).__name__}: {error}",
            )
            return
        value, elapsed, started, stats, output_bytes = res
        self._meter("farm.pool.units", 1)
        self._meter("farm.pool.busy.seconds", elapsed)
        self._meter("farm.pool.queue.wait.seconds", max(0.0, started - dispatched))
        self._submit(
            WorkResult(
                problem_id=assignment.problem_id,
                unit_id=assignment.unit_id,
                value=value,
                donor_id=self.donor_id,
                compute_seconds=elapsed,
                items=assignment.items,
                output_bytes=output_bytes,
                extra={"meters": stats} if stats else {},
            )
        )

    def _run_pooled(
        self,
        max_units: int | None,
        should_stop: Callable[[], bool] | None,
    ) -> None:
        """Keep up to ``workers`` leased units computing concurrently.

        The protocol conversation (request, submit, report) stays
        single-threaded in this loop — workers only compute — so the
        server-facing behaviour is that of one very fast serial donor
        and the exactly-once/integrity machinery is untouched.
        """
        completions: queue.Queue[
            tuple[Assignment, float, Any, BaseException | None]
        ] = queue.Queue()
        in_flight = 0
        stop_heartbeat = self._start_heartbeat()
        try:
            while True:
                if should_stop is not None and should_stop():
                    break
                while True:
                    try:
                        item = completions.get_nowait()
                    except queue.Empty:
                        break
                    in_flight -= 1
                    self._finish_pooled(item)
                if max_units is not None and self.units_done >= max_units:
                    break
                granted = False
                while in_flight < self.workers and (
                    max_units is None
                    or self.units_done + in_flight < max_units
                ):
                    assignment = self.port.request_work(self.donor_id)
                    if assignment is None:
                        break
                    pool = self._ensure_pool(assignment)
                    self._dispatch_pooled(pool, assignment, completions)
                    in_flight += 1
                    granted = True
                if granted:
                    self._idle_attempt = 0
                    continue
                if in_flight > 0:
                    # Saturated (or refused at depth): wait for a
                    # completion, staying responsive to should_stop.
                    try:
                        item = completions.get(timeout=0.05)
                    except queue.Empty:
                        continue
                    in_flight -= 1
                    self._finish_pooled(item)
                    continue
                if self.port.all_complete():
                    break
                self._idle_wait()
        finally:
            stop_heartbeat()


def run_to_completion(
    server: TaskFarmServer,
    donors: int = 4,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Drive submitted problems to completion on one thread.

    A convenience for unit tests and tiny examples: simulates *donors*
    round-robin donors taking units in turn, all executing inline.
    When a whole round finds no work (a stage barrier, or every unit
    leased out), the loop yields through *sleep* instead of spinning
    hot against the server — under a wall clock that lets leases age
    toward expiry; tests inject a sleep that advances their ManualClock.
    """
    port = InProcessServerPort(server, clock=clock)
    clients = [DonorClient(f"donor-{i}", port, sleep=lambda _s: None) for i in range(donors)]
    for client in clients:
        client.port.register_donor(client.donor_id)
    idle_rounds = 0
    while not server.all_complete():
        progressed = False
        for client in clients:
            if client.step():
                progressed = True
        if not progressed:
            idle_rounds += 1
            if idle_rounds > 10_000:
                raise RuntimeError("no progress: a DataManager is stuck")
            sleep(0.0)
        else:
            idle_rounds = 0
