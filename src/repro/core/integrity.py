"""Result integrity: replication, quorum voting, and donor reputation.

The paper's farm ran for years on donated desktops.  Machines that
churn are handled by leases (:mod:`repro.core.faults`); machines that
*lie* — flaky RAM, overclocked CPUs, stale clients, malicious users —
are not, and a task farm that applies the first result it receives
will assemble a corrupted answer without ever noticing.  Volunteer
computing systems (Folding@Home, BOINC-style projects) treat donor
output as untrusted and verify it by redundant computation; this
module brings the same defence to the task farm:

* :class:`IntegrityPolicy` — how many independent donors must compute
  a unit (``replication``), how many matching results accept it
  (``quorum``), and what fraction of ordinary units get a surprise
  second opinion (``spot_check_rate``, escalating for donors with a
  disagreement history).
* :class:`ReputationLedger` — per-donor counts of agreements,
  disagreements, lease expiries and reported failures, folded into a
  suspicion score with quarantine/blacklist thresholds.  Quarantined
  donors receive no work and their results are refused.
* :func:`canonical_digest` — the canonical fingerprint used to compare
  results from independent donors without structural diffing.

The server (:mod:`repro.core.server`) threads these pieces through
``request_work``/``submit_result``; the ledger is persisted in the
checkpoint so a restarted server does not forget who lied to it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.blobs import canonical_dumps
from repro.core.workunit import WorkResult
from repro.util.rng import stable_coin


def canonical_digest(value: Any) -> bytes:
    """A 16-byte fingerprint of a result value for vote comparison.

    Digests are always computed *server-side* on the received object,
    so two honest donors producing equal values yield equal digests
    regardless of how the values travelled.  Pickle memoization is
    disabled (``fast``): the memo encodes object-identity *sharing*
    — a result graph that reuses one ``'q0'`` string object pickles
    differently from an equal graph with two copies — and identity is
    an artefact of the code path, not of the value being voted on.
    Without the memo, equal acyclic values always yield equal digests.
    Values should avoid ``set``s (whose iteration order is not
    canonical) and cycles (unpicklable without the memo); every
    framework and application result type here is built from ints,
    floats, strings, lists, dicts and dataclasses.
    """
    try:
        payload = canonical_dumps(value)
    except Exception:
        payload = repr(value).encode("utf-8", "replace")
    return hashlib.blake2b(payload, digest_size=16).digest()


@dataclass(slots=True)
class Vote:
    """One donor's answer for a unit, awaiting quorum."""

    donor_id: str
    digest: bytes
    result: WorkResult


class ReputationState(enum.Enum):
    TRUSTED = "trusted"
    SUSPECT = "suspect"          # has at least one disagreement on record
    QUARANTINED = "quarantined"  # gets no work; results refused
    BLACKLISTED = "blacklisted"  # quarantined, permanently


@dataclass(frozen=True)
class IntegrityPolicy:
    """Configuration of the replication / spot-check / quorum defence.

    The default policy is *inactive*: ``replication=1`` and
    ``spot_check_rate=0`` reproduce the historical first-result-wins
    behaviour exactly, with zero overhead on the accept path.

    Parameters
    ----------
    replication:
        Independent donors every unit is issued to.  ``2`` doubles the
        work but catches any single byzantine donor.
    quorum:
        Matching digests needed to accept a replicated unit (capped at
        the number of votes the unit requires).
    spot_check_rate:
        Probability (deterministic per unit, derived from ``seed``)
        that a non-replicated unit is nevertheless issued to a second
        donor for verification.
    suspect_escalation:
        Extra spot-check probability per recorded disagreement of the
        donor a unit is first issued to — low-reputation donors get
        audited more.
    quarantine_after / blacklist_after:
        Suspicion scores at which a donor stops receiving work
        (quarantine) and is permanently branded (blacklist).
    failure_weight / expiry_weight:
        How much reported Algorithm failures and lease expiries
        contribute to suspicion next to disagreements (weight 1.0).
    max_votes:
        Votes gathered for one unit before the server gives up and
        fails the problem (protects against a value that genuinely
        differs on every machine — a user-code determinism bug).
    seed:
        Root of the deterministic spot-check coin, so a restarted or
        simulated server makes identical choices.
    """

    replication: int = 1
    quorum: int = 2
    spot_check_rate: float = 0.0
    suspect_escalation: float = 0.5
    quarantine_after: float = 3.0
    blacklist_after: float = 10.0
    failure_weight: float = 0.25
    expiry_weight: float = 0.1
    max_votes: int = 9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.quorum < 2:
            raise ValueError("quorum must be >= 2 (1 would accept anything)")
        if not (0.0 <= self.spot_check_rate <= 1.0):
            raise ValueError("spot_check_rate must be in [0, 1]")
        if self.suspect_escalation < 0:
            raise ValueError("suspect_escalation cannot be negative")
        if self.quarantine_after <= 0 or self.blacklist_after < self.quarantine_after:
            raise ValueError(
                "need 0 < quarantine_after <= blacklist_after"
            )
        if self.max_votes < self.replication:
            raise ValueError("max_votes must be >= replication")

    @property
    def active(self) -> bool:
        """Is the integrity layer switched on at all?

        Only an explicit ``replication > 1`` or a nonzero base
        ``spot_check_rate`` activates it; ``suspect_escalation`` alone
        does not (it scales an active spot-check policy, it cannot
        start one).  An inactive policy leaves the server's behaviour
        and accounting byte-for-byte identical to the pre-integrity
        farm.
        """
        return self.replication > 1 or self.spot_check_rate > 0

    def spot_coin(self, problem_id: int, unit_id: int) -> float:
        """Deterministic uniform [0, 1) coin for one unit's spot check."""
        return stable_coin(self.seed, "spot", problem_id, unit_id)

    def required_votes(
        self, problem_id: int, unit_id: int, donor_suspicion: float = 0.0
    ) -> int:
        """How many independent votes this unit needs before acceptance.

        Called once, when the unit is first issued; *donor_suspicion*
        is the issuing donor's current suspicion score, which escalates
        the spot-check rate for donors with a disagreement history.
        """
        if self.replication > 1:
            return self.replication
        rate = self.spot_check_rate + donor_suspicion * self.suspect_escalation
        if rate > 0 and self.spot_coin(problem_id, unit_id) < min(1.0, rate):
            return 2
        return 1


@dataclass(slots=True)
class DonorReputation:
    """What the ledger remembers about one donor."""

    donor_id: str
    agreements: int = 0
    disagreements: int = 0
    expiries: int = 0
    failures: int = 0
    state: ReputationState = ReputationState.TRUSTED

    def suspicion(self, policy: IntegrityPolicy) -> float:
        return (
            self.disagreements
            + self.failures * policy.failure_weight
            + self.expiries * policy.expiry_weight
        )

    @property
    def distrusted(self) -> bool:
        return self.state in (
            ReputationState.QUARANTINED,
            ReputationState.BLACKLISTED,
        )


class ReputationLedger:
    """Per-donor reputation accounting with quarantine transitions."""

    def __init__(self) -> None:
        self._donors: dict[str, DonorReputation] = {}

    def __len__(self) -> int:
        return len(self._donors)

    def get(self, donor_id: str) -> DonorReputation | None:
        return self._donors.get(donor_id)

    def record(self, donor_id: str) -> DonorReputation:
        rep = self._donors.get(donor_id)
        if rep is None:
            rep = DonorReputation(donor_id)
            self._donors[donor_id] = rep
        return rep

    def suspicion(self, donor_id: str, policy: IntegrityPolicy) -> float:
        rep = self._donors.get(donor_id)
        return rep.suspicion(policy) if rep else 0.0

    def distrusted(self, donor_id: str) -> bool:
        rep = self._donors.get(donor_id)
        return rep.distrusted if rep else False

    def update_state(
        self, donor_id: str, policy: IntegrityPolicy
    ) -> ReputationState | None:
        """Re-evaluate a donor's state; returns the new state if it
        changed (transitions are monotone — trust is never restored
        within one server lifetime)."""
        rep = self.record(donor_id)
        score = rep.suspicion(policy)
        target = rep.state
        if score >= policy.blacklist_after:
            target = ReputationState.BLACKLISTED
        elif score >= policy.quarantine_after:
            target = ReputationState.QUARANTINED
        elif rep.disagreements > 0:
            target = ReputationState.SUSPECT
        order = list(ReputationState)
        if order.index(target) > order.index(rep.state):
            rep.state = target
            return target
        return None

    def quarantined_ids(self) -> list[str]:
        return sorted(
            d for d, rep in self._donors.items() if rep.distrusted
        )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-able view for status reporting."""
        return {
            donor_id: {
                "agreements": rep.agreements,
                "disagreements": rep.disagreements,
                "expiries": rep.expiries,
                "failures": rep.failures,
                "state": rep.state.value,
            }
            for donor_id, rep in sorted(self._donors.items())
        }

    # -- checkpoint support -------------------------------------------------

    def dump(self) -> dict[str, DonorReputation]:
        return dict(self._donors)

    def restore(self, donors: dict[str, DonorReputation]) -> None:
        self._donors.update(donors)


@dataclass(slots=True)
class _UnitIntegrity:
    """Per-unit voting state held by the server's problem bookkeeping."""

    required: int = 1
    votes: list[Vote] = field(default_factory=list)

    def voters(self) -> set[str]:
        return {v.donor_id for v in self.votes}

    def tally(self) -> tuple[bytes, int] | None:
        """The leading digest and its count (None with no votes)."""
        if not self.votes:
            return None
        counts: dict[bytes, int] = {}
        for vote in self.votes:
            counts[vote.digest] = counts.get(vote.digest, 0) + 1
        digest = max(counts, key=lambda d: (counts[d], d))
        return digest, counts[digest]
