"""The task-farm server: problem lifecycle, unit issue, result assembly.

This is the state-machine heart of the system.  It deliberately has **no
clock and no threads**: every public method takes ``now`` as an
argument and the caller supplies the time base.  The live cluster wraps
it with wall-clock time behind an RMI facade
(:mod:`repro.cluster.local`), while the discrete-event simulator drives
the *identical* scheduling logic under virtual time
(:mod:`repro.cluster.sim`) — so the speedup curves measured in
simulation are produced by the same code a real deployment runs.

Work is **pulled** by donors (cycle scavenging: a donor asks when it is
idle), matching the paper's client-initiated design.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.core.blobs import iter_blob_refs
from repro.core.faults import LeaseTable
from repro.core.integrity import (
    IntegrityPolicy,
    ReputationLedger,
    ReputationState,
    Vote,
    _UnitIntegrity,
    canonical_digest,
)
from repro.core.problem import Algorithm, Problem
from repro.core.scheduler import (
    AdaptiveGranularity,
    DonorState,
    GranularityPolicy,
    ProblemRoundRobin,
)
from repro.core.workunit import UnitStatus, WorkResult, WorkUnit
from repro.obs import ITEMS_BUCKETS, LATENCY_BUCKETS, Observability
from repro.obs.trace import Span
from repro.util.events import EventLog


class ProblemStatus(enum.Enum):
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Knobs of the pipelined donor runtime.

    Parameters
    ----------
    lease_depth:
        Maximum units a single donor may hold live leases on at once.
        ``None`` (the default) keeps the historical unlimited behaviour;
        a prefetching donor needs 2 (one computing, one in flight).
        Requests beyond the depth are refused (and metered), so a fast
        donor cannot hoard the tail of a problem in its prefetch queue.
    tail_reissue:
        When True and a donor asks for work but no fresh/requeued unit
        exists, the server speculatively re-dispatches the oldest
        in-flight unit of a problem that is down to its last
        ``tail_window`` units — a straggler on a slow donor no longer
        stalls the stage barrier.  The existing exactly-once folding
        accepts whichever copy lands first and drops the rest.
    tail_window:
        Re-issue only when at most this many distinct units are in
        flight for the problem (the "tail" definition).
    max_holders:
        Never lease one unit to more than this many donors at once
        (original + speculative copies), bounding duplicated work.
    """

    lease_depth: int | None = None
    tail_reissue: bool = False
    tail_window: int = 4
    max_holders: int = 2

    def __post_init__(self) -> None:
        if self.lease_depth is not None and self.lease_depth < 1:
            raise ValueError("lease_depth must be >= 1 (or None for unlimited)")
        if self.tail_window < 1:
            raise ValueError("tail_window must be >= 1")
        if self.max_holders < 2:
            raise ValueError("max_holders must be >= 2")

    @classmethod
    def pipelined(cls, depth: int = 2) -> "PipelineConfig":
        """The standard pipelined runtime: prefetch depth + tail re-issue."""
        return cls(lease_depth=depth, tail_reissue=True)

    def depth_for(self, slots: int) -> int | None:
        """Lease-depth gate for a donor advertising ``slots`` cores.

        ``lease_depth`` is *per slot*: a depth-2 pipeline on a 4-core
        pooled donor allows 8 concurrent leases (four computing, four
        prefetching), so capacity scheduling falls out of the existing
        depth machinery instead of a second code path.  ``None`` stays
        unlimited.
        """
        if self.lease_depth is None:
            return None
        return self.lease_depth * max(1, slots)


@dataclass(frozen=True, slots=True)
class Assignment:
    """One unit as handed to a donor.

    ``input_bytes`` is the wire cost charged for this delivery: the
    inline payload plus any shared blobs this donor receives for the
    first time.  ``inline_bytes`` is the blob-free part alone (equal to
    ``input_bytes`` for payloads without references); the simulator
    uses the split to model inline and blob transfers separately.
    """

    problem_id: int
    unit_id: int
    payload: Any
    items: int
    input_bytes: int
    cost_hint: float
    lease_deadline: float
    inline_bytes: int = -1


class _ProblemState:
    """Server-private bookkeeping for one submitted problem."""

    __slots__ = (
        "problem",
        "status",
        "submitted_at",
        "completed_at",
        "requeue",
        "replicas",
        "voting",
        "next_unit_id",
        "units_issued",
        "units_completed",
        "items_completed",
        "completed_units",
    )

    def __init__(self, problem: Problem, now: float):
        self.problem = problem
        self.status = ProblemStatus.RUNNING
        self.submitted_at = now
        self.completed_at: float | None = None
        self.requeue: deque[WorkUnit] = deque()
        # Redundant copies awaiting a verifying donor (integrity layer);
        # kept apart from ``requeue`` so recovery work (lost units) is
        # always served before extra verification work.
        self.replicas: deque[WorkUnit] = deque()
        # unit_id -> voting state for units needing >1 matching result.
        self.voting: dict[int, _UnitIntegrity] = {}
        self.next_unit_id = 0
        self.units_issued = 0
        self.units_completed = 0
        self.items_completed = 0
        self.completed_units: set[int] = set()


class TaskFarmServer:
    """Pure scheduling state machine for the task farm.

    Parameters
    ----------
    policy:
        Unit-sizing policy; defaults to the paper's adaptive
        granularity control.
    lease_timeout:
        Seconds a donor may hold a unit before it is requeued.
    log:
        Event sink; a fresh :class:`~repro.util.events.EventLog` is
        created when omitted.
    obs:
        Streaming meters + tracer (:class:`~repro.obs.Observability`);
        a private bundle is created when omitted.  Counters are updated
        at exactly the program points that record events, so their
        end-of-run totals reconcile with
        :func:`repro.core.metrics.run_metrics`.
    """

    def __init__(
        self,
        policy: GranularityPolicy | None = None,
        lease_timeout: float = 300.0,
        log: EventLog | None = None,
        max_unit_attempts: int = 5,
        obs: Observability | None = None,
        integrity: IntegrityPolicy | None = None,
        pipeline: PipelineConfig | None = None,
        journal=None,
        dispatch=None,
    ):
        if max_unit_attempts < 1:
            raise ValueError("max_unit_attempts must be >= 1")
        self.policy = policy or AdaptiveGranularity()
        # Pluggable write-ahead sink (repro.core.journal.JournalWriter):
        # every durable mutation is appended before the caller is
        # acknowledged; None runs the historical in-memory-only mode.
        self.journal = journal
        self.leases = LeaseTable(lease_timeout)
        self.log = log or EventLog()
        self.max_unit_attempts = max_unit_attempts
        self.obs = obs or Observability()
        self.integrity = integrity or IntegrityPolicy()
        self.pipeline = pipeline or PipelineConfig()
        self.reputation = ReputationLedger()
        self._problems: dict[int, _ProblemState] = {}
        self._donors: dict[str, DonorState] = {}
        # Cross-problem dispatch policy (order/served/completed).  The
        # default round robin reproduces the paper; the job gateway
        # (:mod:`repro.core.gateway`) swaps in weighted fair share.
        self.dispatch = dispatch or ProblemRoundRobin()
        self._failures: dict[int, str] = {}
        self._problem_spans: dict[int, Span] = {}
        self._unit_spans: dict[tuple[int, int], Span] = {}
        meters = self.obs.meters
        self._m_units_issued = meters.counter("farm.units.issued")
        self._m_units_completed = meters.counter("farm.units.completed")
        self._m_units_requeued = meters.counter("farm.units.requeued")
        self._m_units_duplicate = meters.counter("farm.units.duplicate")
        self._m_units_stale = meters.counter("farm.units.stale")
        self._m_units_failed = meters.counter("farm.units.failed")
        self._m_items_completed = meters.counter("farm.items.completed")
        self._m_bytes_in = meters.counter("farm.bytes.in")
        self._m_bytes_out = meters.counter("farm.bytes.out")
        self._m_leases_expired = meters.counter("farm.leases.expired")
        self._m_problems_submitted = meters.counter("farm.problems.submitted")
        self._m_problems_completed = meters.counter("farm.problems.completed")
        self._m_problems_failed = meters.counter("farm.problems.failed")
        self._m_problems_cancelled = meters.counter("farm.problems.cancelled")
        self._g_donors = meters.gauge("farm.donors.registered")
        self._g_donors_busy = meters.gauge("farm.donors.busy")
        self._g_problems_running = meters.gauge("farm.problems.running")
        self._h_unit_seconds = meters.histogram("farm.unit.seconds", LATENCY_BUCKETS)
        self._h_unit_items = meters.histogram("farm.unit.items", ITEMS_BUCKETS)
        self._m_redundant_units = meters.counter("farm.integrity.redundant_units")
        self._m_redundant_items = meters.counter("farm.integrity.redundant_items")
        self._m_agreements = meters.counter("farm.integrity.agreements")
        self._m_disagreements = meters.counter("farm.integrity.disagreements")
        self._m_spot_checks = meters.counter("farm.integrity.spot_checks")
        self._m_untrusted = meters.counter("farm.integrity.untrusted")
        self._m_quarantines = meters.counter("farm.integrity.quarantines")
        self._g_quarantined = meters.gauge("farm.integrity.quarantined")
        self._m_tail_reissues = meters.counter("farm.pipeline.tail.reissues")
        self._m_wasted_items = meters.counter("farm.pipeline.wasted.items")
        self._m_idle_polls = meters.counter("farm.pipeline.idle.polls")
        self._m_depth_refusals = meters.counter("farm.pipeline.depth.refusals")
        self._m_blob_refs = meters.counter("net.blob.refs")
        self._m_blob_deliveries = meters.counter("net.blob.deliveries")
        self._m_blob_bytes = meters.counter("net.blob.bytes")
        self._m_blob_saved = meters.counter("net.blob.bytes.saved")
        # Which blob keys each donor has already been charged for.
        # Keyed by donor, not (donor, problem): content addressing makes
        # equal data identical across problems, so a donor that cached
        # the database for one search never pays for it again.  Not
        # checkpointed — a restarted server conservatively re-charges.
        self._delivered_blobs: dict[str, set[str]] = {}

    def _journal(self, kind: str, now: float, **fields: Any) -> None:
        """Append one durable-mutation record to the journal sink.

        Placed at exactly the program points that irreversibly change
        recoverable state; replay (:mod:`repro.core.journal`) applies
        these records — and nothing else — to rebuild the server.
        """
        if self.journal is not None:
            self.journal.append(kind, now, **fields)

    def _sync_donor_gauges(self) -> None:
        self._g_donors.set(len(self._donors))
        self._g_donors_busy.set(
            sum(1 for d in self._donors.values() if d.active_units)
        )

    # ------------------------------------------------------------------
    # problem lifecycle
    # ------------------------------------------------------------------

    def submit(self, problem: Problem, now: float = 0.0) -> int:
        """Accept a problem; returns its id."""
        if problem.problem_id in self._problems:
            raise ValueError(f"problem {problem.problem_id} already submitted")
        # Journaled before any unit is cut, so the pickled DataManager
        # is pristine and replay re-cuts from the same starting state.
        self._journal("problem.submit", now, problem=problem)
        self._problems[problem.problem_id] = _ProblemState(problem, now)
        self.log.record(
            now, "problem.submitted", problem_id=problem.problem_id, name=problem.name
        )
        self._m_problems_submitted.inc()
        self._g_problems_running.set(len(self.active_problem_ids()))
        self._problem_spans[problem.problem_id] = self.obs.tracer.start(
            "problem", now, problem_id=problem.problem_id, problem_name=problem.name
        )
        return problem.problem_id

    def status(self, problem_id: int) -> ProblemStatus:
        return self._state(problem_id).status

    def final_result(self, problem_id: int) -> Any:
        state = self._state(problem_id)
        if state.status is ProblemStatus.FAILED:
            raise RuntimeError(
                f"problem {problem_id} failed: {self._failures.get(problem_id)}"
            )
        if state.status is ProblemStatus.CANCELLED:
            raise RuntimeError(f"problem {problem_id} was cancelled")
        if state.status is not ProblemStatus.COMPLETE:
            raise RuntimeError(f"problem {problem_id} is not complete")
        return state.problem.data_manager.final_result()

    def progress(self, problem_id: int) -> float:
        state = self._state(problem_id)
        total = state.problem.data_manager.total_items()
        if total:
            return min(1.0, state.items_completed / total)
        return state.problem.data_manager.progress()

    def active_problem_ids(self) -> list[int]:
        return [
            pid
            for pid, st in self._problems.items()
            if st.status is ProblemStatus.RUNNING
        ]

    def all_complete(self) -> bool:
        return not self.active_problem_ids()

    def makespan(self, problem_id: int) -> float:
        """Submit-to-complete time for a finished problem."""
        state = self._state(problem_id)
        if state.completed_at is None:
            raise RuntimeError(f"problem {problem_id} is not complete")
        return state.completed_at - state.submitted_at

    # ------------------------------------------------------------------
    # donor lifecycle
    # ------------------------------------------------------------------

    def register_donor(
        self, donor_id: str, now: float = 0.0, slots: int = 1
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if donor_id in self._donors:
            # A rebooted donor re-registering is normal churn, not an error.
            self.deregister_donor(donor_id, now)
        self._journal("donor.register", now, donor=donor_id, slots=slots)
        self._donors[donor_id] = DonorState(donor_id, now, now, slots=slots)
        if slots > 1:
            # Serial donors keep the historical event shape (replay
            # determinism tests compare logs field-for-field).
            self.log.record(
                now, "donor.registered", donor_id=donor_id, slots=slots
            )
        else:
            self.log.record(now, "donor.registered", donor_id=donor_id)
        self._sync_donor_gauges()

    def deregister_donor(self, donor_id: str, now: float = 0.0) -> None:
        """Remove a donor; any unit it held goes back on the queue."""
        donor = self._donors.pop(donor_id, None)
        if donor is None:
            return
        self._journal("donor.deregister", now, donor=donor_id)
        for lease in self.leases.revoke_donor(donor_id):
            self._recover_unit(lease.unit, now, reason="donor-left")
        self.log.record(now, "donor.deregistered", donor_id=donor_id)
        self._sync_donor_gauges()

    def heartbeat(self, donor_id: str, now: float) -> None:
        """Keep a slow donor's lease alive while it reports progress."""
        donor = self._donors.get(donor_id)
        if donor is None:
            return
        donor.last_seen = now
        # Renew every unit the donor holds: a pipelined donor's
        # prefetched unit must not be torn away while unit N computes.
        for pid, uid in donor.active_units:
            self.leases.renew(pid, uid, now, donor_id=donor_id)

    def donor_ids(self) -> list[str]:
        return sorted(self._donors)

    def donor_state(self, donor_id: str) -> DonorState:
        return self._donors[donor_id]

    # ------------------------------------------------------------------
    # the scheduling core: issue and collect units
    # ------------------------------------------------------------------

    def request_work(self, donor_id: str, now: float) -> Assignment | None:
        """A donor asks for its next unit; returns ``None`` when idle.

        Requeued units (casualties of churn or expiry) are reissued
        before new units are cut, so no work is ever stranded behind
        fresh partitioning.  With a ``lease_depth`` configured, a donor
        already holding that many live leases is refused; with
        ``tail_reissue``, a donor that would otherwise idle may receive
        a speculative copy of the oldest in-flight unit of a
        nearly-done problem.
        """
        donor = self._donors.get(donor_id)
        if donor is None:
            raise KeyError(f"unregistered donor {donor_id!r}")
        donor.last_seen = now
        if self.integrity.active and self.reputation.distrusted(donor_id):
            return None  # quarantined donors get no work

        # The lease table is authoritative: entries whose lease was
        # cancelled elsewhere (unit completed by another holder, a
        # dropped result) must not count against the donor forever.
        donor.active_units = [
            key
            for key in donor.active_units
            if donor_id in self.leases.holders(*key)
        ]
        depth = self.pipeline.depth_for(donor.slots)
        if depth is not None and len(donor.active_units) >= depth:
            self._m_depth_refusals.inc()
            return None

        candidates = [
            (pid, self._problems[pid].problem.priority)
            for pid in self.active_problem_ids()
        ]
        order = self.dispatch.order(candidates)
        for pid in order:
            state = self._problems[pid]
            unit = self._take_unit(state, donor, now)
            if unit is None:
                continue
            if (
                self.integrity.active
                and unit.attempts == 0
                and unit.unit_id not in state.voting
            ):
                required = self.integrity.required_votes(
                    pid,
                    unit.unit_id,
                    self.reputation.suspicion(donor_id, self.integrity),
                )
                if required > 1:
                    self._journal(
                        "unit.voting.open",
                        now,
                        pid=pid,
                        uid=unit.unit_id,
                        required=required,
                    )
                    state.voting[unit.unit_id] = _UnitIntegrity(required=required)
                    if self.integrity.replication == 1:
                        self._m_spot_checks.inc()
            return self._grant(state, unit, donor, now)
        assignment = self._tail_reissue(order, donor, now)
        if assignment is not None:
            return assignment
        self._m_idle_polls.inc()
        return None

    def _grant(
        self,
        state: _ProblemState,
        unit: WorkUnit,
        donor: DonorState,
        now: float,
        reissue: bool = False,
    ) -> Assignment:
        """Lease *unit* to *donor* and package the Assignment."""
        pid = state.problem.problem_id
        donor_id = donor.donor_id
        # An issue is redundant when the unit already has a live
        # lease or a recorded vote — work beyond 1x replication.
        voting = state.voting.get(unit.unit_id)
        if len(self.leases.holders(pid, unit.unit_id)) + (
            len(voting.votes) if voting else 0
        ) > 0:
            self._m_redundant_units.inc()
            self._m_redundant_items.inc(unit.items)
        unit.status = UnitStatus.ISSUED
        unit.attempts += 1
        lease = self.leases.grant(unit, donor_id, now)
        donor.start_unit(pid, unit.unit_id)
        state.units_issued += 1
        self.dispatch.served(pid)
        inline_bytes, wire_bytes = self._charge_delivery(donor_id, unit)
        self.log.record(
            now,
            "unit.issued",
            problem_id=pid,
            unit_id=unit.unit_id,
            donor_id=donor_id,
            items=unit.items,
            attempt=unit.attempts,
            input_bytes=wire_bytes,
            **({"reissue": True} if reissue else {}),
        )
        self._m_units_issued.inc()
        if reissue:
            self._m_tail_reissues.inc()
        self._m_bytes_in.inc(wire_bytes)
        self._h_unit_items.observe(unit.items)
        self._sync_donor_gauges()
        if voting is not None:
            self._ensure_vote_supply(state, unit, now, reason="replication")
        if (pid, unit.unit_id) not in self._unit_spans:
            self._unit_spans[(pid, unit.unit_id)] = self.obs.tracer.start(
                "unit",
                now,
                parent=self._problem_spans.get(pid),
                problem_id=pid,
                unit_id=unit.unit_id,
                donor_id=donor_id,
                items=unit.items,
                attempt=unit.attempts,
            )
        return Assignment(
            problem_id=pid,
            unit_id=unit.unit_id,
            payload=unit.payload,
            items=unit.items,
            input_bytes=wire_bytes,
            cost_hint=unit.cost_hint,
            lease_deadline=lease.deadline,
            inline_bytes=inline_bytes,
        )

    def _tail_reissue(
        self, order: list[int], donor: DonorState, now: float
    ) -> Assignment | None:
        """Speculatively duplicate the oldest in-flight unit of a
        problem in its tail onto an otherwise idle donor.

        Only fires when no fresh or requeued unit exists anywhere (the
        caller's loop came up empty) and a problem is down to at most
        ``tail_window`` distinct in-flight units — a stage barrier held
        open by stragglers.  Voting units are excluded (their supply is
        managed by :meth:`_ensure_vote_supply`), as are units the donor
        already holds or voted on, and units already duplicated to
        ``max_holders`` donors.  Exactly-once folding makes the extra
        copy safe: the first result in wins, later ones are dropped.
        """
        if not self.pipeline.tail_reissue:
            return None
        for pid in order:
            state = self._problems[pid]
            stragglers = self.leases.earliest_per_unit(pid)
            if not stragglers or len(stragglers) > self.pipeline.tail_window:
                continue
            for lease in stragglers:
                unit = lease.unit
                if unit.unit_id in state.completed_units:
                    continue
                if unit.unit_id in state.voting:
                    continue
                if not self._eligible(state, unit.unit_id, donor.donor_id):
                    continue
                holders = self.leases.holders(pid, unit.unit_id)
                if len(holders) >= self.pipeline.max_holders:
                    continue
                return self._grant(state, unit, donor, now, reissue=True)
        return None

    def _charge_delivery(self, donor_id: str, unit: WorkUnit) -> tuple[int, int]:
        """Byte accounting for issuing *unit* to *donor_id*.

        Returns ``(inline_bytes, wire_bytes)``.  A payload without
        shared-blob references costs its declared ``input_bytes``,
        unchanged.  With references, every ref adds a fixed envelope
        cost, and each blob's content is charged only the first time
        this particular donor receives it — the whole point of the
        cache: ship the database once, then send references.
        """
        refs = iter_blob_refs(unit.payload)
        inline_bytes = unit.input_bytes
        if not refs:
            return inline_bytes, inline_bytes
        wire_bytes = inline_bytes
        delivered = self._delivered_blobs.setdefault(donor_id, set())
        for ref in refs:
            self._m_blob_refs.inc()
            if ref.key in delivered:
                self._m_blob_saved.inc(ref.size)
            else:
                delivered.add(ref.key)
                wire_bytes += ref.size
                self._m_blob_deliveries.inc()
                self._m_blob_bytes.inc(ref.size)
        return inline_bytes, wire_bytes

    def _release_donor_hold(self, result: WorkResult, now: float) -> None:
        """Drop the submitting donor's lease + bookkeeping for a result
        that will not be applied (stale problem / already-completed
        unit), so a depth-limited donor gets its slot back."""
        self.leases.release(result.problem_id, result.unit_id, result.donor_id)
        donor = self._donors.get(result.donor_id)
        if donor is not None:
            donor.end_unit(result.problem_id, result.unit_id)
            donor.last_seen = now
            self._sync_donor_gauges()

    def _eligible(self, state: _ProblemState, unit_id: int, donor_id: str) -> bool:
        """May *donor_id* be issued (a copy of) this unit?

        A donor never sees the same unit twice: not while it holds a
        live lease on it, and not after it has voted on it — replicas
        must come from *independent* donors or quorum proves nothing.
        """
        pid = state.problem.problem_id
        if donor_id in self.leases.holders(pid, unit_id):
            return False
        voting = state.voting.get(unit_id)
        return voting is None or donor_id not in voting.voters()

    def _take_unit(
        self, state: _ProblemState, donor: DonorState, now: float
    ) -> WorkUnit | None:
        for queue in (state.requeue, state.replicas):
            for idx, unit in enumerate(queue):
                if self._eligible(state, unit.unit_id, donor.donor_id):
                    del queue[idx]
                    return unit
        max_items = self.policy.items_for(
            donor, state.problem.problem_id, remaining=self._remaining_items(state)
        )
        payload = state.problem.data_manager.next_unit(max_items)
        if payload is None:
            return None
        # Fresh cuts are journaled so the unit-id ↔ payload binding
        # survives a crash: replay calls next_unit(items) in journal
        # order, which the DataManager contract makes yield the very
        # same slice, and asserts the lockstep unit id matches.
        self._journal(
            "unit.cut",
            now,
            pid=state.problem.problem_id,
            uid=state.next_unit_id,
            items=payload.items,
        )
        unit = WorkUnit.from_payload(
            state.problem.problem_id, state.next_unit_id, payload
        )
        state.next_unit_id += 1
        return unit

    def _remaining_items(self, state: _ProblemState) -> int | None:
        """Estimate of items not yet cut into units (None when the
        DataManager cannot count them).  Completed, in-flight, and
        queued units are all already cut; the policy's tail taper uses
        the estimate to shrink units as a problem drains."""
        total = state.problem.data_manager.total_items()
        if not total:
            return None
        pid = state.problem.problem_id
        cut = state.items_completed
        seen: set[int] = set(state.completed_units)
        for lease in self.leases.outstanding(pid):
            uid = lease.unit.unit_id
            if uid not in seen:
                seen.add(uid)
                cut += lease.unit.items
        for queue in (state.requeue, state.replicas):
            for unit in queue:
                if unit.unit_id not in seen:
                    seen.add(unit.unit_id)
                    cut += unit.items
        return max(0, total - cut)

    def submit_result(self, result: WorkResult, now: float) -> bool:
        """Apply a donor's result; returns False for duplicates/stale.

        Exactly-once semantics: a unit whose lease expired may produce
        two results (the late original and the reissue); the first to
        arrive is applied, later ones are logged and dropped.
        """
        state = self._problems.get(result.problem_id)
        if state is None or state.status is not ProblemStatus.RUNNING:
            self._release_donor_hold(result, now)
            self.log.record(
                now,
                "unit.stale",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                donor_id=result.donor_id,
            )
            self._m_units_stale.inc()
            return False
        if result.unit_id >= state.next_unit_id:
            # A unit id this server never cut: a torn-tail recovery
            # rolled history back past the cut while the result was in
            # flight.  Refuse it — the slice will be re-cut and earn a
            # fresh quorum; folding now would bypass verification.
            self._release_donor_hold(result, now)
            self.log.record(
                now,
                "unit.stale",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                donor_id=result.donor_id,
            )
            self._m_units_stale.inc()
            return False
        if result.unit_id in state.completed_units:
            self._release_donor_hold(result, now)
            self.log.record(
                now,
                "unit.duplicate",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                donor_id=result.donor_id,
            )
            self._m_units_duplicate.inc()
            # The whole unit was computed twice and this copy lost the
            # race: its items are the price of speculation.
            self._m_wasted_items.inc(result.items)
            return False

        if self.integrity.active and self.reputation.distrusted(result.donor_id):
            # A quarantined donor's answer is refused outright — its
            # leases were revoked at quarantine time, but a result can
            # still be in flight when the verdict lands.
            lease = self.leases.release(
                result.problem_id, result.unit_id, result.donor_id
            )
            donor = self._donors.get(result.donor_id)
            if donor is not None:
                donor.end_unit(result.problem_id, result.unit_id)
                donor.last_seen = now
            self.log.record(
                now,
                "unit.untrusted",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                donor_id=result.donor_id,
            )
            self._m_untrusted.inc()
            self._sync_donor_gauges()
            if lease is not None:
                self._recover_unit(lease.unit, now, reason="donor-quarantined")
            return False

        lease = self.leases.release(
            result.problem_id, result.unit_id, result.donor_id
        )

        donor = self._donors.get(result.donor_id)
        if donor is not None:
            donor.end_unit(result.problem_id, result.unit_id)
            donor.last_seen = now
            donor.units_completed += 1
            donor.items_completed += result.items
            donor.busy_seconds += result.compute_seconds
            donor.perf_for(result.problem_id).observe(
                result.items, result.compute_seconds
            )

        voting = state.voting.get(result.unit_id)
        if voting is None:
            # First-result-wins: the pre-replication contract, applied
            # verbatim when the unit needs a single vote.
            self._accept_result(state, result, now)
            return True

        if result.donor_id in voting.voters():
            self.log.record(
                now,
                "unit.duplicate",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                donor_id=result.donor_id,
            )
            self._m_units_duplicate.inc()
            return False
        digest = canonical_digest(result.value)
        self._journal("unit.vote", now, result=result)
        voting.votes.append(Vote(result.donor_id, digest, result))
        self.log.record(
            now,
            "unit.vote",
            problem_id=result.problem_id,
            unit_id=result.unit_id,
            donor_id=result.donor_id,
            votes=len(voting.votes),
            required=voting.required,
        )
        self._sync_donor_gauges()

        top_digest, top_count = voting.tally()  # type: ignore[misc]
        if top_count >= min(voting.required, self.integrity.quorum):
            winner = next(v for v in voting.votes if v.digest == top_digest)
            self._settle_votes(state, result.unit_id, voting, top_digest, now)
            self._accept_result(state, winner.result, now)
            return True

        if len(voting.votes) >= voting.required:
            # Every requested vote is in and none agree: someone lied
            # (or user code is nondeterministic).  Escalate — demand one
            # more independent opinion — until max_votes gives up.
            self._m_disagreements.inc()
            self.log.record(
                now,
                "unit.disagreement",
                problem_id=result.problem_id,
                unit_id=result.unit_id,
                votes=len(voting.votes),
            )
            if len(voting.votes) >= self.integrity.max_votes:
                self._fail_problem(
                    state,
                    now,
                    f"unit {result.unit_id}: no quorum after "
                    f"{len(voting.votes)} votes (nondeterministic or "
                    f"hostile results)",
                )
                return False
            voting.required = len(voting.votes) + 1
            self._journal(
                "unit.voting.require",
                now,
                pid=result.problem_id,
                uid=result.unit_id,
                required=voting.required,
            )
        unit = lease.unit if lease is not None else self._find_unit(
            state, result.unit_id
        )
        if unit is not None:
            self._ensure_vote_supply(state, unit, now, reason="await-quorum")
        return True

    def _accept_result(
        self, state: _ProblemState, result: WorkResult, now: float
    ) -> None:
        """Fold one accepted result into the problem — exactly once.

        Any other in-flight leases or queued copies of the unit are
        cancelled here; replicas that still arrive later hit the
        ``completed_units`` duplicate check.
        """
        # The fold is the journal's reason to exist: once appended (and
        # fsync'd) the result survives any crash after this line.
        self._journal("unit.fold", now, result=result)
        self.leases.release(result.problem_id, result.unit_id)
        self._drop_queued(state, result.unit_id)
        state.voting.pop(result.unit_id, None)

        unit_span = self._unit_spans.pop(
            (result.problem_id, result.unit_id), None
        )
        self.obs.tracer.event(
            "combine",
            now,
            parent=unit_span,
            problem_id=result.problem_id,
            unit_id=result.unit_id,
            items=result.items,
        )
        state.problem.data_manager.handle_result(result)
        state.completed_units.add(result.unit_id)
        state.units_completed += 1
        state.items_completed += result.items
        self.dispatch.completed(result.problem_id, result.items)
        self.log.record(
            now,
            "unit.completed",
            problem_id=result.problem_id,
            unit_id=result.unit_id,
            donor_id=result.donor_id,
            items=result.items,
            compute_seconds=result.compute_seconds,
            output_bytes=result.output_bytes,
        )
        self._m_units_completed.inc()
        self._m_items_completed.inc(result.items)
        self._m_bytes_out.inc(result.output_bytes)
        self._h_unit_seconds.observe(result.compute_seconds)
        self._fold_unit_meters(result)
        self._sync_donor_gauges()
        if unit_span is not None:
            self.obs.tracer.finish(
                unit_span, now, compute_seconds=result.compute_seconds
            )

        if state.problem.data_manager.is_complete():
            self._complete_problem(state, now)

    def _settle_votes(
        self,
        state: _ProblemState,
        unit_id: int,
        voting: _UnitIntegrity,
        winning_digest: bytes,
        now: float,
    ) -> None:
        """Credit/debit every voter's reputation once quorum is reached."""
        pid = state.problem.problem_id
        for vote in voting.votes:
            rep = self.reputation.record(vote.donor_id)
            if vote.digest == winning_digest:
                self._journal("rep", now, donor=vote.donor_id, field="agreements")
                rep.agreements += 1
                self._m_agreements.inc()
            else:
                self._journal(
                    "rep", now, donor=vote.donor_id, field="disagreements"
                )
                rep.disagreements += 1
                self._m_disagreements.inc()
                self.log.record(
                    now,
                    "unit.disagreement",
                    problem_id=pid,
                    unit_id=unit_id,
                    donor_id=vote.donor_id,
                )
                self._update_reputation(vote.donor_id, now)

    def _update_reputation(self, donor_id: str, now: float) -> None:
        """Re-score a donor; on quarantine/blacklist pull its work."""
        new_state = self.reputation.update_state(donor_id, self.integrity)
        if new_state not in (
            ReputationState.QUARANTINED,
            ReputationState.BLACKLISTED,
        ):
            return
        self.log.record(
            now, f"donor.{new_state.value}", donor_id=donor_id
        )
        self._m_quarantines.inc()
        self._g_quarantined.set(len(self.reputation.quarantined_ids()))
        donor = self._donors.get(donor_id)
        if donor is not None:
            donor.active_units.clear()
        for lease in self.leases.revoke_donor(donor_id):
            self._recover_unit(lease.unit, now, reason="donor-quarantined")
        self._sync_donor_gauges()

    def _fold_unit_meters(self, result: WorkResult) -> None:
        """Fold donor-collected per-unit stats into the live counters.

        Donors report through ``WorkResult.extra["meters"]`` (see
        :mod:`repro.obs.unitstats`); only whitelisted ``farm.align.*``,
        ``farm.cache.*``, ``farm.pipeline.*``, and ``farm.pool.*``
        names with positive
        finite amounts are
        accepted, so a buggy or hostile donor cannot inflate the
        framework's own accounting (``farm.units.*`` etc.).  Called
        only after the duplicate/stale checks, which makes the folding
        exactly-once per unit.
        """
        meters = result.extra.get("meters") if result.extra else None
        if not isinstance(meters, dict):
            return
        accepted = sorted(
            name
            for name in meters
            if isinstance(name, str)
            and name.startswith(
                ("farm.align.", "farm.cache.", "farm.pipeline.", "farm.pool.")
            )
        )
        for name in accepted:
            amount = meters[name]
            if not isinstance(amount, (int, float)):
                continue
            amount = float(amount)
            if not math.isfinite(amount) or amount <= 0:
                continue
            self.obs.meters.counter(name).inc(amount)

    def report_failure(
        self, problem_id: int, unit_id: int, donor_id: str, error: str, now: float
    ) -> None:
        """A donor's Algorithm raised on this unit.

        Transient failures (flaky donor) are healed by requeueing; a
        *poison unit* that fails on every donor would otherwise cycle
        forever, so after ``max_unit_attempts`` total attempts the whole
        problem is marked FAILED and the error surfaced to the user —
        a deterministic bug in user code must stop the job, not eat the
        pool.
        """
        state = self._problems.get(problem_id)
        lease = self.leases.release(problem_id, unit_id, donor_id)
        donor = self._donors.get(donor_id)
        if donor is not None:
            donor.end_unit(problem_id, unit_id)
            donor.last_seen = now
        if state is None or state.status is not ProblemStatus.RUNNING:
            return
        if unit_id in state.completed_units or lease is None:
            return
        unit = lease.unit
        self.log.record(
            now,
            "unit.failed",
            problem_id=problem_id,
            unit_id=unit_id,
            donor_id=donor_id,
            attempt=unit.attempts,
            error=error[:500],
        )
        self._m_units_failed.inc()
        self._sync_donor_gauges()
        if self.integrity.active:
            self._journal("rep", now, donor=donor_id, field="failures")
            self.reputation.record(donor_id).failures += 1
            self._update_reputation(donor_id, now)
            if state.status is not ProblemStatus.RUNNING:
                return  # quarantine fallout ended the problem meanwhile
        failed_span = self._unit_spans.pop((problem_id, unit_id), None)
        if failed_span is not None:
            self.obs.tracer.finish(failed_span, now, status="failed", error=error[:100])
        if unit.attempts >= self.max_unit_attempts:
            self._fail_problem(
                state,
                now,
                f"unit {unit_id} failed {unit.attempts} times; last error: {error}",
            )
        else:
            self._recover_unit(unit, now, reason="algorithm-error")

    def failure_reason(self, problem_id: int) -> str | None:
        """Why a FAILED problem failed (None otherwise)."""
        return self._failures.get(problem_id)

    def _fail_problem(self, state: _ProblemState, now: float, reason: str) -> None:
        self._journal(
            "problem.failed", now, pid=state.problem.problem_id, reason=reason
        )
        state.status = ProblemStatus.FAILED
        state.completed_at = now
        self._failures[state.problem.problem_id] = reason
        for lease in self.leases.outstanding(state.problem.problem_id):
            self.leases.release(lease.unit.problem_id, lease.unit.unit_id)
        self._close_unit_spans(state.problem.problem_id, now, "cancelled")
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()
        self.log.record(
            now,
            "problem.failed",
            problem_id=state.problem.problem_id,
            name=state.problem.name,
            reason=reason[:500],
        )
        self._m_problems_failed.inc()
        self._g_problems_running.set(len(self.active_problem_ids()))
        span = self._problem_spans.pop(state.problem.problem_id, None)
        if span is not None:
            self.obs.tracer.finish(span, now, status="failed", reason=reason[:100])

    def cancel_problem(self, problem_id: int, now: float = 0.0) -> bool:
        """Cancel a running problem; returns False when already ended.

        Every outstanding lease is released and the holding donor's
        slot freed (no leaked ``farm.donors.busy``); queued/voting
        state is dropped.  A donor that still reports a result for a
        cancelled unit hits the exactly-once stale path in
        :meth:`submit_result` — a clean ``False``, never an exception.
        """
        state = self._state(problem_id)
        if state.status is not ProblemStatus.RUNNING:
            return False
        self._journal("problem.cancelled", now, pid=problem_id)
        state.status = ProblemStatus.CANCELLED
        state.completed_at = now
        for lease in self.leases.outstanding(problem_id):
            donor = self._donors.get(lease.donor_id)
            if donor is not None:
                donor.end_unit(problem_id, lease.unit.unit_id)
            self.leases.release(problem_id, lease.unit.unit_id, lease.donor_id)
        self._close_unit_spans(problem_id, now, "cancelled")
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()
        self.log.record(
            now,
            "problem.cancelled",
            problem_id=problem_id,
            name=state.problem.name,
        )
        self._m_problems_cancelled.inc()
        self._g_problems_running.set(len(self.active_problem_ids()))
        self._sync_donor_gauges()
        span = self._problem_spans.pop(problem_id, None)
        if span is not None:
            self.obs.tracer.finish(span, now, status="cancelled")
        return True

    def expire_leases(self, now: float) -> int:
        """Requeue every unit whose lease has lapsed; returns the count."""
        expired = self.leases.expired(now)
        for lease in expired:
            donor = self._donors.get(lease.donor_id)
            if donor is not None:
                donor.end_unit(lease.unit.problem_id, lease.unit.unit_id)
            if self.integrity.active:
                self._journal("rep", now, donor=lease.donor_id, field="expiries")
                self.reputation.record(lease.donor_id).expiries += 1
                self._update_reputation(lease.donor_id, now)
            self._recover_unit(lease.unit, now, reason="lease-expired")
        if expired:
            self._m_leases_expired.inc(len(expired))
            self._sync_donor_gauges()
        return len(expired)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _requeue_unit(self, unit: WorkUnit, now: float, reason: str) -> None:
        state = self._problems.get(unit.problem_id)
        if state is None or state.status is not ProblemStatus.RUNNING:
            return
        if unit.unit_id in state.completed_units:
            return
        unit.status = UnitStatus.EXPIRED
        state.requeue.append(unit)
        self.log.record(
            now,
            "unit.requeued",
            problem_id=unit.problem_id,
            unit_id=unit.unit_id,
            reason=reason,
        )
        self._m_units_requeued.inc()
        span = self._unit_spans.pop((unit.problem_id, unit.unit_id), None)
        if span is not None:
            self.obs.tracer.finish(span, now, status="requeued", reason=reason)

    def _close_unit_spans(self, problem_id: int, now: float, status: str) -> None:
        """Finish any still-open unit spans of a problem that just ended."""
        for key in [k for k in self._unit_spans if k[0] == problem_id]:
            self.obs.tracer.finish(self._unit_spans.pop(key), now, status=status)

    @staticmethod
    def _drop_queued(state: _ProblemState, unit_id: int) -> None:
        """Purge every queued copy of a unit from both queues."""
        for queue in (state.requeue, state.replicas):
            for queued in [u for u in queue if u.unit_id == unit_id]:
                queue.remove(queued)

    @staticmethod
    def _queued_copies(state: _ProblemState, unit_id: int) -> int:
        return sum(
            1
            for queue in (state.requeue, state.replicas)
            for u in queue
            if u.unit_id == unit_id
        )

    def _find_unit(self, state: _ProblemState, unit_id: int) -> WorkUnit | None:
        """Locate a live WorkUnit object for *unit_id* (queued or leased)."""
        for queue in (state.requeue, state.replicas):
            for unit in queue:
                if unit.unit_id == unit_id:
                    return unit
        lease = self.leases.any_lease(state.problem.problem_id, unit_id)
        return lease.unit if lease is not None else None

    def _recover_unit(self, unit: WorkUnit, now: float, reason: str) -> None:
        """A copy of *unit* was lost (expiry/churn/quarantine): restore
        exactly as much supply as its vote requirement still needs."""
        state = self._problems.get(unit.problem_id)
        if state is None or state.status is not ProblemStatus.RUNNING:
            return
        if unit.unit_id in state.completed_units:
            return
        if unit.unit_id in state.voting:
            self._ensure_vote_supply(state, unit, now, reason)
        else:
            self._requeue_unit(unit, now, reason)

    def _ensure_vote_supply(
        self, state: _ProblemState, unit: WorkUnit, now: float, reason: str
    ) -> None:
        """Balance queued copies so votes + leases + queue == required.

        A deficit queues more copies (the first through the recovery
        requeue when the unit has no live supply at all, the rest as
        replicas); a surplus — e.g. a late vote landing after its
        expired copy was requeued — trims queued copies back.
        """
        voting = state.voting.get(unit.unit_id)
        if voting is None:
            return
        pid = state.problem.problem_id
        live = len(self.leases.holders(pid, unit.unit_id))
        votes = len(voting.votes)
        queued = self._queued_copies(state, unit.unit_id)
        deficit = voting.required - votes - live - queued
        while deficit < 0 and queued > 0:
            # Prefer trimming verification copies over recovery copies.
            trimmed = False
            for queue in (state.replicas, state.requeue):
                for candidate in queue:
                    if candidate.unit_id == unit.unit_id:
                        queue.remove(candidate)
                        deficit += 1
                        queued -= 1
                        trimmed = True
                        break
                if trimmed:
                    break
            if not trimmed:  # pragma: no cover - queued>0 guarantees a hit
                break
        for i in range(max(0, deficit)):
            if live + votes + queued == 0 and i == 0:
                # The unit vanished entirely: this is recovery, which
                # keeps the historical requeue path (and its events).
                self._requeue_unit(unit, now, reason)
            else:
                state.replicas.append(unit)
                self.log.record(
                    now,
                    "unit.replica",
                    problem_id=pid,
                    unit_id=unit.unit_id,
                    reason=reason,
                )

    def _complete_problem(self, state: _ProblemState, now: float) -> None:
        # A verification record: replaying the preceding unit.fold must
        # already have completed the problem, and recovery checks so.
        self._journal("problem.completed", now, pid=state.problem.problem_id)
        state.status = ProblemStatus.COMPLETE
        state.completed_at = now
        # Cancel anything still in flight for this problem.
        for lease in self.leases.outstanding(state.problem.problem_id):
            self.leases.release(lease.unit.problem_id, lease.unit.unit_id)
        self._close_unit_spans(state.problem.problem_id, now, "cancelled")
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()
        self.log.record(
            now,
            "problem.completed",
            problem_id=state.problem.problem_id,
            name=state.problem.name,
            units=state.units_completed,
            items=state.items_completed,
        )
        self._m_problems_completed.inc()
        self._g_problems_running.set(len(self.active_problem_ids()))
        span = self._problem_spans.pop(state.problem.problem_id, None)
        if span is not None:
            self.obs.tracer.finish(
                span, now, units=state.units_completed, items=state.items_completed
            )

    def _state(self, problem_id: int) -> _ProblemState:
        try:
            return self._problems[problem_id]
        except KeyError:
            raise KeyError(f"unknown problem {problem_id}") from None

    # ------------------------------------------------------------------
    # donor-facing fetch API (algorithm + blobs travel once per problem)
    # ------------------------------------------------------------------

    def get_algorithm(self, problem_id: int) -> Algorithm:
        """The Algorithm object donors cache for this problem."""
        return self._state(problem_id).problem.algorithm

    def get_blob(self, problem_id: int, key: str) -> bytes:
        return self._state(problem_id).problem.blobs[key]

    def blob_keys(self, problem_id: int) -> list[str]:
        return sorted(self._state(problem_id).problem.blobs)

    def get_shared_blob(self, problem_id: int, key: str) -> bytes:
        """Serialized bytes of a shared payload blob (cache-miss path)."""
        return self._state(problem_id).problem.data_manager.shared_blob(key)

    def shared_blob_keys(self, problem_id: int) -> list[str]:
        return self._state(problem_id).problem.data_manager.shared_blob_keys()
