"""Content-addressed payload blobs and the donor-side cache.

The paper's DSEARCH "caches data on the client machines" so that after
the first transfer the server sends only slice indices.  This module is
that mechanism, generalised: a :class:`~repro.core.problem.DataManager`
may *share* any payload component (the query set, the whole database,
a stage's tree) as a blob, and work-unit payloads then carry a tiny
:class:`BlobRef` in its place.  Donors keep a byte-budgeted LRU
:class:`BlobCache`; a blob crosses the wire to a given donor once and
every later unit referencing it ships only the reference.

Content addressing: a blob's key is the hex blake2b-16 of its
*canonical pickle* (:func:`canonical_dumps` — the same memo-free
encoding result voting uses, see
:func:`repro.core.integrity.canonical_digest`).  Keys therefore
deduplicate across problems: a second search against the same database
reuses the copy already sitting in every donor's cache, and a fetched
blob is verified by rehashing the received bytes — a damaged transfer
can never poison the cache.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import unitstats
from repro.rmi.errors import ChecksumError

#: Serialized size of one :class:`BlobRef` inside a payload envelope
#: (key hex + size + pickle framing), charged by the server's byte
#: accounting for every reference shipped in a unit.
BLOB_REF_WIRE_BYTES = 64

#: Default donor cache budget: generous for the paper's workloads
#: (a whole 2M-sequence database is ~1 GB) without being unbounded.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def canonical_dumps(value: Any) -> bytes:
    """The canonical (memo-free) pickle of *value*.

    Identical values produce identical bytes regardless of how the
    object graph shares substructure, so hashing the result gives a
    content address.  Raises whatever the pickler raises for
    unpicklable values — shared payload data must serialize anyway.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.fast = True  # no memo: identical values, identical bytes
    pickler.dump(value)
    return buffer.getvalue()


def blob_key(data: bytes) -> str:
    """Content address of serialized blob bytes (hex blake2b-16)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def payload_nbytes(value: Any) -> int:
    """Actual serialized size of *value* — what a wire transfer costs.

    Uses the ordinary (memoized) pickle, matching what the RMI layer
    ships; returns 0 for unpicklable values (which never leave the
    process anyway).
    """
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass(frozen=True, slots=True)
class BlobRef:
    """A payload placeholder: fetch blob *key*, expect *size* bytes.

    ``size`` is advisory (network modelling and cache budgeting); the
    authoritative check on fetched bytes is the digest embedded in
    ``key`` itself.
    """

    key: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("blob size cannot be negative")


def iter_blob_refs(payload: Any) -> list[BlobRef]:
    """Every :class:`BlobRef` inside *payload*, deduplicated, in
    deterministic (first-seen) order.  Walks tuples, lists and dict
    values — the shapes unit payloads are built from."""
    seen: dict[str, BlobRef] = {}

    def walk(node: Any) -> None:
        if isinstance(node, BlobRef):
            seen.setdefault(node.key, node)
        elif isinstance(node, (tuple, list)):
            for item in node:
                walk(item)
        elif isinstance(node, dict):
            for item in node.values():
                walk(item)

    walk(payload)
    return list(seen.values())


def resolve_payload(payload: Any, lookup: Callable[[BlobRef], Any]) -> Any:
    """Rebuild *payload* with every :class:`BlobRef` replaced by
    ``lookup(ref)``.  Containers without refs are returned as-is (no
    copy), so ref-free payloads pass through untouched."""
    if isinstance(payload, BlobRef):
        return lookup(payload)
    if isinstance(payload, tuple):
        resolved = tuple(resolve_payload(item, lookup) for item in payload)
        return payload if resolved == payload else resolved
    if isinstance(payload, list):
        resolved_list = [resolve_payload(item, lookup) for item in payload]
        return payload if resolved_list == payload else resolved_list
    if isinstance(payload, dict):
        resolved_dict = {
            k: resolve_payload(v, lookup) for k, v in payload.items()
        }
        return payload if resolved_dict == payload else resolved_dict
    return payload


class BlobCache:
    """Donor-side LRU blob cache with a byte budget.

    Entries are decoded objects keyed by content address; ``size`` is
    the serialized byte count (what the budget meters).  All traffic is
    reported through *sink* under ``farm.cache.*`` names — by default
    :func:`repro.obs.unitstats.record`, which is a no-op outside a
    collection context, so the cache can report unconditionally.  The
    simulator passes a meter-backed sink instead.

    Fetch integrity: received bytes are rehashed against the key; a
    mismatch (or a transport :class:`ChecksumError`) triggers exactly
    one refetch, and a second failure raises — a persistently corrupt
    source must fail the unit loudly, not loop.
    """

    #: Cache entry for a reference tracked without content (trace mode).
    _PLACEHOLDER = object()

    def __init__(
        self,
        budget_bytes: int = DEFAULT_CACHE_BYTES,
        sink: Callable[[str, float], None] | None = None,
    ):
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = budget_bytes
        self._sink = sink if sink is not None else unitstats.record
        self._entries: OrderedDict[str, tuple[int, Any]] = OrderedDict()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.refetches = 0
        self.bypasses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def contains(self, key: str) -> bool:
        """Membership test without touching LRU order or counters."""
        return key in self._entries

    def keys(self) -> list[str]:
        return list(self._entries)

    def _record(self, name: str, amount: float = 1.0) -> None:
        self._sink(name, amount)

    def _fetch_verified(self, ref: BlobRef, fetch: Callable[[BlobRef], bytes]) -> bytes:
        data: bytes | None = None
        try:
            data = fetch(ref)
        except ChecksumError:
            data = None
        if data is not None and blob_key(data) == ref.key:
            return data
        # One damaged transfer is weather; retry exactly once.
        self.refetches += 1
        self._record("farm.cache.refetches")
        data = fetch(ref)
        if blob_key(data) != ref.key:
            raise ChecksumError(
                f"blob {ref.key!r}: digest mismatch after refetch"
            )
        return data

    def _evict_to_budget(self) -> None:
        while self.bytes_used > self.budget_bytes and self._entries:
            _key, (size, _obj) = self._entries.popitem(last=False)
            self.bytes_used -= size
            self.evictions += 1
            self._record("farm.cache.evictions")

    def ensure(
        self, ref: BlobRef, fetch: Callable[[BlobRef], bytes] | None = None
    ) -> Any:
        """One counted cache access for *ref*; returns the decoded blob.

        On a miss with *fetch*, downloads, verifies and decodes the
        blob; without *fetch* (trace replay: sizes matter, content does
        not) the reference is tracked with a placeholder entry so hit
        accounting and eviction behave identically.  A blob larger than
        the whole budget is returned but not cached (``bypass``), so
        ``bytes_used`` can never exceed the budget.
        """
        entry = self._entries.get(ref.key)
        if entry is not None:
            self._entries.move_to_end(ref.key)
            self.hits += 1
            self._record("farm.cache.hits")
            return entry[1]
        self.misses += 1
        self._record("farm.cache.misses")
        if fetch is None:
            obj: Any = self._PLACEHOLDER
            size = ref.size
        else:
            data = self._fetch_verified(ref, fetch)
            self._record("farm.cache.fetch.bytes", len(data))
            obj = pickle.loads(data)
            size = len(data)
        if size > self.budget_bytes:
            self.bypasses += 1
            self._record("farm.cache.bypass")
            return obj
        self._entries[ref.key] = (size, obj)
        self.bytes_used += size
        self._evict_to_budget()
        return obj


def fetch_and_resolve(
    payload: Any,
    cache: BlobCache,
    fetch: Callable[[BlobRef], bytes],
) -> Any:
    """Resolve every reference in *payload* through *cache*.

    Each distinct reference costs exactly one counted cache access;
    resolution then substitutes from the fetched objects, so a blob
    evicted mid-unit (tiny budget, several refs) still resolves.
    """
    refs = iter_blob_refs(payload)
    if not refs:
        return payload
    objects = {ref.key: cache.ensure(ref, fetch) for ref in refs}
    return resolve_payload(payload, lambda ref: objects[ref.key])
