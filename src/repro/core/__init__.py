"""The programmable task-farming framework (the paper's contribution).

A user extends two classes, exactly as in the paper's Java system:

* :class:`~repro.core.problem.DataManager` runs **in the server** and
  "specifies how the problem is to be partitioned into units of work and
  the intermediate results put together".
* :class:`~repro.core.problem.Algorithm` runs **in the client** and
  "specifies the actual computation".

Bundled with input data these form a self-contained
:class:`~repro.core.problem.Problem` submitted to the
:class:`~repro.core.server.TaskFarmServer`.  The server is written as a
pure state machine — every method takes the current time — so exactly
the same scheduling code runs under wall-clock time in the live
multi-process cluster and under simulated time in the discrete-event
cluster.
"""

from repro.core.client import DonorClient, InProcessServerPort
from repro.core.problem import Algorithm, DataManager, FunctionAlgorithm, Problem
from repro.core.scheduler import (
    AdaptiveGranularity,
    FixedGranularity,
    GranularityPolicy,
)
from repro.core.server import Assignment, ProblemStatus, TaskFarmServer
from repro.core.workunit import UnitPayload, UnitStatus, WorkResult, WorkUnit

__all__ = [
    "AdaptiveGranularity",
    "Algorithm",
    "Assignment",
    "DataManager",
    "DonorClient",
    "FixedGranularity",
    "FunctionAlgorithm",
    "GranularityPolicy",
    "InProcessServerPort",
    "Problem",
    "ProblemStatus",
    "TaskFarmServer",
    "UnitPayload",
    "UnitStatus",
    "WorkResult",
    "WorkUnit",
]
