"""Work units and results — the currency between server and donors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class UnitStatus(enum.Enum):
    """Lifecycle of a work unit inside the server."""

    PENDING = "pending"      # created, waiting to be issued
    ISSUED = "issued"        # leased to a donor
    COMPLETED = "completed"  # result applied to the DataManager
    EXPIRED = "expired"      # lease ran out; requeued for reissue


@dataclass(frozen=True, slots=True)
class UnitPayload:
    """What a :class:`~repro.core.problem.DataManager` hands out.

    Attributes
    ----------
    payload:
        Opaque, picklable input for the Algorithm.
    items:
        How many indivisible work items the payload contains (e.g.
        database sequences for DSEARCH, candidate trees for DPRml).
        The adaptive scheduler sizes future units in these terms.
    input_bytes:
        Wire size of the payload as handed out — the *inline* bytes
        only, excluding the content of any shared blobs it references
        (blob transfers are charged separately, on first delivery per
        donor).  Used by the network model and the byte meters.
    cost_hint:
        Optional abstract compute cost (work-units); simulated donors
        charge ``cost_hint / speed`` seconds when executing offline.
    """

    payload: Any
    items: int = 1
    input_bytes: int = 0
    cost_hint: float = 0.0

    def __post_init__(self) -> None:
        if self.items <= 0:
            raise ValueError(f"unit must contain at least one item, got {self.items}")


@dataclass(slots=True)
class WorkUnit:
    """A :class:`UnitPayload` wrapped with identity and bookkeeping."""

    problem_id: int
    unit_id: int
    payload: Any
    items: int
    input_bytes: int = 0
    cost_hint: float = 0.0
    status: UnitStatus = UnitStatus.PENDING
    attempts: int = 0

    @classmethod
    def from_payload(
        cls, problem_id: int, unit_id: int, up: UnitPayload
    ) -> "WorkUnit":
        return cls(
            problem_id=problem_id,
            unit_id=unit_id,
            payload=up.payload,
            items=up.items,
            input_bytes=up.input_bytes,
            cost_hint=up.cost_hint,
        )


@dataclass(frozen=True, slots=True)
class WorkResult:
    """A completed unit travelling back to the server.

    Attributes
    ----------
    problem_id, unit_id:
        Identify the unit this result answers.
    value:
        The Algorithm's output (opaque to the framework).
    donor_id:
        Which donor computed it.
    compute_seconds:
        Donor-measured execution time; feeds the adaptive scheduler's
        per-donor performance model.
    items:
        Echo of the unit's item count (lets the performance model
        compute items/second without a server-side lookup).
    output_bytes:
        Estimated wire size of ``value``.
    """

    problem_id: int
    unit_id: int
    value: Any
    donor_id: str = ""
    compute_seconds: float = 0.0
    items: int = 1
    output_bytes: int = 0
    extra: dict = field(default_factory=dict)
