"""Write-ahead journal: durable server state, crash recovery, replay.

The checkpoint (:mod:`repro.core.checkpoint`) captures a point-in-time
snapshot; everything the server does *between* checkpoints used to live
only in memory, so a ``kill -9`` lost every result folded since the
last manual save.  This module closes that gap with a classic
write-ahead journal:

* every state mutation (problem submit, donor churn, fresh unit cut,
  quorum vote, accepted result fold, reputation delta, lifecycle
  change) is appended as one CRC32-framed, fsync'd record *before* the
  server acknowledges the call that caused it;
* segments rotate at a byte budget and are compacted away once a
  checkpoint (VERSION 3 records the journal LSN it covers) supersedes
  them;
* :func:`recover` rebuilds a fresh server from ``checkpoint +
  journal tail``, truncating a torn tail at the last valid frame
  (counted loudly via ``farm.journal.torn.truncated``) instead of
  crashing.

What is journaled vs. reconstructed
-----------------------------------
Only *irreversible* mutations are journaled.  Leases, grants, requeues
and heartbeats are deliberately not: after a crash their donors must
re-earn the units anyway, so recovery parks every cut-but-unfolded unit
on the requeue and lets the normal scheduling paths reissue it.  Fresh
cuts *are* journaled (``unit.cut``) because the unit-id ↔ payload
binding must survive: replay re-cuts by calling
``DataManager.next_unit(recorded_items)`` in journal order, which the
DataManager contract makes deterministic, and asserts the ids line up
— a divergence fails loudly rather than folding results into the wrong
slices.

Replay applies records as primitive state edits (the same style as
checkpoint restore), never through the public metered entry points, so
a recovered server's meters count only post-recovery work and the
event log stays causal.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol

from repro.core.integrity import Vote, _UnitIntegrity, canonical_digest
from repro.core.server import ProblemStatus, TaskFarmServer, _ProblemState
from repro.core.workunit import WorkUnit
from repro.util.events import EventLog

MAGIC = b"TFWJ"
SEGMENT_VERSION = 1
_HEADER = MAGIC + struct.pack("<I", SEGMENT_VERSION)
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
#: Reject frames whose length field claims more than this — a torn or
#: overwritten length would otherwise make the reader swallow garbage.
_MAX_FRAME_BYTES = 64 * 1024 * 1024
DEFAULT_SEGMENT_BYTES = 256 * 1024


class JournalError(RuntimeError):
    """The journal is corrupt somewhere other than its tail, or replay
    diverged from the recorded history."""


def _segment_name(first_lsn: int) -> str:
    return f"wal-{first_lsn:012d}.log"


def _segment_first_lsn(name: str) -> int:
    try:
        return int(name[len("wal-"):-len(".log")])
    except ValueError as exc:
        raise JournalError(f"not a journal segment name: {name!r}") from exc


class SegmentStore(Protocol):
    """Byte-level storage for journal segments.

    Two implementations: :class:`DirStore` (real files, real fsync) for
    live deployments, and :class:`MemoryStore` so simulated recovery
    drills run the identical framing/truncation code on real bytes
    without touching disk.
    """

    def names(self) -> list[str]: ...
    def read(self, name: str) -> bytes: ...
    def create(self, name: str) -> None: ...
    def append(self, name: str, data: bytes) -> None: ...
    def sync(self, name: str) -> None: ...
    def truncate(self, name: str, size: int) -> None: ...
    def delete(self, name: str) -> None: ...


class MemoryStore:
    """In-memory segment store for simulated crash drills."""

    def __init__(self) -> None:
        self._segments: dict[str, bytearray] = {}

    def names(self) -> list[str]:
        return sorted(self._segments)

    def read(self, name: str) -> bytes:
        return bytes(self._segments[name])

    def create(self, name: str) -> None:
        self._segments[name] = bytearray()

    def append(self, name: str, data: bytes) -> None:
        self._segments[name] += data

    def sync(self, name: str) -> None:
        pass  # memory is "durable" for the drill's purposes

    def truncate(self, name: str, size: int) -> None:
        del self._segments[name][size:]

    def delete(self, name: str) -> None:
        self._segments.pop(name, None)


class DirStore:
    """Filesystem segment store: one file per segment under *root*."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._open: dict[str, Any] = {}

    def names(self) -> list[str]:
        return sorted(p.name for p in self.root.glob("wal-*.log"))

    def read(self, name: str) -> bytes:
        return (self.root / name).read_bytes()

    def create(self, name: str) -> None:
        self._release(name)
        self._open[name] = open(self.root / name, "wb")

    def append(self, name: str, data: bytes) -> None:
        handle = self._open.get(name)
        if handle is None:
            handle = open(self.root / name, "ab")
            self._open[name] = handle
        handle.write(data)

    def sync(self, name: str) -> None:
        handle = self._open.get(name)
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())

    def truncate(self, name: str, size: int) -> None:
        self._release(name)
        os.truncate(self.root / name, size)

    def delete(self, name: str) -> None:
        self._release(name)
        (self.root / name).unlink(missing_ok=True)

    def close(self) -> None:
        for name in list(self._open):
            self._release(name)

    def _release(self, name: str) -> None:
        handle = self._open.pop(name, None)
        if handle is not None:
            handle.close()


class JournalWriter:
    """Appends CRC32-framed records, fsyncing each before returning.

    The fsync-per-append is the durability contract: by the time the
    server acknowledges a donor's call, every record that call produced
    is on stable storage, so a crash can only lose calls that were
    never acknowledged — which donors retry anyway.
    """

    def __init__(
        self,
        store: SegmentStore,
        start_lsn: int = 1,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        meters=None,
    ):
        if start_lsn < 1:
            raise ValueError("start_lsn must be >= 1")
        self.store = store
        self.next_lsn = start_lsn
        self.segment_bytes = segment_bytes
        self._segment: str | None = None
        self._segment_size = 0
        if meters is not None:
            self._m_records = meters.counter("farm.journal.records")
            self._m_bytes = meters.counter("farm.journal.bytes")
            self._m_fsyncs = meters.counter("farm.journal.fsyncs")
        else:
            self._m_records = self._m_bytes = self._m_fsyncs = None

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (``start_lsn - 1``
        when nothing has been written yet)."""
        return self.next_lsn - 1

    def append(self, kind: str, now: float, **fields: Any) -> int:
        record = {"lsn": self.next_lsn, "kind": kind, "now": now, **fields}
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if self._segment is None or self._segment_size >= self.segment_bytes:
            self._open_segment()
        self.store.append(self._segment, frame)
        self.store.sync(self._segment)
        self._segment_size += len(frame)
        self.next_lsn += 1
        if self._m_records is not None:
            self._m_records.inc()
            self._m_bytes.inc(len(frame))
            self._m_fsyncs.inc()
        return record["lsn"]

    def rotate(self) -> None:
        """Seal the active segment; the next append opens a fresh one.

        Called at checkpoint time so every segment before the rotation
        point is fully covered by the checkpoint and compactable.
        """
        self._segment = None
        self._segment_size = 0

    def _open_segment(self) -> None:
        # A leftover segment with this first-LSN can only be one that
        # recovery found to contain no valid frames (otherwise next_lsn
        # would be past it) — creating simply truncates it.
        self._segment = _segment_name(self.next_lsn)
        self.store.create(self._segment)
        self.store.append(self._segment, _HEADER)
        self.store.sync(self._segment)
        self._segment_size = len(_HEADER)


def compact(store: SegmentStore, upto_lsn: int) -> int:
    """Delete segments made redundant by a checkpoint covering
    *upto_lsn*; returns how many were removed.

    A segment is redundant when every record it holds has
    ``lsn <= upto_lsn`` — i.e. the *next* segment starts at or before
    ``upto_lsn + 1``.  The newest segment is always kept (it is, or
    will become, the active tail).
    """
    names = store.names()
    removed = 0
    for i, name in enumerate(names[:-1]):
        if _segment_first_lsn(names[i + 1]) <= upto_lsn + 1:
            store.delete(name)
            removed += 1
    return removed


def _scan_segment(data: bytes) -> tuple[list[dict], int, str | None]:
    """Parse one segment's frames.

    Returns ``(records, valid_end_offset, error)``; *error* is None for
    a clean segment, otherwise describes the first invalid byte run
    (the caller decides whether that means a torn tail or corruption).
    """
    if len(data) < len(_HEADER) or data[: len(MAGIC)] != MAGIC:
        return [], 0, "bad or truncated segment header"
    (version,) = struct.unpack_from("<I", data, len(MAGIC))
    if version != SEGMENT_VERSION:
        return [], 0, f"segment version {version}, expected {SEGMENT_VERSION}"
    records: list[dict] = []
    offset = len(_HEADER)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return records, offset, "truncated frame header"
        length, crc = _FRAME.unpack_from(data, offset)
        if length == 0 or length > _MAX_FRAME_BYTES:
            return records, offset, f"implausible frame length {length}"
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return records, offset, "truncated frame payload"
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, "frame CRC mismatch"
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            return records, offset, f"undecodable frame: {exc}"
        records.append(record)
        offset = end
    return records, offset, None


def read_journal(store: SegmentStore, meters=None) -> tuple[list[dict], int, int]:
    """Read every valid record; truncate a torn tail in place.

    Returns ``(records, next_lsn, torn_bytes)``.  An invalid frame in
    the *last* segment is the expected signature of a crash mid-write:
    the segment is physically truncated back to its last valid frame
    (metered via ``farm.journal.torn.truncated``).  Anywhere else it is
    real corruption and raises :class:`JournalError`.
    """
    names = store.names()
    records: list[dict] = []
    torn_bytes = 0
    prev_lsn: int | None = None
    for i, name in enumerate(names):
        data = store.read(name)
        frames, valid_end, error = _scan_segment(data)
        if error is not None:
            if i != len(names) - 1:
                raise JournalError(
                    f"{name}: {error} (corruption before the journal tail)"
                )
            torn_bytes = len(data) - valid_end
            if meters is not None:
                meters.counter("farm.journal.torn.truncated").inc()
            if valid_end <= len(_HEADER):
                store.delete(name)
            else:
                store.truncate(name, valid_end)
        for record in frames:
            lsn = record.get("lsn")
            if not isinstance(lsn, int):
                raise JournalError(f"{name}: record without an LSN")
            if prev_lsn is not None and lsn != prev_lsn + 1:
                raise JournalError(f"{name}: LSN gap {prev_lsn} -> {lsn}")
            prev_lsn = lsn
            records.append(record)
    if records:
        next_lsn = records[-1]["lsn"] + 1
    elif names:
        next_lsn = max(_segment_first_lsn(n) for n in store.names() or names)
    else:
        next_lsn = 1
    return records, next_lsn, torn_bytes


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What :func:`recover` did."""

    restored_problems: list[int]
    replayed: int
    next_lsn: int
    checkpoint_lsn: int
    torn_bytes: int


def _replay_fold(server: TaskFarmServer, result, now: float) -> None:
    """Re-apply one accepted result, mirroring ``_accept_result`` minus
    meters/log/tracer (recovery must not re-count pre-crash work)."""
    state = server._problems[result.problem_id]
    if result.unit_id in state.completed_units:
        raise JournalError(
            f"replay divergence: unit {result.unit_id} of problem "
            f"{result.problem_id} folded twice"
        )
    server.leases.release(result.problem_id, result.unit_id)
    TaskFarmServer._drop_queued(state, result.unit_id)
    state.voting.pop(result.unit_id, None)
    state.problem.data_manager.handle_result(result)
    state.completed_units.add(result.unit_id)
    state.units_completed += 1
    state.items_completed += result.items
    if state.problem.data_manager.is_complete():
        state.status = ProblemStatus.COMPLETE
        state.completed_at = now
        for lease in server.leases.outstanding(result.problem_id):
            server.leases.release(lease.unit.problem_id, lease.unit.unit_id)
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()


def _apply(server: TaskFarmServer, record: dict) -> None:
    """Apply one journal record to *server* as a primitive state edit."""
    kind = record["kind"]
    now = record["now"]
    if kind == "problem.submit":
        problem = record["problem"]
        if problem.problem_id in server._problems:
            raise JournalError(
                f"replay divergence: problem {problem.problem_id} submitted twice"
            )
        server._problems[problem.problem_id] = _ProblemState(problem, now)
    elif kind == "donor.register":
        server.register_donor(record["donor"], now, slots=record["slots"])
    elif kind == "donor.deregister":
        server.deregister_donor(record["donor"], now)
    elif kind == "unit.cut":
        state = server._problems[record["pid"]]
        if record["uid"] != state.next_unit_id:
            raise JournalError(
                f"replay divergence: journal cut unit {record['uid']} but "
                f"problem {record['pid']} is at unit {state.next_unit_id}"
            )
        payload = state.problem.data_manager.next_unit(record["items"])
        if payload is None or payload.items != record["items"]:
            got = "nothing" if payload is None else f"{payload.items} items"
            raise JournalError(
                f"replay divergence: re-cutting unit {record['uid']} of "
                f"problem {record['pid']} yielded {got}, journal recorded "
                f"{record['items']} items"
            )
        unit = WorkUnit.from_payload(record["pid"], state.next_unit_id, payload)
        state.next_unit_id += 1
        # Never re-granted during replay: every unfolded unit parks on
        # the requeue and is reissued by normal scheduling afterwards.
        state.requeue.append(unit)
    elif kind == "unit.voting.open":
        state = server._problems[record["pid"]]
        state.voting[record["uid"]] = _UnitIntegrity(required=record["required"])
    elif kind == "unit.voting.require":
        state = server._problems[record["pid"]]
        state.voting[record["uid"]].required = record["required"]
    elif kind == "unit.vote":
        result = record["result"]
        state = server._problems[result.problem_id]
        voting = state.voting[result.unit_id]
        voting.votes.append(
            Vote(result.donor_id, canonical_digest(result.value), result)
        )
    elif kind == "unit.fold":
        _replay_fold(server, record["result"], now)
    elif kind == "rep":
        rep = server.reputation.record(record["donor"])
        field = record["field"]
        setattr(rep, field, getattr(rep, field) + 1)
        if field != "agreements":
            # No leases exist during replay, so the quarantine side
            # effects of _update_reputation reduce to the transition.
            server.reputation.update_state(record["donor"], server.integrity)
    elif kind == "problem.failed":
        state = server._problems[record["pid"]]
        state.status = ProblemStatus.FAILED
        state.completed_at = now
        server._failures[record["pid"]] = record["reason"]
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()
    elif kind == "problem.cancelled":
        state = server._problems[record["pid"]]
        state.status = ProblemStatus.CANCELLED
        state.completed_at = now
        state.requeue.clear()
        state.replicas.clear()
        state.voting.clear()
    elif kind == "problem.completed":
        state = server._problems[record["pid"]]
        if state.status is not ProblemStatus.COMPLETE:
            raise JournalError(
                f"replay divergence: journal completed problem "
                f"{record['pid']} but replay left it {state.status.value}"
            )
    else:
        raise JournalError(f"unknown journal record kind {kind!r}")


def recover(
    server: TaskFarmServer,
    store: SegmentStore,
    checkpoint: bytes | None = None,
    now: float = 0.0,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    gateway=None,
) -> RecoveryReport:
    """Rebuild a *fresh* server from ``checkpoint + journal tail``.

    Deterministic: the checkpoint restores the snapshot it covers, then
    every journal record past its ``journal_lsn`` is replayed in order.
    A torn tail is truncated at the last valid frame (see
    :func:`read_journal`); the result is a valid shorter history whose
    lost suffix donors simply recompute.  On return the server journals
    into *store* at the next LSN, so recovery composes with further
    crashes.

    When the dead server ran a job gateway
    (:class:`repro.core.gateway.JobGateway`), pass a fresh gateway
    already attached to *server*: the checkpoint's gateway snapshot is
    restored into it, ``gateway.*`` journal records are replayed
    through it, and a final ``gateway.reconcile`` folds terminal
    problem statuses into jobs and rebuilds the fair-share accounting.
    A journal that contains gateway state while ``gateway`` is None
    fails loudly — silently dropping queued jobs is not recovery.
    """
    from repro.core.checkpoint import parse_checkpoint, restore_checkpoint

    meters = server.obs.meters
    started = time.perf_counter()
    # Replayed records carry pre-crash timestamps, which would violate
    # the live log's causal order — replay writes to a scratch log.
    real_log = server.log
    server.log = EventLog()
    server.journal = None  # replay must not re-journal itself
    checkpoint_lsn = 0
    restored: list[int] = []
    try:
        if checkpoint is not None:
            blob = parse_checkpoint(checkpoint, origin="recovery checkpoint")
            checkpoint_lsn = blob.journal_lsn
            restored = restore_checkpoint(blob, server, now)
            if blob.gateway is not None:
                if gateway is None:
                    raise JournalError(
                        "checkpoint contains gateway state but no gateway "
                        "was provided to recover() — restart with the "
                        "gateway enabled (e.g. repro-server --tenants)"
                    )
                gateway.restore(blob.gateway)
        records, next_lsn, torn_bytes = read_journal(store, meters=meters)
        replayed = 0
        for record in records:
            if record["lsn"] <= checkpoint_lsn:
                continue
            if record["kind"].startswith("gateway."):
                if gateway is None:
                    raise JournalError(
                        "journal contains gateway records but no gateway "
                        "was provided to recover() — restart with the "
                        "gateway enabled (e.g. repro-server --tenants)"
                    )
                gateway.replay(record)
            else:
                _apply(server, record)
            replayed += 1
        # A torn tail can rip a unit's voting.open while its cut (and a
        # result already in flight to a donor) survive; under a
        # replicated policy every unfolded unit must re-earn its
        # quorum, so re-open voting before re-balancing supply.
        if server.integrity.active and server.integrity.replication > 1:
            for state in server._problems.values():
                if state.status is not ProblemStatus.RUNNING:
                    continue
                for unit in state.requeue:
                    if unit.unit_id not in state.voting:
                        state.voting[unit.unit_id] = _UnitIntegrity(
                            required=server.integrity.replication
                        )
        # Re-balance each replicated unit's supply against its replayed
        # votes (the journal-replay twin of checkpoint restore's pass),
        # then bring the gauges in line with the rebuilt state.
        for state in server._problems.values():
            if state.status is not ProblemStatus.RUNNING:
                continue
            for unit_id in list(state.voting):
                unit = server._find_unit(state, unit_id)
                if unit is not None:
                    server._ensure_vote_supply(state, unit, now, reason="recover")
        server._g_problems_running.set(len(server.active_problem_ids()))
        server._g_quarantined.set(len(server.reputation.quarantined_ids()))
        server._sync_donor_gauges()
        if gateway is not None:
            gateway.reconcile(now)
    finally:
        server.log = real_log
    server.log.record(
        now,
        "server.recovered",
        replayed=replayed,
        checkpoint_lsn=checkpoint_lsn,
        torn_bytes=torn_bytes,
    )
    meters.counter("farm.recovery.replayed").inc(replayed)
    meters.counter("farm.recovery.seconds").inc(time.perf_counter() - started)
    server.journal = JournalWriter(
        store, start_lsn=next_lsn, segment_bytes=segment_bytes, meters=meters
    )
    return RecoveryReport(
        restored_problems=restored,
        replayed=replayed,
        next_lsn=next_lsn,
        checkpoint_lsn=checkpoint_lsn,
        torn_bytes=torn_bytes,
    )


def torn_tail(store: SegmentStore, nbytes: int) -> int:
    """Chop up to *nbytes* off the newest segment (chaos helper).

    Simulates a crash that left a partially written frame — or ripped
    out several fsync'd ones — at the journal tail.  Returns the bytes
    actually removed.
    """
    names = store.names()
    if not names or nbytes <= 0:
        return 0
    name = names[-1]
    size = len(store.read(name))
    removed = min(nbytes, size)
    if removed == size:
        store.delete(name)
    else:
        store.truncate(name, size - removed)
    return removed
