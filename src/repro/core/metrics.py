"""Post-hoc accounting over the server's event log.

Every number the benchmarks report — makespan, speedup, donor
utilisation, overhead from churn — is derived here from the event
stream, so live and simulated runs are measured identically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.util.events import EventLog


@dataclass(frozen=True, slots=True)
class ProblemMetrics:
    """Summary of one problem's run."""

    problem_id: int
    name: str
    makespan: float
    units_completed: int
    items_completed: int
    units_requeued: int
    duplicate_results: int
    mean_unit_seconds: float
    units_issued: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


@dataclass(slots=True)
class DonorMetrics:
    """Summary of one donor's contribution."""

    donor_id: str
    units_completed: int = 0
    items_completed: int = 0
    busy_seconds: float = 0.0
    first_seen: float = 0.0
    last_seen: float = 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of the donor's time in the pool.

        A donor whose whole recorded presence is a single instant (one
        event, or a single instantaneous unit) has zero span; if it
        nevertheless did work it was busy for all of the time we saw it,
        so report 1.0 rather than dividing by zero — and 0.0 only when
        it truly did nothing.
        """
        span = self.last_seen - self.first_seen
        if span <= 0:
            return 1.0 if self.busy_seconds > 0 else 0.0
        return min(1.0, self.busy_seconds / span)


@dataclass(slots=True)
class RunMetrics:
    """Aggregate view of a whole run (possibly many problems)."""

    problems: dict[int, ProblemMetrics] = field(default_factory=dict)
    donors: dict[str, DonorMetrics] = field(default_factory=dict)
    total_span: float = 0.0

    @property
    def total_busy_seconds(self) -> float:
        return sum(d.busy_seconds for d in self.donors.values())

    @property
    def total_units_completed(self) -> int:
        return sum(p.units_completed for p in self.problems.values())

    @property
    def total_items_completed(self) -> int:
        return sum(p.items_completed for p in self.problems.values())

    @property
    def total_units_requeued(self) -> int:
        return sum(p.units_requeued for p in self.problems.values())

    @property
    def total_bytes_in(self) -> int:
        return sum(p.bytes_in for p in self.problems.values())

    @property
    def total_bytes_out(self) -> int:
        return sum(p.bytes_out for p in self.problems.values())

    @property
    def mean_utilization(self) -> float:
        if not self.donors:
            return 0.0
        return sum(d.utilization for d in self.donors.values()) / len(self.donors)


def problem_metrics(log: EventLog, problem_id: int) -> ProblemMetrics:
    """Extract one problem's metrics from an event log."""
    submitted = None
    completed = None
    name = ""
    units = items = requeued = duplicates = 0
    issued = bytes_in = bytes_out = 0
    unit_seconds: list[float] = []
    for event in log:
        if event.data.get("problem_id") != problem_id:
            continue
        if event.kind == "problem.submitted":
            submitted = event.time
            name = event.data.get("name", "")
        elif event.kind == "problem.completed":
            completed = event.time
        elif event.kind == "unit.issued":
            issued += 1
            bytes_in += event.data.get("input_bytes", 0)
        elif event.kind == "unit.completed":
            units += 1
            items += event.data.get("items", 0)
            unit_seconds.append(event.data.get("compute_seconds", 0.0))
            bytes_out += event.data.get("output_bytes", 0)
        elif event.kind == "unit.requeued":
            requeued += 1
        elif event.kind in ("unit.duplicate", "unit.stale"):
            duplicates += 1
    if submitted is None:
        raise KeyError(f"problem {problem_id} never submitted in this log")
    makespan = (completed - submitted) if completed is not None else float("nan")
    mean_unit = sum(unit_seconds) / len(unit_seconds) if unit_seconds else 0.0
    return ProblemMetrics(
        problem_id=problem_id,
        name=name,
        makespan=makespan,
        units_completed=units,
        items_completed=items,
        units_requeued=requeued,
        duplicate_results=duplicates,
        mean_unit_seconds=mean_unit,
        units_issued=issued,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
    )


def run_metrics(log: EventLog) -> RunMetrics:
    """Aggregate metrics for every problem and donor in the log."""
    metrics = RunMetrics()
    problem_ids = {
        e.data["problem_id"] for e in log.of_kind("problem.submitted")
    }
    for pid in sorted(problem_ids):
        metrics.problems[pid] = problem_metrics(log, pid)

    donor_first: dict[str, float] = {}
    donor_last: dict[str, float] = {}
    donor_units: dict[str, int] = defaultdict(int)
    donor_items: dict[str, int] = defaultdict(int)
    donor_busy: dict[str, float] = defaultdict(float)
    for event in log:
        donor_id = event.data.get("donor_id")
        if not donor_id:
            continue
        donor_first.setdefault(donor_id, event.time)
        donor_last[donor_id] = event.time
        if event.kind == "unit.completed":
            donor_units[donor_id] += 1
            donor_items[donor_id] += event.data.get("items", 0)
            donor_busy[donor_id] += event.data.get("compute_seconds", 0.0)
    for donor_id in donor_first:
        metrics.donors[donor_id] = DonorMetrics(
            donor_id=donor_id,
            units_completed=donor_units[donor_id],
            items_completed=donor_items[donor_id],
            busy_seconds=donor_busy[donor_id],
            first_seen=donor_first[donor_id],
            last_seen=donor_last[donor_id],
        )
    metrics.total_span = log.span()
    return metrics
