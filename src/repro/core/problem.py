"""The user-facing programming model: DataManager, Algorithm, Problem.

Quoting the paper (Sect. 2.1): *"The user is required to extend two
classes to create a Problem to run on the system.  The DataManager class
(in the server) specifies how the problem is to be partitioned into
units of work and the intermediate results put together ...  The
Algorithm class (in the client) specifies the actual computation."*

A :class:`Problem` bundles one DataManager instance, one Algorithm
instance (shipped to donors once per problem and cached there), and any
named data blobs to be served over the bulk data channel.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Callable

from repro.core.blobs import BlobRef, blob_key, canonical_dumps
from repro.core.workunit import UnitPayload, WorkResult


class DataManager(abc.ABC):
    """Server-side partitioning and result assembly.

    The contract supports both embarrassingly parallel problems
    (DSEARCH: every unit available up front) and *staged* computations
    (DPRml: the next stage's units only exist once the current stage's
    results are combined) — the generality the paper claims over
    single-task systems.
    """

    @abc.abstractmethod
    def next_unit(self, max_items: int) -> UnitPayload | None:
        """Produce the next unit containing at most *max_items* items.

        Return ``None`` when no unit is currently available.  That means
        *finished* only if :meth:`is_complete` is also true; otherwise it
        means donors should idle briefly and ask again (a stage barrier).
        """

    @abc.abstractmethod
    def handle_result(self, result: WorkResult) -> None:
        """Fold one unit's result into the problem state.

        Called exactly once per completed unit, in completion order.
        May unlock further units (advance a stage).
        """

    @abc.abstractmethod
    def is_complete(self) -> bool:
        """True once every result is in and the final answer is ready."""

    @abc.abstractmethod
    def final_result(self) -> Any:
        """The assembled answer; only valid once :meth:`is_complete`."""

    def total_items(self) -> int | None:
        """Total work items if known up front (for progress reporting)."""
        return None

    def progress(self) -> float:
        """Fraction complete in [0, 1]; subclasses may refine."""
        return 1.0 if self.is_complete() else 0.0

    # -- shared payload blobs ------------------------------------------------
    #
    # A DataManager may mark a payload component as *shared*: the value
    # is canonically serialized once, stored under its content address,
    # and units carry the returned BlobRef instead of the inline data.
    # The server ships each blob to a donor at most once; donors cache
    # by content key, so identical data is even deduplicated across
    # problems (the paper's "database cached on the client machines").

    def share(self, value: Any) -> BlobRef:
        """Register *value* as a shared blob; returns its reference.

        Idempotent: sharing an equal value again returns an equal
        reference (content addressing), storing the bytes once.
        """
        blobs = getattr(self, "_shared_blobs", None)
        if blobs is None:
            blobs = {}
            self._shared_blobs = blobs
        data = canonical_dumps(value)
        key = blob_key(data)
        blobs.setdefault(key, data)
        return BlobRef(key=key, size=len(data))

    def shared_blob(self, key: str) -> bytes:
        """Serialized bytes of a previously shared blob."""
        blobs = getattr(self, "_shared_blobs", None)
        if not blobs or key not in blobs:
            raise KeyError(f"unknown shared blob {key!r}")
        return blobs[key]

    def shared_blob_keys(self) -> list[str]:
        """Keys of every shared blob, in declaration order."""
        return list(getattr(self, "_shared_blobs", None) or ())


class Algorithm(abc.ABC):
    """Client-side computation, shipped to donors and cached per problem."""

    @abc.abstractmethod
    def compute(self, payload: Any) -> Any:
        """Process one unit payload and return its result value."""

    def cost(self, payload: Any) -> float:
        """Abstract compute cost of *payload* in work-units.

        Used only by the simulated cluster to charge virtual time; the
        default charges one work-unit.  Real clusters measure instead.
        """
        return 1.0


class FunctionAlgorithm(Algorithm):
    """Adapt a plain function into an :class:`Algorithm`.

    Handy for tests and quickstart examples::

        FunctionAlgorithm(lambda xs: sum(xs))
    """

    def __init__(self, fn: Callable[[Any], Any], cost_fn: Callable[[Any], float] | None = None):
        self._fn = fn
        self._cost_fn = cost_fn

    def compute(self, payload: Any) -> Any:
        return self._fn(payload)

    def cost(self, payload: Any) -> float:
        if self._cost_fn is not None:
            return self._cost_fn(payload)
        return super().cost(payload)


_problem_ids = itertools.count(1)


class Problem:
    """A self-contained job: DataManager + Algorithm + data blobs.

    Attributes
    ----------
    name:
        Human-readable label for logs and metrics.
    data_manager:
        Lives in the server; never serialized to donors.
    algorithm:
        Serialized to each donor once (donors cache it per problem id),
        mirroring the paper's "additional required classes" shipped with
        the Problem.
    blobs:
        Named byte payloads served via the bulk data channel (the
        paper's "data to be processed (if required)").
    priority:
        Lower numbers are scheduled first when several problems compete.
    """

    def __init__(
        self,
        name: str,
        data_manager: DataManager,
        algorithm: Algorithm,
        blobs: dict[str, bytes] | None = None,
        priority: int = 0,
    ):
        if not isinstance(data_manager, DataManager):
            raise TypeError("data_manager must extend DataManager")
        if not isinstance(algorithm, Algorithm):
            raise TypeError("algorithm must extend Algorithm")
        self.problem_id = next(_problem_ids)
        self.name = name
        self.data_manager = data_manager
        self.algorithm = algorithm
        self.blobs = dict(blobs or {})
        self.priority = priority

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Problem(id={self.problem_id}, name={self.name!r})"
