"""Lease tracking: the server's defence against donor churn.

Donor machines are ordinary desktops that reboot, sleep, or leave the
pool whenever their owners want them — the defining hazard of cycle
scavenging.  Every issued unit carries a lease; when the lease expires
(or the donor deregisters) the unit is requeued and reissued to another
donor.  A result for a unit whose lease moved on is detected and applied
at most once, so churn can never corrupt the assembled answer.

A unit may be leased to *several* donors at once: the integrity layer
(:mod:`repro.core.integrity`) issues replicated copies of a unit to
independent donors and accepts the result on quorum agreement.  The
table therefore keys leases by ``(problem_id, unit_id, donor_id)``;
granting the *same* unit to the *same* donor twice is still an error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workunit import WorkUnit


@dataclass(slots=True)
class Lease:
    """One outstanding unit assignment."""

    unit: WorkUnit
    donor_id: str
    issued_at: float
    deadline: float


class LeaseTable:
    """Tracks issued units and finds the expired ones."""

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self.timeout = timeout
        # (problem_id, unit_id) -> donor_id -> Lease, insertion-ordered.
        self._leases: dict[tuple[int, int], dict[str, Lease]] = {}

    def __len__(self) -> int:
        return sum(len(holders) for holders in self._leases.values())

    def grant(self, unit: WorkUnit, donor_id: str, now: float) -> Lease:
        key = (unit.problem_id, unit.unit_id)
        holders = self._leases.setdefault(key, {})
        if donor_id in holders:
            raise ValueError(f"unit {key} already leased to {donor_id!r}")
        lease = Lease(unit, donor_id, now, now + self.timeout)
        holders[donor_id] = lease
        return lease

    def holder(self, problem_id: int, unit_id: int) -> str | None:
        """The earliest-issued live holder (None when unleased)."""
        holders = self._leases.get((problem_id, unit_id))
        if not holders:
            return None
        return next(iter(holders.values())).donor_id

    def holders(self, problem_id: int, unit_id: int) -> list[str]:
        """Every donor currently holding a lease on this unit."""
        return list(self._leases.get((problem_id, unit_id), ()))

    def any_lease(self, problem_id: int, unit_id: int) -> Lease | None:
        """Some live lease on this unit (None when unleased)."""
        holders = self._leases.get((problem_id, unit_id))
        if not holders:
            return None
        return next(iter(holders.values()))

    def release(
        self, problem_id: int, unit_id: int, donor_id: str | None = None
    ) -> Lease | None:
        """Remove and return a lease (result arrived), if still live.

        With *donor_id* only that donor's lease is released; without it,
        **every** lease on the unit is dropped and the earliest-issued
        one is returned (the pre-replication contract).
        """
        key = (problem_id, unit_id)
        holders = self._leases.get(key)
        if not holders:
            return None
        if donor_id is None:
            del self._leases[key]
            return next(iter(holders.values()))
        lease = holders.pop(donor_id, None)
        if not holders:
            del self._leases[key]
        return lease

    def renew(
        self,
        problem_id: int,
        unit_id: int,
        now: float,
        donor_id: str | None = None,
    ) -> bool:
        """Extend a live lease (donor heartbeat with progress).

        Without *donor_id* every lease on the unit is renewed — callers
        that know the donor should pass it so a heartbeat cannot keep a
        *replica* holder's lapsed lease alive.
        """
        holders = self._leases.get((problem_id, unit_id))
        if not holders:
            return False
        if donor_id is None:
            for lease in holders.values():
                lease.deadline = now + self.timeout
            return True
        lease = holders.get(donor_id)
        if lease is None:
            return False
        lease.deadline = now + self.timeout
        return True

    def expired(self, now: float) -> list[Lease]:
        """Remove and return every lease whose deadline has passed."""
        dead: list[Lease] = []
        for key in list(self._leases):
            holders = self._leases[key]
            for donor_id in list(holders):
                if holders[donor_id].deadline <= now:
                    dead.append(holders.pop(donor_id))
            if not holders:
                del self._leases[key]
        return dead

    def revoke_donor(self, donor_id: str) -> list[Lease]:
        """Remove and return every lease held by *donor_id* (it left)."""
        dead: list[Lease] = []
        for key in list(self._leases):
            holders = self._leases[key]
            lease = holders.pop(donor_id, None)
            if lease is not None:
                dead.append(lease)
            if not holders:
                del self._leases[key]
        return dead

    def earliest_per_unit(self, problem_id: int) -> list[Lease]:
        """One lease per distinct in-flight unit of *problem_id* — the
        earliest-issued holder of each — ordered oldest first.

        This is the tail re-issue candidate list: when a problem is
        down to its last few in-flight units, the oldest one is the
        likeliest straggler and the best unit to duplicate onto an idle
        donor.
        """
        per_unit: list[Lease] = []
        for (pid, _uid), holders in self._leases.items():
            if pid != problem_id:
                continue
            per_unit.append(min(holders.values(), key=lambda l: l.issued_at))
        per_unit.sort(key=lambda l: (l.issued_at, l.unit.unit_id))
        return per_unit

    def outstanding(self, problem_id: int | None = None) -> list[Lease]:
        leases = [
            lease
            for holders in self._leases.values()
            for lease in holders.values()
        ]
        if problem_id is None:
            return leases
        return [l for l in leases if l.unit.problem_id == problem_id]
