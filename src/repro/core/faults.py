"""Lease tracking: the server's defence against donor churn.

Donor machines are ordinary desktops that reboot, sleep, or leave the
pool whenever their owners want them — the defining hazard of cycle
scavenging.  Every issued unit carries a lease; when the lease expires
(or the donor deregisters) the unit is requeued and reissued to another
donor.  A result for a unit whose lease moved on is detected and applied
at most once, so churn can never corrupt the assembled answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workunit import WorkUnit


@dataclass(slots=True)
class Lease:
    """One outstanding unit assignment."""

    unit: WorkUnit
    donor_id: str
    issued_at: float
    deadline: float


class LeaseTable:
    """Tracks issued units and finds the expired ones."""

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self.timeout = timeout
        self._leases: dict[tuple[int, int], Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def grant(self, unit: WorkUnit, donor_id: str, now: float) -> Lease:
        key = (unit.problem_id, unit.unit_id)
        if key in self._leases:
            raise ValueError(f"unit {key} already leased")
        lease = Lease(unit, donor_id, now, now + self.timeout)
        self._leases[key] = lease
        return lease

    def holder(self, problem_id: int, unit_id: int) -> str | None:
        lease = self._leases.get((problem_id, unit_id))
        return lease.donor_id if lease else None

    def release(self, problem_id: int, unit_id: int) -> Lease | None:
        """Remove and return the lease (result arrived), if still live."""
        return self._leases.pop((problem_id, unit_id), None)

    def renew(self, problem_id: int, unit_id: int, now: float) -> bool:
        """Extend a live lease (donor heartbeat with progress)."""
        lease = self._leases.get((problem_id, unit_id))
        if lease is None:
            return False
        lease.deadline = now + self.timeout
        return True

    def expired(self, now: float) -> list[Lease]:
        """Remove and return every lease whose deadline has passed."""
        dead = [lease for lease in self._leases.values() if lease.deadline <= now]
        for lease in dead:
            del self._leases[(lease.unit.problem_id, lease.unit.unit_id)]
        return dead

    def revoke_donor(self, donor_id: str) -> list[Lease]:
        """Remove and return every lease held by *donor_id* (it left)."""
        dead = [l for l in self._leases.values() if l.donor_id == donor_id]
        for lease in dead:
            del self._leases[(lease.unit.problem_id, lease.unit.unit_id)]
        return dead

    def outstanding(self, problem_id: int | None = None) -> list[Lease]:
        if problem_id is None:
            return list(self._leases.values())
        return [l for l in self._leases.values() if l.unit.problem_id == problem_id]
