"""Multi-tenant job gateway: admission control + weighted fair share.

The paper's farm served one scientist; the production north star is
many concurrent submitters sharing one donor fleet.  This module is the
front door that makes that safe:

* **Tenants** (:class:`TenantConfig`) carry a scheduling *weight* and
  quotas — max concurrently running problems, max pending jobs, max
  in-flight work items.
* **Admission control** is a bounded queue with explicit backpressure:
  a submit beyond ``max_pending`` is rejected with a ``retry_after``
  hint (:class:`AdmissionError`) instead of growing without bound.
* **Jobs** get a real lifecycle: ``submit → queued → running →
  done/failed/cancelled``, with :meth:`JobGateway.cancel_job` releasing
  leases and routing late results through the server's existing
  exactly-once stale-refusal path.
* The **weighted fair-share scheduler** (:class:`WeightedFairShare`)
  replaces the server's priority-tuple round robin as the
  *cross-problem* dispatch policy: tenants are served in order of
  virtual time — delivered work items (plus items currently in flight)
  divided by weight — so a tenant's long-run share of the fleet tracks
  its weight, and no tenant's problems can starve another's.

Durability: every gateway mutation that must survive a crash (tenant
definition, job submit, job start, job cancel) is journaled through the
server's write-ahead journal (``gateway.*`` record kinds; see
:mod:`repro.core.journal`), and the whole gateway state rides in
checkpoint VERSION 4 — a queued job survives a ``kill -9`` with its
pristine pickled Problem and is started by the recovered server.

Fair-share accounting is charged at *fold* time (completed items),
which the journal already records, so a recovered gateway's virtual
times are rebuilt exactly; the in-flight component is recomputed live
from the authoritative :class:`~repro.core.faults.LeaseTable` and
naturally resets across a crash (the leases died with the server).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.problem import Problem
from repro.core.server import ProblemStatus, TaskFarmServer
from repro.obs import LATENCY_BUCKETS
from repro.util.config import ConfigFile, ConfigError


class AdmissionError(RuntimeError):
    """A tenant's bounded admission queue is full.

    Carries ``retry_after`` (seconds): the backpressure contract is
    *reject with a hint*, never queue without bound.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def open(self) -> bool:
        """Still owed work (queued or running)."""
        return self in (JobStatus.QUEUED, JobStatus.RUNNING)


@dataclass(frozen=True, slots=True)
class TenantConfig:
    """One tenant's scheduling weight and quotas.

    Parameters
    ----------
    tenant_id:
        Stable name jobs are submitted under.
    weight:
        Fair-share weight; a weight-4 tenant receives ~4x the delivered
        work items of a weight-1 tenant while both have eligible work.
    max_running:
        Problems of this tenant running concurrently on the server.
    max_pending:
        Bound of the admission queue; submits beyond it are rejected
        with :class:`AdmissionError`.
    max_inflight_items:
        Cap on work items leased to donors for this tenant at once
        (``None`` = uncapped).  A tenant at its cap is skipped by the
        dispatch pass until results come back.
    """

    tenant_id: str
    weight: float = 1.0
    max_running: int = 4
    max_pending: int = 16
    max_inflight_items: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if not self.weight > 0:
            raise ValueError(f"tenant {self.tenant_id!r}: weight must be > 0")
        if self.max_running < 1:
            raise ValueError(f"tenant {self.tenant_id!r}: max_running must be >= 1")
        if self.max_pending < 0:
            raise ValueError(f"tenant {self.tenant_id!r}: max_pending must be >= 0")
        if self.max_inflight_items is not None and self.max_inflight_items < 1:
            raise ValueError(
                f"tenant {self.tenant_id!r}: max_inflight_items must be >= 1 or None"
            )


_TENANT_FIELDS = ("weight", "max_running", "max_pending", "max_inflight_items")


def parse_tenants(config: ConfigFile) -> list[TenantConfig]:
    """Parse ``tenant.<id>.<field> = value`` keys into tenant configs.

    Example file::

        tenant.alice.weight = 1
        tenant.bob.weight = 2
        tenant.bob.max_running = 3
        tenant.carol.weight = 4
        tenant.carol.max_inflight_items = 500

    Unknown ``tenant.*`` fields fail loudly; non-``tenant.`` keys are
    ignored so the file can share space with other server settings.
    """
    names: list[str] = []
    for key in config:
        if not key.startswith("tenant."):
            continue
        parts = key.split(".")
        if len(parts) != 3 or parts[2] not in _TENANT_FIELDS:
            raise ConfigError(
                f"bad tenant key {key!r}: expected "
                f"tenant.<id>.<{('|'.join(_TENANT_FIELDS))}>"
            )
        if parts[1] not in names:
            names.append(parts[1])
    tenants = []
    for name in names:
        prefix = f"tenant.{name}."
        kwargs: dict[str, Any] = {
            "weight": config.get_float(prefix + "weight", 1.0),
            "max_running": config.get_int(prefix + "max_running", 4),
            "max_pending": config.get_int(prefix + "max_pending", 16),
        }
        if prefix + "max_inflight_items" in config:
            kwargs["max_inflight_items"] = config.get_int(
                prefix + "max_inflight_items"
            )
        try:
            tenants.append(TenantConfig(tenant_id=name, **kwargs))
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
    return tenants


class Job:
    """One submitted job and its lifecycle bookkeeping."""

    __slots__ = (
        "job_id",
        "tenant_id",
        "problem",
        "problem_id",
        "status",
        "submitted_at",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        job_id: int,
        tenant_id: str,
        problem: Problem | None,
        problem_id: int,
        submitted_at: float,
    ):
        self.job_id = job_id
        self.tenant_id = tenant_id
        # Held only while QUEUED; the server owns the Problem once the
        # job starts (and recovery re-creates it from its own records).
        self.problem = problem
        self.problem_id = problem_id
        self.status = JobStatus.QUEUED
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None


class WeightedFairShare:
    """Cross-problem dispatch by per-tenant virtual time.

    Conforms to the server's dispatch-policy interface
    (``order``/``served``/``completed``; see
    :class:`~repro.core.scheduler.ProblemRoundRobin`).  Each tenant's
    virtual time is::

        vtime = (delivered_items + inflight_items) / weight

    where *delivered_items* is charged on every accepted fold (the
    journal-durable quantity, rebuilt exactly on recovery) and
    *inflight_items* is recomputed each pass from the live lease table
    (charging work already handed out keeps a burst from overshooting
    its share before any result lands).  Tenants are offered in
    ascending vtime; a tenant at its ``max_inflight_items`` cap is
    skipped entirely.

    Within a tenant, problems rotate in a cycle seeded by ``(priority,
    problem_id)`` — priority orders the cycle but never excludes: the
    rotation visits *every* problem, so a sustained stream of
    high-priority submissions cannot starve a low-priority problem (the
    regression the old strict priority-class round robin had).
    """

    #: Pseudo-tenant charged for problems submitted around the gateway
    #: (direct ``server.submit``), so mixed usage stays well-defined.
    DIRECT = "(direct)"

    def __init__(self) -> None:
        self._server: TaskFarmServer | None = None
        self._meters = None
        self._weights: dict[str, float] = {}
        self._caps: dict[str, int | None] = {}
        self._completed: dict[str, float] = {}
        self._by_problem: dict[int, str] = {}
        self._last_pid: dict[str, int] = {}

    def attach(self, server: TaskFarmServer) -> None:
        """Bind to *server* (lease table for in-flight accounting,
        meter registry for per-tenant counters)."""
        self._server = server
        self._meters = server.obs.meters

    def set_tenant(
        self, tenant_id: str, weight: float, max_inflight_items: int | None = None
    ) -> None:
        self._weights[tenant_id] = weight
        self._caps[tenant_id] = max_inflight_items
        self._completed.setdefault(tenant_id, 0.0)

    def bind(self, problem_id: int, tenant_id: str) -> None:
        """Attribute *problem_id*'s work to *tenant_id* from now on."""
        self._by_problem[problem_id] = tenant_id

    def tenant_of(self, problem_id: int) -> str:
        return self._by_problem.get(problem_id, self.DIRECT)

    def delivered_items(self, tenant_id: str) -> float:
        return self._completed.get(tenant_id, 0.0)

    def rebuild(self, completed: dict[str, float]) -> None:
        """Overwrite the delivered-items account (recovery reconcile)."""
        for tenant_id, items in completed.items():
            self._completed[tenant_id] = float(items)

    # -- the dispatch-policy interface ----------------------------------

    def order(self, problems: list[tuple[int, int]]) -> list[int]:
        if not problems:
            return []
        groups: dict[str, list[tuple[int, int]]] = {}
        for pid, priority in problems:
            groups.setdefault(self.tenant_of(pid), []).append((priority, pid))
        inflight = self._inflight_items()
        ranked = []
        for tenant_id, prio_pids in groups.items():
            cap = self._caps.get(tenant_id)
            flying = inflight.get(tenant_id, 0)
            if cap is not None and flying >= cap:
                continue  # over its in-flight budget until results land
            weight = self._weights.get(tenant_id, 1.0)
            vtime = (self._completed.get(tenant_id, 0.0) + flying) / weight
            ranked.append((vtime, tenant_id, prio_pids))
        ranked.sort(key=lambda r: (r[0], r[1]))
        out: list[int] = []
        for _vtime, tenant_id, prio_pids in ranked:
            prio_pids.sort()
            ids = [pid for _prio, pid in prio_pids]
            last = self._last_pid.get(tenant_id)
            if last in ids:
                # Rotate across the *whole* cycle (not a priority
                # class): every problem gets a turn — starvation-free.
                pivot = ids.index(last) + 1
                ids = ids[pivot:] + ids[:pivot]
            out.extend(ids)
        return out

    def served(self, problem_id: int) -> None:
        self._last_pid[self.tenant_of(problem_id)] = problem_id

    def completed(self, problem_id: int, items: int) -> None:
        """Charge *items* delivered for the problem's tenant (called by
        the server on every accepted fold)."""
        tenant_id = self.tenant_of(problem_id)
        self._completed[tenant_id] = self._completed.get(tenant_id, 0.0) + items
        if self._meters is not None:
            self._meters.counter(f"farm.tenant.{tenant_id}.items.completed").inc(
                items
            )

    # -- internals -------------------------------------------------------

    def _inflight_items(self) -> dict[str, int]:
        """Items currently leased out, per tenant, from the live lease
        table (each replicated copy is real work and counts)."""
        out: dict[str, int] = {}
        if self._server is None:
            return out
        for lease in self._server.leases.outstanding():
            tenant_id = self.tenant_of(lease.unit.problem_id)
            out[tenant_id] = out.get(tenant_id, 0) + lease.unit.items
        return out


class _TenantState:
    """Gateway-private bookkeeping for one tenant."""

    __slots__ = (
        "config",
        "pending",
        "running",
        "jobs_done",
        "jobs_failed",
        "jobs_cancelled",
        "rejected",
        "wait_total",
        "wait_count",
        "wait_max",
    )

    def __init__(self, config: TenantConfig):
        self.config = config
        self.pending: deque[Job] = deque()
        self.running: set[int] = set()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.rejected = 0
        self.wait_total = 0.0
        self.wait_count = 0
        self.wait_max = 0.0


class JobGateway:
    """The multi-tenant front door of a :class:`TaskFarmServer`.

    Constructing a gateway installs its :class:`WeightedFairShare`
    scheduler as the server's cross-problem dispatch policy.  All
    methods follow the server's clock-free convention (every mutation
    takes ``now``); thread safety and wall clocks are the wrapping
    facade's job, exactly as for the server itself.

    Call :meth:`pump` after any event that can finish a problem
    (result folds, failures, lease expiry): it reconciles finished jobs
    and promotes queued ones into freed running slots.
    """

    def __init__(
        self,
        server: TaskFarmServer,
        tenants: Iterable[TenantConfig] = (),
        retry_after: float = 5.0,
    ):
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.server = server
        self.retry_after = retry_after
        self.scheduler = WeightedFairShare()
        self.scheduler.attach(server)
        server.dispatch = self.scheduler
        self._tenants: dict[str, _TenantState] = {}
        self._jobs: dict[int, Job] = {}
        self._by_problem: dict[int, int] = {}
        self._next_job_id = 1
        meters = server.obs.meters
        self._m_submitted = meters.counter("farm.gateway.jobs.submitted")
        self._m_started = meters.counter("farm.gateway.jobs.started")
        self._m_done = meters.counter("farm.gateway.jobs.done")
        self._m_failed = meters.counter("farm.gateway.jobs.failed")
        self._m_cancelled = meters.counter("farm.gateway.jobs.cancelled")
        self._m_rejected = meters.counter("farm.gateway.jobs.rejected")
        self._g_queued = meters.gauge("farm.gateway.jobs.queued")
        self._g_running = meters.gauge("farm.gateway.jobs.running")
        self._h_queue_wait = meters.histogram(
            "farm.gateway.queue.wait.seconds", LATENCY_BUCKETS
        )
        for config in tenants:
            self.add_tenant(config, 0.0)

    def _journal(self, kind: str, now: float, **fields: Any) -> None:
        self.server._journal(kind, now, **fields)

    def _sync_gauges(self) -> None:
        self._g_queued.set(sum(len(t.pending) for t in self._tenants.values()))
        self._g_running.set(sum(len(t.running) for t in self._tenants.values()))

    # -- tenants ---------------------------------------------------------

    def add_tenant(self, config: TenantConfig, now: float = 0.0) -> None:
        if config.tenant_id in self._tenants:
            raise ValueError(f"tenant {config.tenant_id!r} already exists")
        self._journal("gateway.tenant", now, config=config)
        self._install_tenant(config)

    def ensure_tenant(self, config: TenantConfig, now: float = 0.0) -> None:
        """Add *config*, or update it in place when the tenant already
        exists (e.g. restored from the journal on a restart whose
        ``--tenants`` file changed the weight)."""
        existing = self._tenants.get(config.tenant_id)
        if existing is not None and existing.config == config:
            return
        self._journal("gateway.tenant", now, config=config)
        self._install_tenant(config)

    def _install_tenant(self, config: TenantConfig) -> None:
        state = self._tenants.get(config.tenant_id)
        if state is None:
            self._tenants[config.tenant_id] = _TenantState(config)
        else:
            state.config = config
        self.scheduler.set_tenant(
            config.tenant_id, config.weight, config.max_inflight_items
        )

    def tenant_ids(self) -> list[str]:
        return sorted(self._tenants)

    # -- job lifecycle ---------------------------------------------------

    def fresh_problem_id(self) -> int:
        """A problem id no current or past job (nor the server) holds.

        Problem ids come from a per-process counter on the *submitter*,
        so two scientists' CLI processes both ship "problem 1"; the
        RMI facade re-keys each incoming job with this at the admission
        boundary instead of bouncing the second scientist.
        """
        taken = set(self._by_problem) | set(self.server._problems)
        return max(taken, default=0) + 1

    def submit_job(self, tenant_id: str, problem: Problem, now: float = 0.0) -> int:
        """Admit *problem* under *tenant_id*; returns the job id.

        Raises :class:`KeyError` for an unknown tenant and
        :class:`AdmissionError` (with ``retry_after``) when the
        tenant's bounded admission queue is full.
        """
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        if problem.problem_id in self._by_problem or (
            problem.problem_id in self.server._problems
        ):
            raise ValueError(f"problem {problem.problem_id} already submitted")
        # The pending bound gates only jobs that would actually have to
        # queue: with a free running slot the job starts immediately, so
        # max_pending=0 means "run-or-reject", not "reject everything".
        if (
            len(tenant.running) >= tenant.config.max_running
            and len(tenant.pending) >= tenant.config.max_pending
        ):
            tenant.rejected += 1
            self._m_rejected.inc()
            self.server.log.record(
                now, "job.rejected", tenant=tenant_id, pending=len(tenant.pending)
            )
            raise AdmissionError(
                f"tenant {tenant_id!r} admission queue full "
                f"({len(tenant.pending)}/{tenant.config.max_pending} pending); "
                f"retry in {self.retry_after:g}s",
                retry_after=self.retry_after,
            )
        job_id = self._next_job_id
        self._next_job_id += 1
        # Journaled while the Problem is pristine (no units cut), so a
        # crashed server restores the queued job byte-for-byte.
        self._journal(
            "gateway.job.submit",
            now,
            job_id=job_id,
            tenant=tenant_id,
            problem=problem,
        )
        job = Job(job_id, tenant_id, problem, problem.problem_id, now)
        self._jobs[job_id] = job
        self._by_problem[job.problem_id] = job_id
        tenant.pending.append(job)
        self._m_submitted.inc()
        self.server.log.record(
            now,
            "job.submitted",
            job_id=job_id,
            tenant=tenant_id,
            problem_id=job.problem_id,
        )
        self._promote(tenant, now)
        self._sync_gauges()
        return job_id

    def cancel_job(self, job_id: int, now: float = 0.0) -> bool:
        """Cancel a queued or running job; returns False when the job
        had already finished (done/failed/cancelled).

        A running job's problem is cancelled on the server: leases are
        released, donors' slots freed, voting state dropped, and any
        late result is refused through the exactly-once stale path.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id}")
        tenant = self._tenants[job.tenant_id]
        if job.status is JobStatus.QUEUED:
            self._journal("gateway.job.cancel", now, job_id=job_id)
            tenant.pending.remove(job)
            job.problem = None
            job.status = JobStatus.CANCELLED
            job.finished_at = now
            tenant.jobs_cancelled += 1
            self._m_cancelled.inc()
            self.server.log.record(
                now, "job.cancelled", job_id=job_id, tenant=job.tenant_id
            )
            self._sync_gauges()
            return True
        if job.status is JobStatus.RUNNING:
            if self.server.status(job.problem_id) is not ProblemStatus.RUNNING:
                # Finished on the server before this cancel landed:
                # reconcile instead — too late to cancel.
                self._reconcile_job(tenant, job, now, quiet=False)
                self._promote(tenant, now)
                self._sync_gauges()
                return False
            self._journal("gateway.job.cancel", now, job_id=job_id)
            self.server.cancel_problem(job.problem_id, now)
            job.status = JobStatus.CANCELLED
            job.finished_at = now
            tenant.running.discard(job_id)
            tenant.jobs_cancelled += 1
            self._m_cancelled.inc()
            self.server.log.record(
                now, "job.cancelled", job_id=job_id, tenant=job.tenant_id
            )
            self._promote(tenant, now)
            self._sync_gauges()
            return True
        return False

    def pump(self, now: float) -> None:
        """Reconcile finished problems into job states and promote
        queued jobs into freed running slots."""
        for tenant in self._tenants.values():
            for job_id in sorted(tenant.running):
                job = self._jobs[job_id]
                if self.server.status(job.problem_id) is not ProblemStatus.RUNNING:
                    self._reconcile_job(tenant, job, now, quiet=False)
            self._promote(tenant, now)
        self._sync_gauges()

    def _promote(self, tenant: _TenantState, now: float) -> None:
        while tenant.pending and len(tenant.running) < tenant.config.max_running:
            job = tenant.pending.popleft()
            self._start_job(tenant, job, now)

    def _start_job(self, tenant: _TenantState, job: Job, now: float) -> None:
        # The start record links job -> problem ahead of the server's
        # own problem.submit record, so replay sees the same order.
        self._journal("gateway.job.start", now, job_id=job.job_id)
        problem = job.problem
        job.problem = None
        job.status = JobStatus.RUNNING
        job.started_at = now
        tenant.running.add(job.job_id)
        self.scheduler.bind(job.problem_id, tenant.config.tenant_id)
        wait = max(0.0, now - job.submitted_at)
        tenant.wait_total += wait
        tenant.wait_count += 1
        tenant.wait_max = max(tenant.wait_max, wait)
        self._h_queue_wait.observe(wait)
        self._m_started.inc()
        self.server.submit(problem, now)
        self.server.log.record(
            now,
            "job.started",
            job_id=job.job_id,
            tenant=job.tenant_id,
            problem_id=job.problem_id,
            queue_wait=wait,
        )

    def _reconcile_job(
        self, tenant: _TenantState, job: Job, now: float, quiet: bool
    ) -> None:
        """Fold a finished problem's terminal status into its job.

        ``quiet=True`` is the recovery path: primitive state edits
        only, no meters or events (pre-crash work must not re-count).
        """
        status = self.server.status(job.problem_id)
        if status is ProblemStatus.COMPLETE:
            job.status = JobStatus.DONE
            tenant.jobs_done += 1
            counter = self._m_done
        elif status is ProblemStatus.FAILED:
            job.status = JobStatus.FAILED
            tenant.jobs_failed += 1
            counter = self._m_failed
        elif status is ProblemStatus.CANCELLED:
            job.status = JobStatus.CANCELLED
            tenant.jobs_cancelled += 1
            counter = self._m_cancelled
        else:  # pragma: no cover - callers check RUNNING first
            return
        job.finished_at = now
        tenant.running.discard(job.job_id)
        if not quiet:
            counter.inc()
            self.server.log.record(
                now,
                f"job.{job.status.value}",
                job_id=job.job_id,
                tenant=job.tenant_id,
                problem_id=job.problem_id,
            )

    # -- introspection ---------------------------------------------------

    def job_status(self, job_id: int) -> dict[str, Any]:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id}")
        out: dict[str, Any] = {
            "job_id": job.job_id,
            "tenant": job.tenant_id,
            "status": job.status.value,
            "problem_id": job.problem_id,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
        }
        if job.status is not JobStatus.QUEUED:
            try:
                out["progress"] = self.server.progress(job.problem_id)
            except KeyError:  # cancelled while queued on a recovered server
                out["progress"] = 0.0
        if job.status is JobStatus.FAILED:
            out["failure"] = self.server.failure_reason(job.problem_id)
        return out

    def job_result(self, job_id: int) -> Any:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id}")
        if job.status is not JobStatus.DONE:
            raise RuntimeError(f"job {job_id} is {job.status.value}, not done")
        return self.server.final_result(job.problem_id)

    def job_ids(self) -> list[int]:
        return sorted(self._jobs)

    def has_open_jobs(self) -> bool:
        return any(job.status.open for job in self._jobs.values())

    def snapshot(self) -> dict[str, Any]:
        """JSON-able per-tenant accounting for repro-status."""
        total_items = sum(
            self.scheduler.delivered_items(t) for t in self._tenants
        )
        tenants = []
        for tenant_id in sorted(self._tenants):
            tenant = self._tenants[tenant_id]
            tenants.append(
                {
                    "tenant": tenant_id,
                    "weight": tenant.config.weight,
                    "max_running": tenant.config.max_running,
                    "max_pending": tenant.config.max_pending,
                    "running": len(tenant.running),
                    "pending": len(tenant.pending),
                    "items_delivered": self.scheduler.delivered_items(tenant_id),
                    "jobs_done": tenant.jobs_done,
                    "jobs_failed": tenant.jobs_failed,
                    "jobs_cancelled": tenant.jobs_cancelled,
                    "rejected": tenant.rejected,
                    "queue_wait_total": tenant.wait_total,
                    "queue_wait_count": tenant.wait_count,
                    "queue_wait_max": tenant.wait_max,
                }
            )
        counts = {status.value: 0 for status in JobStatus}
        for job in self._jobs.values():
            counts[job.status.value] += 1
        return {
            "tenants": tenants,
            "jobs": counts,
            "items_delivered_total": total_items,
        }

    # -- durability ------------------------------------------------------

    def replay(self, record: dict) -> None:
        """Apply one ``gateway.*`` journal record as a primitive state
        edit (mirrors the server-side replay style: no meters/events)."""
        kind = record["kind"]
        now = record["now"]
        if kind == "gateway.tenant":
            self._install_tenant(record["config"])
        elif kind == "gateway.job.submit":
            problem = record["problem"]
            job = Job(
                record["job_id"], record["tenant"], problem, problem.problem_id, now
            )
            self._jobs[job.job_id] = job
            self._by_problem[job.problem_id] = job.job_id
            self._tenants[job.tenant_id].pending.append(job)
            self._next_job_id = max(self._next_job_id, job.job_id + 1)
        elif kind == "gateway.job.start":
            job = self._jobs[record["job_id"]]
            tenant = self._tenants[job.tenant_id]
            tenant.pending.remove(job)
            job.problem = None  # the server's own replay owns the Problem
            job.status = JobStatus.RUNNING
            job.started_at = now
            tenant.running.add(job.job_id)
            self.scheduler.bind(job.problem_id, job.tenant_id)
            wait = max(0.0, now - job.submitted_at)
            tenant.wait_total += wait
            tenant.wait_count += 1
            tenant.wait_max = max(tenant.wait_max, wait)
        elif kind == "gateway.job.cancel":
            job = self._jobs[record["job_id"]]
            tenant = self._tenants[job.tenant_id]
            if job.status is JobStatus.QUEUED:
                tenant.pending.remove(job)
            else:
                tenant.running.discard(job.job_id)
            job.problem = None
            job.status = JobStatus.CANCELLED
            job.finished_at = now
            tenant.jobs_cancelled += 1
        else:
            raise ValueError(f"unknown gateway journal record kind {kind!r}")

    def reconcile(self, now: float) -> None:
        """Post-replay fixup: fold terminal problem statuses into jobs
        and rebuild the fair-share account from replayed folds.

        The per-tenant delivered-items total is exactly the sum of its
        problems' ``items_completed`` — every fold was journaled, every
        problem object survives in the server, so the rebuilt virtual
        times match the pre-crash ones bit-for-bit.
        """
        for tenant in self._tenants.values():
            for job_id in sorted(tenant.running):
                job = self._jobs[job_id]
                if self.server.status(job.problem_id) is not ProblemStatus.RUNNING:
                    self._reconcile_job(tenant, job, now, quiet=True)
        completed: dict[str, float] = {t: 0.0 for t in self._tenants}
        for job in self._jobs.values():
            state = self.server._problems.get(job.problem_id)
            if state is not None:
                completed[job.tenant_id] += state.items_completed
        self.scheduler.rebuild(completed)
        self._sync_gauges()

    def dump(self) -> dict[str, Any]:
        """Checkpointable snapshot of the whole gateway (rides inside
        :class:`~repro.core.checkpoint.CheckpointBlob` v4)."""
        return {
            "next_job_id": self._next_job_id,
            "retry_after": self.retry_after,
            "tenants": [
                {
                    "config": tenant.config,
                    "jobs_done": tenant.jobs_done,
                    "jobs_failed": tenant.jobs_failed,
                    "jobs_cancelled": tenant.jobs_cancelled,
                    "rejected": tenant.rejected,
                    "wait_total": tenant.wait_total,
                    "wait_count": tenant.wait_count,
                    "wait_max": tenant.wait_max,
                }
                for tenant in self._tenants.values()
            ],
            "jobs": [
                {
                    "job_id": job.job_id,
                    "tenant": job.tenant_id,
                    # Only a queued job still owns its (pristine) Problem.
                    "problem": job.problem,
                    "problem_id": job.problem_id,
                    "status": job.status.value,
                    "submitted_at": job.submitted_at,
                    "started_at": job.started_at,
                    "finished_at": job.finished_at,
                }
                for job_id, job in sorted(self._jobs.items())
            ],
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Rebuild gateway state from a :meth:`dump` snapshot."""
        if self._jobs or self._tenants:
            raise ValueError("gateway restore requires a fresh gateway")
        self._next_job_id = data["next_job_id"]
        for entry in data["tenants"]:
            self._install_tenant(entry["config"])
            tenant = self._tenants[entry["config"].tenant_id]
            tenant.jobs_done = entry["jobs_done"]
            tenant.jobs_failed = entry["jobs_failed"]
            tenant.jobs_cancelled = entry["jobs_cancelled"]
            tenant.rejected = entry["rejected"]
            tenant.wait_total = entry["wait_total"]
            tenant.wait_count = entry["wait_count"]
            tenant.wait_max = entry["wait_max"]
        for entry in data["jobs"]:
            job = Job(
                entry["job_id"],
                entry["tenant"],
                entry["problem"],
                entry["problem_id"],
                entry["submitted_at"],
            )
            job.status = JobStatus(entry["status"])
            job.started_at = entry["started_at"]
            job.finished_at = entry["finished_at"]
            self._jobs[job.job_id] = job
            self._by_problem[job.problem_id] = job.job_id
            tenant = self._tenants[job.tenant_id]
            if job.status is JobStatus.QUEUED:
                tenant.pending.append(job)  # job-id order == submit order
            elif job.status is JobStatus.RUNNING:
                tenant.running.add(job.job_id)
                self.scheduler.bind(job.problem_id, job.tenant_id)
        self._sync_gauges()
