"""Server checkpointing.

The paper's deployment "has been running for over 3 years"; a server
that cannot survive its own restart would lose days of donor work.
The checkpoint captures each problem's DataManager (which holds all
assembled partial results), its requeue and counters — everything
needed to resume issuing units.  Outstanding leases are deliberately
*not* persisted: after a restart their donors are gone, so the units
would only expire; instead they are requeued immediately on restore.

Version 2 additionally persists the integrity layer: the per-donor
reputation ledger (a restarted server must not forget who lied to it)
and each problem's in-flight quorum votes, so replicated units resume
collecting the votes they still need instead of recomputing from
scratch.

Version 3 records ``journal_lsn``: the last write-ahead journal record
(:mod:`repro.core.journal`) this snapshot covers.  Recovery restores
the checkpoint, then replays only journal records past that LSN, and
compaction may delete any segment the checkpoint fully covers.

Version 4 adds the job gateway (:mod:`repro.core.gateway`): tenant
definitions, per-tenant counters, and every job — including *queued*
jobs, whose pristine pickled Problems ride inside the blob so a crash
cannot lose admitted-but-unstarted work.  Version 3 files fail loudly
(the gateway state they lack cannot be invented).

Format: one pickled :class:`CheckpointBlob` per file, with a magic
header and version so a stale or foreign file fails loudly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.integrity import DonorReputation, _UnitIntegrity
from repro.core.server import ProblemStatus, TaskFarmServer, _ProblemState
from repro.core.workunit import WorkUnit

MAGIC = b"TFCK"
VERSION = 4


@dataclass
class _ProblemSnapshot:
    problem: Any  # the whole Problem (DataManager carries the state)
    status: str
    submitted_at: float
    completed_at: float | None
    next_unit_id: int
    units_issued: int
    units_completed: int
    items_completed: int
    completed_units: set[int]
    requeued_units: list[WorkUnit]
    failure_reason: str | None = None
    # unit_id -> quorum-vote state for replicated units still in flight.
    voting: dict[int, _UnitIntegrity] = field(default_factory=dict)


@dataclass
class CheckpointBlob:
    version: int
    saved_at: float
    snapshots: list[_ProblemSnapshot]
    reputations: dict[str, DonorReputation] = field(default_factory=dict)
    # Last journal LSN this snapshot covers (0 = no journal in use).
    journal_lsn: int = 0
    # Job-gateway snapshot (JobGateway.dump(); None = no gateway).
    gateway: Any = None


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, foreign, or from another version."""


def dumps_checkpoint(
    server: TaskFarmServer, now: float, journal_lsn: int = 0, gateway=None
) -> bytes:
    """Serialize the server's problem state to checkpoint bytes.

    When the server journals, pass the writer's ``last_lsn`` taken at
    the same quiescent point this dump runs (the sim checkpoints
    synchronously; the live facade holds its lock), so the snapshot and
    the LSN describe the same state.  Pass the server's
    :class:`~repro.core.gateway.JobGateway` (when one is installed) so
    tenants and queued jobs ride in the same snapshot.
    """
    snapshots = []
    for state in server._problems.values():
        # Units currently leased (or queued as verification replicas)
        # would be lost on restore; fold one copy of each distinct unit
        # into the requeue so the snapshot is self-contained.  Replica
        # multiplicity is *not* persisted — the restore rebuilds exactly
        # the supply each unit's surviving vote requirement still needs.
        units: dict[int, WorkUnit] = {}
        for unit in state.requeue:
            units.setdefault(unit.unit_id, unit)
        for unit in state.replicas:
            units.setdefault(unit.unit_id, unit)
        for lease in server.leases.outstanding(state.problem.problem_id):
            units.setdefault(lease.unit.unit_id, lease.unit)
        snapshots.append(
            _ProblemSnapshot(
                problem=state.problem,
                status=state.status.value,
                submitted_at=state.submitted_at,
                completed_at=state.completed_at,
                next_unit_id=state.next_unit_id,
                units_issued=state.units_issued,
                units_completed=state.units_completed,
                items_completed=state.items_completed,
                completed_units=set(state.completed_units),
                requeued_units=list(units.values()),
                failure_reason=server.failure_reason(state.problem.problem_id),
                voting=dict(state.voting),
            )
        )
    blob = CheckpointBlob(
        version=VERSION,
        saved_at=now,
        snapshots=snapshots,
        reputations=server.reputation.dump(),
        journal_lsn=journal_lsn,
        gateway=gateway.dump() if gateway is not None else None,
    )
    return MAGIC + pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)


def save_checkpoint(server: TaskFarmServer, path: str | Path, now: float) -> None:
    """Write the server's problem state to *path* atomically."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(dumps_checkpoint(server, now))
    tmp.replace(path)


def parse_checkpoint(raw: bytes, origin: str = "checkpoint") -> CheckpointBlob:
    """Decode checkpoint bytes; fail loudly on foreign or stale files."""
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{origin} is not a task-farm checkpoint")
    try:
        blob: CheckpointBlob = pickle.loads(raw[len(MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"{origin}: cannot decode checkpoint: {exc}") from exc
    if blob.version != VERSION:
        raise CheckpointError(
            f"{origin}: checkpoint version {blob.version}, expected {VERSION}"
        )
    return blob


def loads_checkpoint(
    raw: bytes, server: TaskFarmServer, now: float, origin: str = "checkpoint"
) -> list[int]:
    """Restore problems from checkpoint bytes into a fresh server.

    Returns the restored problem ids.  The target server must not
    already hold any of them.
    """
    return restore_checkpoint(parse_checkpoint(raw, origin), server, now)


def restore_checkpoint(
    blob: CheckpointBlob, server: TaskFarmServer, now: float
) -> list[int]:
    """Apply an already-parsed :class:`CheckpointBlob` to *server*."""
    server.reputation.restore(blob.reputations)
    server._g_quarantined.set(len(server.reputation.quarantined_ids()))
    restored = []
    for snap in blob.snapshots:
        pid = snap.problem.problem_id
        if pid in server._problems:
            raise CheckpointError(f"problem {pid} already present in server")
        state = _ProblemState(snap.problem, snap.submitted_at)
        state.status = ProblemStatus(snap.status)
        state.completed_at = snap.completed_at
        state.next_unit_id = snap.next_unit_id
        state.units_issued = snap.units_issued
        state.units_completed = snap.units_completed
        state.items_completed = snap.items_completed
        state.completed_units = set(snap.completed_units)
        state.requeue.extend(snap.requeued_units)
        state.voting = dict(snap.voting)
        server._problems[pid] = state
        if snap.failure_reason is not None:
            server._failures[pid] = snap.failure_reason
        if state.status is ProblemStatus.RUNNING:
            # Top queued copies up (or trim them down) to each
            # replicated unit's remaining vote requirement.
            for unit_id in list(state.voting):
                unit = server._find_unit(state, unit_id)
                if unit is not None:
                    server._ensure_vote_supply(state, unit, now, reason="restore")
        server.log.record(now, "problem.restored", problem_id=pid, name=snap.problem.name)
        restored.append(pid)
    return restored


def load_checkpoint(
    path: str | Path, server: TaskFarmServer, now: float
) -> list[int]:
    """Restore problems from a checkpoint file (see :func:`loads_checkpoint`)."""
    path = Path(path)
    return loads_checkpoint(path.read_bytes(), server, now, origin=str(path))
