"""Server checkpointing.

The paper's deployment "has been running for over 3 years"; a server
that cannot survive its own restart would lose days of donor work.
The checkpoint captures each problem's DataManager (which holds all
assembled partial results), its requeue and counters — everything
needed to resume issuing units.  Outstanding leases are deliberately
*not* persisted: after a restart their donors are gone, so the units
would only expire; instead they are requeued immediately on restore.

Format: one pickled :class:`CheckpointBlob` per file, with a magic
header and version so a stale or foreign file fails loudly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.server import ProblemStatus, TaskFarmServer, _ProblemState
from repro.core.workunit import WorkUnit

MAGIC = b"TFCK"
VERSION = 1


@dataclass
class _ProblemSnapshot:
    problem: Any  # the whole Problem (DataManager carries the state)
    status: str
    submitted_at: float
    completed_at: float | None
    next_unit_id: int
    units_issued: int
    units_completed: int
    items_completed: int
    completed_units: set[int]
    requeued_units: list[WorkUnit]
    failure_reason: str | None = None


@dataclass
class CheckpointBlob:
    version: int
    saved_at: float
    snapshots: list[_ProblemSnapshot]


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, foreign, or from another version."""


def save_checkpoint(server: TaskFarmServer, path: str | Path, now: float) -> None:
    """Write the server's problem state to *path* atomically."""
    snapshots = []
    for state in server._problems.values():
        # Units currently leased would be lost on restore; fold them
        # into the requeue so the snapshot is self-contained.
        leased = [
            lease.unit
            for lease in server.leases.outstanding(state.problem.problem_id)
        ]
        snapshots.append(
            _ProblemSnapshot(
                problem=state.problem,
                status=state.status.value,
                submitted_at=state.submitted_at,
                completed_at=state.completed_at,
                next_unit_id=state.next_unit_id,
                units_issued=state.units_issued,
                units_completed=state.units_completed,
                items_completed=state.items_completed,
                completed_units=set(state.completed_units),
                requeued_units=list(state.requeue) + leased,
                failure_reason=server.failure_reason(state.problem.problem_id),
            )
        )
    blob = CheckpointBlob(version=VERSION, saved_at=now, snapshots=snapshots)
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(MAGIC + pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL))
    tmp.replace(path)


def load_checkpoint(
    path: str | Path, server: TaskFarmServer, now: float
) -> list[int]:
    """Restore problems from *path* into a fresh server.

    Returns the restored problem ids.  The target server must not
    already hold any of them.
    """
    path = Path(path)
    raw = path.read_bytes()
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a task-farm checkpoint")
    try:
        blob: CheckpointBlob = pickle.loads(raw[len(MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"{path}: cannot decode checkpoint: {exc}") from exc
    if blob.version != VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {blob.version}, expected {VERSION}"
        )
    restored = []
    for snap in blob.snapshots:
        pid = snap.problem.problem_id
        if pid in server._problems:
            raise CheckpointError(f"problem {pid} already present in server")
        state = _ProblemState(snap.problem, snap.submitted_at)
        state.status = ProblemStatus(snap.status)
        state.completed_at = snap.completed_at
        state.next_unit_id = snap.next_unit_id
        state.units_issued = snap.units_issued
        state.units_completed = snap.units_completed
        state.items_completed = snap.items_completed
        state.completed_units = set(snap.completed_units)
        state.requeue.extend(snap.requeued_units)
        server._problems[pid] = state
        if snap.failure_reason is not None:
            server._failures[pid] = snap.failure_reason
        server.log.record(now, "problem.restored", problem_id=pid, name=snap.problem.name)
        restored.append(pid)
    return restored
