"""Adaptive scheduling: per-donor performance models and unit sizing.

The paper (Sect. 3.1): *"The parallel granularity is dynamically
controlled during each search to match the processing abilities of the
current set of donor machines."*  The mechanism (from the companion
adaptive-scheduling paper [12]) is: track each donor's measured
throughput on each problem, then size that donor's next unit so it takes
a fixed target wall-clock time.  Fast donors get big units (less
per-unit overhead); slow donors get small units (they finish within a
lease, and a loss to churn wastes little work).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field


@dataclass(slots=True)
class PerfModel:
    """EWMA throughput estimate for one (donor, problem) pair.

    ``items_per_second`` is exponentially smoothed so a donor whose
    background load changes (the machines are *semi-idle* desktops) is
    re-estimated within a few units.
    """

    alpha: float = 0.5
    items_per_second: float = 0.0
    samples: int = 0
    last_items: int = 0

    def observe(self, items: int, seconds: float) -> None:
        # Sub-microsecond (or zero/negative) completion: treat as a very
        # fast donor rather than dividing by ~zero — a denormal duration
        # would overflow the rate to infinity.
        seconds = max(seconds, 1e-6)
        rate = items / seconds
        if self.samples == 0:
            self.items_per_second = rate
        else:
            self.items_per_second += self.alpha * (rate - self.items_per_second)
        self.samples += 1
        self.last_items = items

    @property
    def calibrated(self) -> bool:
        return self.samples > 0


@dataclass(slots=True)
class DonorState:
    """Everything the server remembers about one donor.

    ``active_units`` lists every ``(problem_id, unit_id)`` the donor
    currently holds a lease on, in grant order.  The pipelined runtime
    leases a donor up to ``PipelineConfig.lease_depth`` units at once
    (one computing, the next prefetching); the historical serial donor
    holds at most one.

    ``slots`` is the donor's advertised parallel capacity: how many
    units its worker pool can compute concurrently.  A plain serial
    donor advertises 1.  The lease-depth gate scales with it (see
    :meth:`PipelineConfig.depth_for`), so an 8-core donor may hold
    eight times the leases of a laptop.
    """

    donor_id: str
    registered_at: float
    last_seen: float
    perf: dict[int, PerfModel] = field(default_factory=dict)
    units_completed: int = 0
    items_completed: int = 0
    busy_seconds: float = 0.0
    active_units: list[tuple[int, int]] = field(default_factory=list)
    slots: int = 1

    @property
    def active_unit(self) -> tuple[int, int] | None:
        """The earliest-granted unit still held (None when idle)."""
        return self.active_units[0] if self.active_units else None

    def start_unit(self, problem_id: int, unit_id: int) -> None:
        self.active_units.append((problem_id, unit_id))

    def end_unit(self, problem_id: int, unit_id: int) -> None:
        """Forget a held unit; a no-op when it was already cleared."""
        try:
            self.active_units.remove((problem_id, unit_id))
        except ValueError:
            pass

    def perf_for(self, problem_id: int, alpha: float = 0.5) -> PerfModel:
        model = self.perf.get(problem_id)
        if model is None:
            model = PerfModel(alpha=alpha)
            self.perf[problem_id] = model
        return model

    def capacity_rate(self) -> float:
        """Per-slot items/sec across every problem this donor has run.

        Pooled units are each timed on their own core, so every
        per-problem EWMA is already a *per-slot* rate; the mean over
        calibrated models is the donor-level capacity estimate used to
        warm-start sizing on problems the donor has not touched yet.
        Returns 0.0 while the donor is entirely uncalibrated.
        """
        rates = [m.items_per_second for m in self.perf.values() if m.calibrated]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)


class GranularityPolicy(abc.ABC):
    """Decides how many items the next unit for a donor should hold."""

    @abc.abstractmethod
    def items_for(
        self, donor: DonorState, problem_id: int, remaining: int | None = None
    ) -> int:
        """Number of items (>= 1) for this donor's next unit.

        ``remaining`` is the server's estimate of items not yet issued
        or completed (None when the DataManager cannot count).  Policies
        may use it to taper unit size near the end of a problem.
        """


class FixedGranularity(GranularityPolicy):
    """The naive baseline: every unit holds the same number of items.

    This is what the paper's adaptive control is measured against in
    ablation ABL1 — on a heterogeneous pool a fixed size is either too
    big for slow donors (stragglers at the end of the search) or too
    small for fast ones (per-unit overhead dominates).
    """

    def __init__(self, items: int):
        if items < 1:
            raise ValueError("fixed granularity must be >= 1 item")
        self.items = items

    def items_for(
        self, donor: DonorState, problem_id: int, remaining: int | None = None
    ) -> int:
        return self.items


class AdaptiveGranularity(GranularityPolicy):
    """Size units so each takes ``target_seconds`` on the target donor.

    Parameters
    ----------
    target_seconds:
        Desired wall-clock duration of one unit.  The paper's deployment
        balances per-unit round-trip overhead (favouring long units)
    	against scheduling responsiveness and loss-on-churn (favouring
        short ones).
    probe_items:
        Unit size handed to an uncalibrated donor; small, so the first
        measurement arrives quickly.
    min_items, max_items:
        Clamp bounds for pathological throughput estimates.
    alpha:
        EWMA smoothing factor for the per-donor throughput model.
    max_growth:
        A donor's next unit may be at most this multiple of its previous
        one.  Per-item costs vary (database sequences have very
        different lengths), so a single probe is a noisy rate estimate;
        ramping geometrically prevents one lucky probe from handing a
        donor the entire remaining problem as a single straggler unit.
    tail_factor:
        When set (> 1), a unit may never take more than
        ``remaining / tail_factor`` of the items still uncut — so as a
        problem (or DPRml stage) drains, units shrink geometrically and
        the last stretch splits across several donors instead of
        becoming one straggler unit that stalls the barrier.  ``None``
        (the default) keeps the historical sizing.
    warm_start:
        When True, a donor uncalibrated on *this* problem but calibrated
        on others seeds its first unit from its donor-level per-slot
        capacity EWMA (:meth:`DonorState.capacity_rate`) instead of the
        blind ``probe_items`` — a fast 8-core box starts near its real
        capacity while an unknown laptop still gets the cautious probe.
        The warm first unit is capped at ``probe_items * max_growth``,
        the same ramp bound a lucky probe would have earned.
    """

    def __init__(
        self,
        target_seconds: float = 60.0,
        probe_items: int = 1,
        min_items: int = 1,
        max_items: int = 1_000_000,
        alpha: float = 0.5,
        max_growth: float = 4.0,
        tail_factor: float | None = None,
        warm_start: bool = True,
    ):
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if not (1 <= min_items <= max_items):
            raise ValueError("need 1 <= min_items <= max_items")
        if max_growth <= 1.0:
            raise ValueError("max_growth must exceed 1")
        if tail_factor is not None and tail_factor <= 1.0:
            raise ValueError("tail_factor must exceed 1")
        self.target_seconds = target_seconds
        self.probe_items = max(min_items, probe_items)
        self.min_items = min_items
        self.max_items = max_items
        self.alpha = alpha
        self.max_growth = max_growth
        self.tail_factor = tail_factor
        self.warm_start = warm_start

    def items_for(
        self, donor: DonorState, problem_id: int, remaining: int | None = None
    ) -> int:
        model = donor.perf_for(problem_id, alpha=self.alpha)
        if not model.calibrated:
            items = self.probe_items
            capacity = donor.capacity_rate() if self.warm_start else 0.0
            if capacity > 0.0:
                ideal = min(float(self.max_items), capacity * self.target_seconds)
                ramp_cap = self.probe_items * self.max_growth
                items = int(
                    min(
                        self.max_items,
                        ramp_cap,
                        max(float(items), math.ceil(ideal)),
                    )
                )
        else:
            # Clamp before ceil(): an extreme rate estimate must saturate
            # at max_items, not overflow.
            ideal = min(
                float(self.max_items), model.items_per_second * self.target_seconds
            )
            ramp_cap = max(self.probe_items, model.last_items) * self.max_growth
            items = int(
                min(self.max_items, ramp_cap, max(self.min_items, math.ceil(ideal)))
            )
        if self.tail_factor is not None and remaining is not None and remaining > 0:
            # Mid-problem the cap is far above any sane unit; it only
            # binds once the target-time unit would swallow the tail.
            tail_cap = max(self.min_items, math.ceil(remaining / self.tail_factor))
            items = min(items, tail_cap)
        return items


class ProblemRoundRobin:
    """Fair rotation over concurrently active problems.

    The paper's server processes several problems simultaneously (six
    DPRml instances in Fig. 2).  Donors asking for work are offered each
    active problem in turn, starting after the problem served last, so
    one problem with abundant units cannot starve the others.  Priority
    classes are respected: all problems of the lowest priority number
    are rotated before any higher number is considered.
    """

    def __init__(self) -> None:
        self._last_served: int | None = None

    def order(self, problems: list[tuple[int, int]]) -> list[int]:
        """Rank candidate problems.

        Parameters
        ----------
        problems:
            ``(problem_id, priority)`` pairs for every problem that
            currently has (or may have) work.

        Returns
        -------
        Problem ids in the order they should be offered work.
        """
        if not problems:
            return []
        by_priority = sorted(problems, key=lambda pp: (pp[1], pp[0]))
        ids = [pid for pid, _prio in by_priority]
        if self._last_served in ids:
            pivot = ids.index(self._last_served) + 1
            # Rotate only within the leading priority class.
            lead_priority = by_priority[0][1]
            lead = [pid for pid, prio in by_priority if prio == lead_priority]
            rest = [pid for pid, prio in by_priority if prio != lead_priority]
            if self._last_served in lead:
                pivot = lead.index(self._last_served) + 1
                lead = lead[pivot:] + lead[:pivot]
            ids = lead + rest
        return ids

    def served(self, problem_id: int) -> None:
        self._last_served = problem_id

    def completed(self, problem_id: int, items: int) -> None:
        """Dispatch-policy hook: *items* of this problem were folded.

        Round robin keeps no delivered-work account; fair-share
        policies (:class:`repro.core.gateway.WeightedFairShare`)
        override this to charge the problem's tenant.
        """
